"""Uniform-random iterative compilation (§4.3).

The paper's "Best" is the best of 1000 uniform-random settings; its §5.3
comparison asks how many random evaluations match the model's single
prediction (≈50 on average).  Both come from this driver.
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def random_search(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
) -> SearchResult:
    """Evaluate ``budget`` uniform-random settings; track the running best."""
    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    settings = space.sample_many(budget, seed)
    # The sample is fixed up front (nothing adaptive), so the whole
    # budget prices as one compile-per-setting + vectorised simulate-many
    # batch; folding the running best afterwards preserves the exact
    # trajectory a sequential loop would record.
    runtimes = evaluator.evaluate_many(settings)
    best_setting = settings[0]
    best_runtime = float("inf")
    trajectory: list[float] = []
    for setting, runtime in zip(settings, runtimes):
        if runtime < best_runtime:
            best_runtime = runtime
            best_setting = setting
        trajectory.append(best_runtime)
    return SearchResult(
        best_setting=best_setting,
        best_runtime=best_runtime,
        evaluations=len(settings),
        trajectory=trajectory,
    )
