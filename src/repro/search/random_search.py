"""Uniform-random iterative compilation (§4.3) — compatibility shim.

The paper's "Best" is the best of 1000 uniform-random settings; its §5.3
comparison asks how many random evaluations match the model's single
prediction (≈50 on average).  The algorithm now lives in
:class:`repro.autotune.strategies.RandomSearch`; this driver keeps the
legacy signature and produces bit-identical results (pinned by
``tests/golden/search_golden.json``).
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def random_search(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
) -> SearchResult:
    """Evaluate ``budget`` uniform-random settings; track the running best."""
    # Imported here: repro.autotune itself imports the evaluator through
    # this package, so a module-level import would be circular.
    from repro.autotune.core import run_strategy
    from repro.autotune.strategies import RandomSearch

    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    return run_strategy(
        RandomSearch(), evaluator, budget, seed=seed, space=space
    )
