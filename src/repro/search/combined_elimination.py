"""Combined elimination (Pan & Eigenmann [30]) — compatibility shim.

Start from everything on; repeatedly measure each enabled boolean
flag's *relative improvement* from disabling it alone, and greedily
disable the flags with negative effect (most harmful first, re-measuring
interactions after each elimination).  The paper cites this as the
strongest orchestration baseline.  The algorithm now lives in
:class:`repro.autotune.strategies.CombinedElimination` (each probing
round priced as one vector-kernel batch); this driver keeps the legacy
signature and produces bit-identical results away from the budget
boundary (pinned by ``tests/golden/search_golden.json``).  The one
divergence is a fix: the legacy driver's unconditional recheck could
overshoot the budget by one; the scorer clamps the run exactly at it.
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def combined_elimination(
    evaluator: Evaluator,
    seed: int = 0,
    space: FlagSpace = DEFAULT_SPACE,
    budget: int | None = None,
) -> SearchResult:
    """Run CE to convergence (or until ``budget`` evaluations)."""
    # Imported here: repro.autotune itself imports the evaluator through
    # this package, so a module-level import would be circular.
    from repro.autotune.core import run_strategy
    from repro.autotune.strategies import CombinedElimination

    del seed  # deterministic; signature symmetry with the other drivers
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    return run_strategy(
        CombinedElimination(), evaluator, budget, seed=0, space=space
    )
