"""Combined elimination (Pan & Eigenmann [30]).

Start from everything on; repeatedly measure each enabled boolean flag's
*relative improvement* from disabling it alone, and greedily disable the
flags with negative effect (most harmful first, re-measuring interactions
after each elimination).  The paper cites this as the strongest
orchestration baseline.
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def _all_on(space: FlagSpace) -> FlagSetting:
    values = {}
    for spec in space.specs:
        values[spec.name] = True if spec.is_boolean else spec.o3
    return FlagSetting(values)


def combined_elimination(
    evaluator: Evaluator,
    seed: int = 0,
    space: FlagSpace = DEFAULT_SPACE,
    budget: int | None = None,
) -> SearchResult:
    """Run CE to convergence (or until ``budget`` evaluations)."""
    del seed  # deterministic; signature symmetry with the other drivers
    trajectory: list[float] = []
    spent = 0

    def evaluate(setting: FlagSetting) -> float:
        nonlocal spent
        runtime = evaluator.evaluate(setting)
        spent += 1
        trajectory.append(min(trajectory[-1], runtime) if trajectory else runtime)
        return runtime

    current = _all_on(space)
    current_runtime = evaluate(current)
    enabled = [spec.name for spec in space.specs if spec.is_boolean]

    improved = True
    while improved and (budget is None or spent < budget):
        improved = False
        effects: list[tuple[float, str, FlagSetting, float]] = []
        for name in enabled:
            if budget is not None and spent >= budget:
                break
            candidate = current.with_values(**{name: False})
            runtime = evaluate(candidate)
            # Relative improvement of disabling `name` (negative = harmful
            # flag worth eliminating).
            effects.append(
                ((runtime - current_runtime) / current_runtime, name, candidate, runtime)
            )
        effects.sort()
        for effect, name, candidate, runtime in effects:
            if effect >= 0.0:
                break
            # Re-measure against the *current* baseline: interactions may
            # have changed since the probing round.
            if candidate != current.with_values(**{name: False}):
                candidate = current.with_values(**{name: False})
                if budget is not None and spent >= budget:
                    break
                runtime = evaluate(candidate)
            recheck = evaluate(current.with_values(**{name: False}))
            if recheck < current_runtime:
                current = current.with_values(**{name: False})
                current_runtime = recheck
                enabled.remove(name)
                improved = True

    return SearchResult(
        best_setting=current,
        best_runtime=current_runtime,
        evaluations=spent,
        trajectory=trajectory,
    )
