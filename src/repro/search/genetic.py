"""A genetic algorithm over flag settings — compatibility shim.

Standard generational GA (Cooper et al. [7], Kulkarni [24]): tournament
selection, uniform crossover over the 39 dimensions, per-dimension
mutation, elitism of one.  The algorithm now lives in
:class:`repro.autotune.strategies.Genetic` (each generation priced as
one vector-kernel batch); this driver keeps the legacy signature and
produces bit-identical results away from the budget boundary (pinned by
``tests/golden/search_golden.json``).  The one divergence is a fix: the
legacy driver could breed one child past the budget; the scorer clamps
the run exactly at it.
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def genetic_search(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
    population_size: int = 20,
    mutation_rate: float = 0.05,
    tournament: int = 3,
) -> SearchResult:
    """Run the GA until ``budget`` evaluations are spent."""
    # Imported here: repro.autotune itself imports the evaluator through
    # this package, so a module-level import would be circular.
    from repro.autotune.core import run_strategy
    from repro.autotune.strategies import Genetic

    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    strategy = Genetic(
        population_size=population_size,
        mutation_rate=mutation_rate,
        tournament=tournament,
    )
    return run_strategy(strategy, evaluator, budget, seed=seed, space=space)
