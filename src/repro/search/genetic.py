"""A genetic algorithm over flag settings (Cooper et al. [7], Kulkarni [24]).

Standard generational GA: tournament selection, uniform crossover over the
39 dimensions, per-dimension mutation, elitism of one.  Used as a
related-work iterative-compilation baseline.
"""

from __future__ import annotations

import random

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def _crossover(
    rng: random.Random, left: FlagSetting, right: FlagSetting
) -> FlagSetting:
    left_indices = left.as_indices()
    right_indices = right.as_indices()
    child = [
        left_indices[dim] if rng.random() < 0.5 else right_indices[dim]
        for dim in range(len(left_indices))
    ]
    return FlagSetting.from_indices(child)


def _mutate(
    rng: random.Random,
    setting: FlagSetting,
    space: FlagSpace,
    rate: float,
) -> FlagSetting:
    indices = list(setting.as_indices())
    for dim, spec in enumerate(space.specs):
        if rng.random() < rate:
            indices[dim] = rng.randrange(spec.cardinality)
    return FlagSetting.from_indices(indices)


def genetic_search(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
    population_size: int = 20,
    mutation_rate: float = 0.05,
    tournament: int = 3,
) -> SearchResult:
    """Run the GA until ``budget`` evaluations are spent."""
    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    rng = random.Random(seed)
    trajectory: list[float] = []
    best_setting = None
    best_runtime = float("inf")
    spent = 0

    def score(setting: FlagSetting) -> float:
        nonlocal spent, best_runtime, best_setting
        runtime = evaluator.evaluate(setting)
        spent += 1
        if runtime < best_runtime:
            best_runtime, best_setting = runtime, setting
        trajectory.append(best_runtime)
        return runtime

    population = [
        space.sample(rng) for _ in range(min(population_size, budget))
    ]
    fitness = [score(individual) for individual in population]

    while spent < budget:
        scored = sorted(zip(fitness, range(len(population))))
        elite = population[scored[0][1]]
        next_population = [elite]
        while len(next_population) < population_size and spent + len(
            next_population
        ) <= budget:
            def pick() -> FlagSetting:
                contenders = rng.sample(
                    range(len(population)), min(tournament, len(population))
                )
                winner = min(contenders, key=lambda index: fitness[index])
                return population[winner]

            child = _crossover(rng, pick(), pick())
            child = _mutate(rng, child, space, mutation_rate)
            next_population.append(child)
        population = next_population
        fitness = [score(individual) for individual in population]
        if len(population) < 2:
            break

    return SearchResult(
        best_setting=best_setting,
        best_runtime=best_runtime,
        evaluations=spent,
        trajectory=trajectory,
    )
