"""Iterative-compilation baselines (the paper's related-work comparators)."""

from repro.search.combined_elimination import combined_elimination
from repro.search.evaluator import Evaluator, SearchResult
from repro.search.genetic import genetic_search
from repro.search.hillclimb import hill_climb
from repro.search.random_search import random_search

__all__ = [
    "Evaluator",
    "SearchResult",
    "combined_elimination",
    "genetic_search",
    "hill_climb",
    "random_search",
]
