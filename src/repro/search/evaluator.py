"""Evaluation oracle shared by the iterative-compilation baselines.

One *evaluation* is one compile-and-run of a flag setting on a fixed
program/machine pair — the costly unit the paper counts (its "Best" uses
1000 of them; its model uses one profile run).  The evaluator memoises, so
revisiting a setting is free, matching how an iterative-compilation driver
would cache results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compiler.binary import CompiledBinary
from repro.compiler.flags import FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.sim.analytic import SimulationResult, simulate_analytic
from repro.sim.vector import simulate_grid


@dataclass
class Evaluator:
    """Runtime oracle for one (program, machine) pair.

    ``simulate`` makes the timing tier pluggable: it defaults to the fast
    analytic model, and :class:`repro.api.Session` injects a simulator
    backend's ``run`` here so searches can target the trace tier too.
    ``batch_simulate`` is the matching explicit batch entry point (a
    backend's ``run_many``); it is never inferred from ``simulate``, so
    injected wrappers and mocks are always honoured.  ``vectorize=False``
    pins :meth:`evaluate_many` to the sequential scalar reference.
    """

    program: Program
    machine: MicroArch
    compiler: Compiler = field(default_factory=Compiler)
    simulate: Callable[[CompiledBinary, MicroArch], SimulationResult] | None = None
    batch_simulate: Callable | None = None
    vectorize: bool = True

    def __post_init__(self) -> None:
        self._cache: dict[FlagSetting, float] = {}
        self.evaluations = 0

    def evaluate(self, setting: FlagSetting) -> float:
        """Runtime in seconds of the program compiled with ``setting``."""
        canonical = setting.canonical()
        if canonical in self._cache:
            return self._cache[canonical]
        binary = self.compiler.compile(self.program, canonical)
        runner = self.simulate if self.simulate is not None else simulate_analytic
        runtime = runner(binary, self.machine).seconds
        self._cache[canonical] = runtime
        self.evaluations += 1
        return runtime

    def evaluate_many(self, settings: Sequence[FlagSetting]) -> list[float]:
        """Runtimes of many settings, batched through the vector kernel.

        Compiles each uncached setting (first-seen order) and prices all
        the binaries against this evaluator's machine in one
        :func:`~repro.sim.vector.simulate_many` pass — bit-identical to
        sequential :meth:`evaluate` calls, including the memo and the
        ``evaluations`` count.  Falls back to the sequential path when a
        custom scalar ``simulate`` is injected without a matching
        ``batch_simulate``, or when ``vectorize`` is off.
        """
        canonicals = [setting.canonical() for setting in settings]
        run_many = self._run_many()
        if run_many is None:
            return [self.evaluate(canonical) for canonical in canonicals]
        fresh: list[FlagSetting] = []
        seen: set[FlagSetting] = set()
        for canonical in canonicals:
            if canonical not in self._cache and canonical not in seen:
                seen.add(canonical)
                fresh.append(canonical)
        if fresh:
            binaries = [
                self.compiler.compile(self.program, canonical)
                for canonical in fresh
            ]
            results = run_many(binaries, [self.machine])
            for s, canonical in enumerate(fresh):
                self._cache[canonical] = float(results.seconds[s, 0])
                self.evaluations += 1
        return [self._cache[canonical] for canonical in canonicals]

    def is_cached(self, setting: FlagSetting) -> bool:
        """Whether evaluating ``setting`` would be a memo hit.

        The autotune scorer asks this *before* pricing a batch to count
        fresh simulations (the paper's costly unit) separately from
        budgeted evaluations; canonicalisation is applied, so gated
        aliases of a cached setting report cached too.
        """
        return setting.canonical() in self._cache

    def _run_many(self):
        """The batch simulation entry point, if this tier has one."""
        if not self.vectorize:
            return None
        if self.batch_simulate is not None:
            return self.batch_simulate
        if self.simulate is None:
            return simulate_grid
        return None

    def o3_runtime(self) -> float:
        return self.evaluate(o3_setting())

    def speedup(self, setting: FlagSetting) -> float:
        return self.o3_runtime() / self.evaluate(setting)


def evaluations_to_reach(
    trajectory: Sequence[float], target_runtime: float
) -> int | None:
    """First evaluation index (1-based) reaching ``target_runtime``.

    Boundary semantics, pinned (consumers cap or gate on this):

    * reaching means ``runtime <= target_runtime`` — equality counts;
    * a search that first reaches the target on its *final* evaluation
      returns ``len(trajectory)``, never ``None``;
    * ``None`` means exactly one thing: no recorded evaluation reached
      the target.  It is **not** a sentinel for "reached at the budget
      cap" — callers that charge unreached runs the full budget must
      test for ``None`` explicitly rather than comparing against
      ``len(trajectory)``, because a legitimate final-evaluation match
      also equals the budget.
    """
    for index, runtime in enumerate(trajectory, start=1):
        if runtime <= target_runtime:
            return index
    return None


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_setting: FlagSetting
    best_runtime: float
    evaluations: int
    #: best runtime seen after each evaluation (the convergence curve used
    #: by the §5.3 iterations-to-match analysis).
    trajectory: list[float] = field(default_factory=list)

    def evaluations_to_reach(self, target_runtime: float) -> int | None:
        """First evaluation index (1-based) reaching ``target_runtime``."""
        return evaluations_to_reach(self.trajectory, target_runtime)
