"""Evaluation oracle shared by the iterative-compilation baselines.

One *evaluation* is one compile-and-run of a flag setting on a fixed
program/machine pair — the costly unit the paper counts (its "Best" uses
1000 of them; its model uses one profile run).  The evaluator memoises, so
revisiting a setting is free, matching how an iterative-compilation driver
would cache results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compiler.binary import CompiledBinary
from repro.compiler.flags import FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.sim.analytic import SimulationResult, simulate_analytic


@dataclass
class Evaluator:
    """Runtime oracle for one (program, machine) pair.

    ``simulate`` makes the timing tier pluggable: it defaults to the fast
    analytic model, and :class:`repro.api.Session` injects a simulator
    backend's ``run`` here so searches can target the trace tier too.
    """

    program: Program
    machine: MicroArch
    compiler: Compiler = field(default_factory=Compiler)
    simulate: Callable[[CompiledBinary, MicroArch], SimulationResult] | None = None

    def __post_init__(self) -> None:
        self._cache: dict[FlagSetting, float] = {}
        self.evaluations = 0

    def evaluate(self, setting: FlagSetting) -> float:
        """Runtime in seconds of the program compiled with ``setting``."""
        canonical = setting.canonical()
        if canonical in self._cache:
            return self._cache[canonical]
        binary = self.compiler.compile(self.program, canonical)
        runner = self.simulate if self.simulate is not None else simulate_analytic
        runtime = runner(binary, self.machine).seconds
        self._cache[canonical] = runtime
        self.evaluations += 1
        return runtime

    def o3_runtime(self) -> float:
        return self.evaluate(o3_setting())

    def speedup(self, setting: FlagSetting) -> float:
        return self.o3_runtime() / self.evaluate(setting)


def evaluations_to_reach(
    trajectory: Sequence[float], target_runtime: float
) -> int | None:
    """First evaluation index (1-based) reaching ``target_runtime``."""
    for index, runtime in enumerate(trajectory, start=1):
        if runtime <= target_runtime:
            return index
    return None


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_setting: FlagSetting
    best_runtime: float
    evaluations: int
    #: best runtime seen after each evaluation (the convergence curve used
    #: by the §5.3 iterations-to-match analysis).
    trajectory: list[float] = field(default_factory=list)

    def evaluations_to_reach(self, target_runtime: float) -> int | None:
        """First evaluation index (1-based) reaching ``target_runtime``."""
        return evaluations_to_reach(self.trajectory, target_runtime)
