"""Multi-restart hill climbing (Almagor et al. [2]) — compatibility shim.

From a random starting point, repeatedly move to the first improving
Hamming-distance-1 neighbour until none improves; restart until the
evaluation budget is spent.  The algorithm now lives in
:class:`repro.autotune.strategies.HillClimb`; this driver keeps the
legacy signature and produces bit-identical results (pinned by
``tests/golden/search_golden.json``).
"""

from __future__ import annotations

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def hill_climb(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
) -> SearchResult:
    """First-improvement hill climbing with random restarts."""
    # Imported here: repro.autotune itself imports the evaluator through
    # this package, so a module-level import would be circular.
    from repro.autotune.core import run_strategy
    from repro.autotune.strategies import HillClimb

    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    return run_strategy(
        HillClimb(), evaluator, budget, seed=seed, space=space
    )
