"""Multi-restart hill climbing over the flag space (Almagor et al. [2]).

From a random starting point, repeatedly move to the best Hamming-distance-1
neighbour until no neighbour improves; restart until the evaluation budget
is spent.  The related-work baseline the paper cites for searching
compilation sequences.
"""

from __future__ import annotations

import random

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.search.evaluator import Evaluator, SearchResult


def hill_climb(
    evaluator: Evaluator,
    budget: int,
    seed: int,
    space: FlagSpace = DEFAULT_SPACE,
) -> SearchResult:
    """Steepest-ascent hill climbing with random restarts."""
    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    rng = random.Random(seed)
    trajectory: list[float] = []
    best_setting = None
    best_runtime = float("inf")

    def record(runtime: float) -> None:
        nonlocal best_runtime
        trajectory.append(min(trajectory[-1], runtime) if trajectory else runtime)

    spent = 0
    while spent < budget:
        current = space.sample(rng)
        current_runtime = evaluator.evaluate(current)
        spent += 1
        record(current_runtime)
        if current_runtime < best_runtime:
            best_runtime, best_setting = current_runtime, current
        improved = True
        while improved and spent < budget:
            improved = False
            for neighbour in space.neighbours(current):
                if spent >= budget:
                    break
                runtime = evaluator.evaluate(neighbour)
                spent += 1
                record(runtime)
                if runtime < current_runtime:
                    current, current_runtime = neighbour, runtime
                    improved = True
                    if runtime < best_runtime:
                        best_runtime, best_setting = runtime, neighbour
                    break  # first-improvement step, then re-scan

    return SearchResult(
        best_setting=best_setting,
        best_runtime=best_runtime,
        evaluations=spent,
        trajectory=trajectory,
    )
