"""repro.service — the deployable prediction service.

The paper's end product as a long-running process: a
:class:`PredictionService` wraps one :class:`~repro.api.Session` plus the
:class:`~repro.api.ModelRegistry` it serves from, and
:func:`make_server`/:func:`serve` put a stdlib-only HTTP front end on it
(``repro-experiments serve``).  See :mod:`repro.service.server` for the
route table and :mod:`repro.service.jobs` for the restart-safe
protocol-job queue behind ``/jobs``.
"""

from repro.service.jobs import Job, JobJournal, JobManager, jobs_root
from repro.service.server import make_server, serve
from repro.service.service import (
    LoadLimiter,
    PredictBatcher,
    PredictionService,
    ServiceError,
    ServiceMetrics,
    canonical_json,
)

__all__ = [
    "Job",
    "JobJournal",
    "JobManager",
    "LoadLimiter",
    "PredictBatcher",
    "PredictionService",
    "ServiceError",
    "ServiceMetrics",
    "canonical_json",
    "jobs_root",
    "make_server",
    "serve",
]
