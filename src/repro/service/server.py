"""The stdlib-only HTTP front end over :class:`PredictionService`.

Routes::

    GET  /healthz              service + promoted-model status
    GET  /metrics              request counts and latency percentiles
    POST /predict              features or program-spec -> ranked settings
    POST /evaluate             compile-and-simulate one triple
    POST /jobs                 queue a background protocol run
    GET  /jobs                 list jobs
    GET  /jobs/<id>            one job's snapshot
    GET  /jobs/<id>/events     NDJSON stream of fold-completion events

JSON bodies are served as :func:`~repro.service.service.canonical_json`
bytes, so a ``/predict`` response is byte-identical to the in-process
facet payload.  The events route streams one JSON object per line,
flushed as each fold checkpoints, and ends after the job's terminal
``complete``/``failed`` event.
"""

from __future__ import annotations

import json
import re
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.service.service import PredictionService, ServiceError, canonical_json

#: Largest accepted request body; predict/evaluate payloads are tiny.
MAX_BODY_BYTES = 1 << 20

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/events)?$")


def _make_handler(
    service: PredictionService, log: Callable[[str], None] | None
) -> type:
    class ServiceHandler(BaseHTTPRequestHandler):
        # HTTP/1.0 keeps the events route simple: no chunked framing,
        # the stream just ends when the connection closes.
        protocol_version = "HTTP/1.0"

        # ------------------------------------------------------------ plumbing
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            if log is not None:
                log(f"{self.address_string()} {format % args}")

        def _send_json(
            self,
            payload: dict,
            status: int = 200,
            headers: dict[str, str] | None = None,
        ) -> None:
            body = canonical_json(payload).encode()
            self._response_started = True
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict:
            raw_length = self.headers.get("Content-Length")
            if raw_length is None or not raw_length.strip():
                length = 0
            else:
                try:
                    length = int(raw_length.strip())
                except ValueError:
                    raise ServiceError(
                        f"bad Content-Length header: {raw_length.strip()!r}"
                    )
                if length < 0:
                    raise ServiceError(
                        f"bad Content-Length header: {raw_length.strip()!r}"
                    )
            if length > MAX_BODY_BYTES:
                raise ServiceError("request body too large", status=413)
            # rfile.read(n) may return short on a socket — loop until the
            # declared length arrives, and call out a client that closed
            # mid-body instead of mis-reporting its half-payload as bad JSON.
            chunks: list[bytes] = []
            remaining = length
            while remaining:
                chunk = self.rfile.read(remaining)
                if not chunk:
                    received = length - remaining
                    raise ServiceError(
                        f"truncated body: Content-Length {length} but only "
                        f"{received} bytes received"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            raw = b"".join(chunks)
            if not raw:
                return {}
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as error:
                raise ServiceError(f"bad JSON body: {error}")
            if not isinstance(payload, dict):
                raise ServiceError("request body must be a JSON object")
            return payload

        def _timed(self, endpoint: str, respond: Callable[[], None]) -> None:
            started = time.perf_counter()
            self._response_started = False
            error = False
            try:
                respond()
            except ServiceError as exc:
                error = True
                if not self._response_started:
                    headers = {}
                    if exc.retry_after is not None:
                        # Load shedding: tell the client when to come back.
                        headers["Retry-After"] = str(
                            max(1, round(exc.retry_after))
                        )
                    self._send_json(
                        {"error": str(exc)}, status=exc.status, headers=headers
                    )
            except (BrokenPipeError, ConnectionResetError):
                error = True  # client went away mid-stream; nothing to send
            except Exception as exc:  # noqa: BLE001 - the service must not die
                error = True
                # Only answer if the response has not started: splicing a
                # second status line into a stream already under way would
                # corrupt it (and raise again from inside this handler).
                if not self._response_started:
                    self._send_json(
                        {"error": f"internal error: {exc}"}, status=500
                    )
            finally:
                service.metrics.observe(
                    endpoint, time.perf_counter() - started, error=error
                )

        def _not_found(self, path: str) -> None:
            # Unknown routes flow through _timed under one shared "404"
            # bucket, so /metrics counts scanner noise and typo'd paths
            # instead of silently dropping them.
            def respond():
                raise ServiceError(f"no route {path!r}", status=404)

            self._timed("404", respond)

        # ------------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._timed("/healthz", lambda: self._send_json(service.health()))
            elif path == "/metrics":
                self._timed(
                    "/metrics",
                    lambda: self._send_json(service.metrics_snapshot()),
                )
            elif path == "/jobs":
                self._timed(
                    "/jobs", lambda: self._send_json({"jobs": service.jobs.list()})
                )
            elif (match := _JOB_PATH.match(path)) is not None:
                job_id, events = match.group(1), match.group(2)
                if events:
                    self._timed(
                        "/jobs/<id>/events", lambda: self._stream_events(job_id)
                    )
                else:
                    self._timed(
                        "/jobs/<id>",
                        lambda: self._send_json(service.job_snapshot(job_id)),
                    )
            else:
                self._not_found(path)

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            path = self.path.split("?", 1)[0]
            routes = {
                "/predict": service.predict,
                "/evaluate": service.evaluate,
                "/jobs": service.submit_job,
            }
            handler = routes.get(path)
            if handler is None:
                self._not_found(path)
                return

            def respond():
                payload = self._read_body()
                status = 202 if path == "/jobs" else 200
                if path in ("/predict", "/evaluate"):
                    # The expensive endpoints sit behind the in-flight
                    # budget; overload sheds with 429 + Retry-After.
                    with service.limiter.admit():
                        result = handler(payload)
                else:
                    result = handler(payload)
                self._send_json(result, status=status)

            self._timed(path, respond)

        def _stream_events(self, job_id: str) -> None:
            events = service.job_events(job_id)  # raises 404 before headers
            self._response_started = True
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            for event in events:
                self.wfile.write(canonical_json(event).encode() + b"\n")
                self.wfile.flush()

    return ServiceHandler


def make_server(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 0,
    log: Callable[[str], None] | None = None,
) -> ThreadingHTTPServer:
    """Bind (but do not run) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.  Call ``serve_forever()`` to run, from
    this thread or a daemon thread (the server is threading, so a
    streaming ``/jobs/<id>/events`` reader never blocks ``/predict``).
    """
    handler = _make_handler(service, log)
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 8181,
    log: Callable[[str], None] | None = None,
) -> int:
    """Run the HTTP server until interrupted (the CLI ``serve`` command)."""
    server = make_server(service, host, port, log=log)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving predictions on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0
