"""The background protocol-job queue behind ``/jobs``.

A :class:`JobManager` owns one daemon worker thread draining a FIFO of
protocol runs.  Each :class:`Job` accumulates an append-only event log —
``started``, one ``fold`` per checkpointed fold, then a terminal
``complete``/``failed`` — under a condition variable, so any number of
late-joining readers replay the full history and then block for live
events: exactly the contract ``GET /jobs/<id>/events`` streams as NDJSON.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterator

#: Event types that end a job's stream.
TERMINAL_EVENTS = ("complete", "failed")


class Job:
    """One queued protocol run and its append-only event log."""

    def __init__(self, job_id: str, params: dict):
        self.id = job_id
        self.params = dict(params)
        self.state = "queued"
        self._events: list[dict] = []
        self._condition = threading.Condition()

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def emit(self, event: dict) -> None:
        """Append one event and wake every waiting reader."""
        with self._condition:
            self._events.append(dict(event))
            self._condition.notify_all()

    def snapshot(self) -> dict:
        """The job's current state for ``GET /jobs/<id>``."""
        with self._condition:
            events = len(self._events)
            last = self._events[-1] if self._events else None
        return {
            "id": self.id,
            "state": self.state,
            "params": self.params,
            "events": events,
            "last_event": last,
        }

    def events(self, timeout: float | None = None) -> Iterator[dict]:
        """Replay every event so far, then block for new ones.

        The iterator ends after a terminal event; with ``timeout`` it
        also ends (mid-stream) if no new event arrives in time, so a
        disconnected-but-running job never wedges its reader forever.
        """
        index = 0
        while True:
            with self._condition:
                while index >= len(self._events):
                    if not self._condition.wait(timeout=timeout):
                        return
                event = self._events[index]
            index += 1
            yield event
            if event.get("event") in TERMINAL_EVENTS:
                return


class JobManager:
    """A FIFO of background jobs processed by one daemon worker thread.

    Jobs run strictly one at a time — concurrent protocol runs over the
    same session would contend for the same stores for no speedup (the
    pipeline itself parallelises over folds).
    """

    #: Finished jobs kept for late snapshot/replay readers; older ones
    #: are pruned so a long-running server's memory stays bounded.
    KEEP_FINISHED = 32

    def __init__(self, runner: Callable[[Job], dict]):
        self._runner = runner
        self._jobs: dict[str, Job] = {}
        self._queue: "queue.Queue[Job]" = queue.Queue()
        self._lock = threading.Lock()
        self._counter = 0
        self._worker: threading.Thread | None = None

    def _ensure_worker_locked(self) -> None:
        """Start the drain thread if needed; caller holds ``self._lock``
        (an unlocked check-then-start could spawn two workers and run
        two protocol jobs concurrently)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="repro-job-worker", daemon=True
            )
            self._worker.start()

    def _prune_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap."""
        finished = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in finished[: max(len(finished) - self.KEEP_FINISHED, 0)]:
            del self._jobs[job_id]

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            job.state = "running"
            job.emit({"event": "started", "job": job.id})
            try:
                # The runner returns the terminal event's extra payload;
                # state flips before the event lands so a reader that
                # sees the terminal line also sees the final state.
                outcome = self._runner(job)
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                job.state = "failed"
                job.emit(
                    {"event": "failed", "job": job.id, "error": str(error)}
                )
            else:
                job.state = "done"
                job.emit({"event": "complete", "job": job.id, **(outcome or {})})

    def submit(self, params: dict) -> Job:
        """Enqueue one job; returns immediately with its handle."""
        with self._lock:
            self._counter += 1
            job = Job(f"job-{self._counter:04d}", params)
            self._prune_locked()
            self._jobs[job.id] = job
            self._ensure_worker_locked()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.snapshot() for job in jobs]

    def counts(self) -> dict[str, int]:
        """Jobs per state, for ``/healthz``."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
