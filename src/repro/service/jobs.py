"""The background protocol-job queue behind ``/jobs`` — restart-safe.

A :class:`JobManager` owns one daemon worker thread draining a FIFO of
protocol runs.  Each :class:`Job` accumulates an append-only event log —
``started``, one ``fold`` per checkpointed fold, then a terminal
``complete``/``failed`` — under a condition variable, so any number of
late-joining readers replay the full history and then block for live
events: exactly the contract ``GET /jobs/<id>/events`` streams as NDJSON.

With a ``root`` directory the manager is **persistent**: every job owns
an append-only, digest-chained NDJSON journal on disk (same rules as the
fold store's shards — atomic meta writes, content digests verified on
read, torn tails truncated rather than crashing), so a ``kill -9``'d
server restarts with every job's event history byte-identical and every
unfinished job re-enqueued.  A re-enqueued protocol run resumes from its
checkpointed fold store, so recovery re-simulates nothing::

    <root>/
        job-0001/
            meta.json        # {"format", "id", "params"}
            events.ndjson    # {"chain": <digest>, "event": {...}} per line
            snapshot.json    # compacted history (terminal jobs only)

The chain digest of line *n* covers line *n-1*'s digest plus the event's
canonical JSON, so replay stops at the first torn or tampered line and
everything before it is known-good — an interrupted append costs at most
the event being written, never the history.

Finished jobs can be **compacted** (:meth:`JobManager.compact`): the
event journal is rewritten as one atomic ``snapshot.json`` carrying the
full event list and its final chain digest, and the per-event NDJSON is
deleted.  Loading verifies the snapshot by recomputing the chain from
the seed, so a tampered snapshot is rejected wholesale.  A crash between
the snapshot write and the NDJSON unlink is safe: replay continues from
the snapshot's chain digest, so the stale NDJSON (whose first line
chains from the seed) breaks at line 1 and is discarded.
"""

from __future__ import annotations

import hashlib
import json
import queue
import re
import shutil
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.ioutil import atomic_write_text, fsync_append

#: Event types that end a job's stream.
TERMINAL_EVENTS = ("complete", "failed")

#: Journal schema version; bump on incompatible layout changes.
JOB_FORMAT = 1

_JOB_DIR = re.compile(r"^job-(\d{4,})$")


def jobs_root(cache_directory: str | Path | None = None) -> Path:
    """Where the default persistent job journals live under the cache root."""
    from repro.experiments.dataset import cache_dir

    return cache_dir(cache_directory) / "jobs"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _chain_seed(job_id: str) -> str:
    return hashlib.sha256(job_id.encode()).hexdigest()[:16]


def _chain_digest(previous: str, event: dict) -> str:
    """The rolling digest binding one event to everything before it."""
    return hashlib.sha256(
        (previous + _canonical(event)).encode()
    ).hexdigest()[:16]


class JobJournal:
    """One job's on-disk record: atomic meta plus the event journal."""

    META_NAME = "meta.json"
    EVENTS_NAME = "events.ndjson"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, root: Path):
        self.root = Path(root)

    @classmethod
    def create(cls, root: Path, job_id: str, params: dict) -> "JobJournal":
        journal = cls(root)
        journal.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            journal.root / cls.META_NAME,
            json.dumps(
                {"format": JOB_FORMAT, "id": job_id, "params": dict(params)},
                indent=1,
            ),
            site="jobs.meta",
            fsync=True,
        )
        return journal

    def load_meta(self) -> dict | None:
        """The job's identity, or ``None`` when missing/torn/foreign."""
        path = self.root / self.META_NAME
        try:
            meta = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("format") != JOB_FORMAT:
            return None
        if not isinstance(meta.get("id"), str):
            return None
        return meta

    def load_snapshot(self, job_id: str) -> tuple[list[dict], str] | None:
        """The compacted history, verified, or ``None`` to fall back.

        The chain digest is recomputed from the seed over the stored
        events; a mismatch (tampering, truncation survived by a
        non-atomic writer, foreign job id) rejects the whole snapshot
        rather than trusting an unverifiable prefix.
        """
        path = self.root / self.SNAPSHOT_NAME
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or data.get("format") != JOB_FORMAT:
            return None
        if data.get("id") != job_id:
            return None
        events = data.get("events")
        if not isinstance(events, list) or not all(
            isinstance(event, dict) for event in events
        ):
            return None
        chain = _chain_seed(job_id)
        for event in events:
            chain = _chain_digest(chain, event)
        if data.get("chain") != chain:
            return None
        return events, chain

    def load_events(self, job_id: str) -> tuple[list[dict], str]:
        """Replay the verified journal prefix and its final chain digest.

        Replay stops at the first unparseable, newline-less (a kill mid
        append), or chain-breaking line: everything before it is verified
        append-order history, everything after is discarded as torn.

        A verified snapshot (see :meth:`compact`) seeds the replay: its
        events come first and the NDJSON must chain *from the snapshot's
        digest*.  An NDJSON file left behind by a crash mid-compaction
        chains from the seed instead, so it breaks at line 1 and the
        snapshot alone wins — no event is ever counted twice.
        """
        chain = _chain_seed(job_id)
        events: list[dict] = []
        snapshot = self.load_snapshot(job_id)
        if snapshot is not None:
            snapshot_events, chain = snapshot
            events.extend(dict(event) for event in snapshot_events)
        path = self.root / self.EVENTS_NAME
        if not path.exists():
            return events, chain
        with open(path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # torn tail: the append a kill interrupted
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break
                if not isinstance(record, dict) or not isinstance(
                    record.get("event"), dict
                ):
                    break
                expected = _chain_digest(chain, record["event"])
                if record.get("chain") != expected:
                    break  # tampered or out-of-order: distrust the rest
                events.append(record["event"])
                chain = expected
        return events, chain

    def append(self, event: dict, chain: str) -> str:
        """Durably append one event line; returns the new chain digest."""
        new_chain = _chain_digest(chain, event)
        line = _canonical({"chain": new_chain, "event": event}) + "\n"
        fsync_append(self.root / self.EVENTS_NAME, line.encode(), site="jobs.append")
        return new_chain

    def compact(self, job_id: str, events: list[dict], chain: str) -> None:
        """Collapse the event journal into one atomic snapshot file.

        The snapshot is renamed into place *before* the NDJSON is
        unlinked, so every crash window leaves a loadable history:
        before the rename the journal is untouched; after it the
        snapshot is authoritative and any leftover NDJSON fails its
        chain check at line 1 on the next load.  Idempotent — a second
        call just rewrites the snapshot and re-unlinks.
        """
        atomic_write_text(
            self.root / self.SNAPSHOT_NAME,
            json.dumps(
                {
                    "format": JOB_FORMAT,
                    "id": job_id,
                    "chain": chain,
                    "events": list(events),
                },
                indent=1,
            ),
            site="jobs.snapshot",
            fsync=True,
        )
        try:
            (self.root / self.EVENTS_NAME).unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


class Job:
    """One queued protocol run and its append-only event log.

    State and events live behind one condition variable and only change
    together through :meth:`transition`/:meth:`emit`, so a snapshot can
    never pair a stale state with a terminal event (a torn read the old
    bare ``self.state`` attribute allowed).
    """

    def __init__(
        self,
        job_id: str,
        params: dict,
        journal: JobJournal | None = None,
        events: list[dict] | None = None,
        chain: str | None = None,
    ):
        self.id = job_id
        self.params = dict(params)
        self._journal = journal
        self._events: list[dict] = [dict(event) for event in (events or [])]
        self._chain = chain if chain is not None else _chain_seed(job_id)
        self._condition = threading.Condition()
        last = self._events[-1] if self._events else None
        kind = last.get("event") if last else None
        if kind == "complete":
            self._state = "done"
        elif kind == "failed":
            self._state = "failed"
        else:
            self._state = "queued"

    @property
    def state(self) -> str:
        with self._condition:
            return self._state

    @property
    def done(self) -> bool:
        with self._condition:
            return self._state in ("done", "failed")

    @property
    def replayed(self) -> bool:
        """True when the job carries journal history from a prior process."""
        with self._condition:
            return bool(self._events) and self._state == "queued"

    def _append_locked(self, event: dict) -> None:
        event = dict(event)
        if self._journal is not None:
            self._chain = self._journal.append(event, self._chain)
        else:
            self._chain = _chain_digest(self._chain, event)
        self._events.append(event)

    def emit(self, event: dict) -> None:
        """Append one event and wake every waiting reader."""
        with self._condition:
            self._append_locked(event)
            self._condition.notify_all()

    def transition(self, state: str, event: dict | None = None) -> None:
        """Atomically flip the state and (optionally) append an event.

        The worker uses this for every lifecycle change, so readers see
        the state and the event land together — a snapshot taken between
        them cannot observe ``running`` next to a terminal event.
        """
        with self._condition:
            self._state = state
            if event is not None:
                self._append_locked(event)
            self._condition.notify_all()

    def compact(self) -> bool:
        """Collapse this job's on-disk journal into one snapshot file.

        Only terminal, journalled jobs compact — a running job's journal
        is still being appended to, and an in-memory job has nothing on
        disk.  Returns whether a snapshot was written.
        """
        with self._condition:
            if self._journal is None or self._state not in ("done", "failed"):
                return False
            self._journal.compact(
                self.id, [dict(event) for event in self._events], self._chain
            )
            return True

    def snapshot(self) -> dict:
        """The job's current state for ``GET /jobs/<id>``."""
        with self._condition:
            return {
                "id": self.id,
                "state": self._state,
                "params": self.params,
                "events": len(self._events),
                "last_event": dict(self._events[-1]) if self._events else None,
            }

    def events(self, timeout: float | None = None) -> Iterator[dict]:
        """Replay every event so far, then block for new ones.

        The iterator ends after a terminal event; with ``timeout`` it
        also ends (mid-stream) if no new event arrives in time, so a
        disconnected-but-running job never wedges its reader forever.
        """
        index = 0
        while True:
            with self._condition:
                while index >= len(self._events):
                    if not self._condition.wait(timeout=timeout):
                        return
                event = self._events[index]
            index += 1
            yield event
            if event.get("event") in TERMINAL_EVENTS:
                return


class JobManager:
    """A FIFO of background jobs processed by one daemon worker thread.

    Jobs run strictly one at a time — concurrent protocol runs over the
    same session would contend for the same stores for no speedup (the
    pipeline itself parallelises over folds).

    With ``root`` the manager journals every job to disk and, at
    construction, recovers the previous process's jobs: finished jobs
    come back snapshot/replay-able, unfinished ones re-enter the queue
    (oldest first) and resume — their protocol runs pick up from the
    checkpointed fold store, so nothing is re-simulated.
    """

    #: Finished jobs kept for late snapshot/replay readers; older ones
    #: are pruned so a long-running server's memory stays bounded.
    KEEP_FINISHED = 32

    def __init__(self, runner: Callable[[Job], dict], root: str | Path | None = None):
        self._runner = runner
        self.root = Path(root) if root is not None else None
        self._jobs: dict[str, Job] = {}
        self._queue: "queue.Queue[Job]" = queue.Queue()
        self._lock = threading.Lock()
        self._counter = 0
        self._worker: threading.Thread | None = None
        #: Human-readable recovery problems (unreadable root, torn job
        #: metadata).  Surfaced by ``/healthz`` as a ``degraded`` status
        #: instead of crashing the service at construction.
        self.degraded_reasons: list[str] = []
        if self.root is not None:
            try:
                self._recover()
            except OSError as error:
                self.degraded_reasons.append(
                    f"job root {self.root} is unreadable: {error}"
                )

    # ------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Reload journalled jobs; unfinished ones re-enter the queue."""
        if not self.root.exists():
            return
        resumable: list[Job] = []
        for path in sorted(self.root.iterdir()):
            match = _JOB_DIR.match(path.name)
            if match is None or not path.is_dir():
                continue
            journal = JobJournal(path)
            meta = journal.load_meta()
            if meta is None or meta["id"] != path.name:
                # Torn or foreign meta: not a recoverable job.  The job
                # directory stays untouched for fsck to quarantine, and
                # the manager reports itself degraded rather than
                # silently forgetting the job existed.
                self.degraded_reasons.append(
                    f"{path.name}: corrupt meta (quarantine with fsck)"
                )
                self._counter = max(self._counter, int(match.group(1)))
                continue
            events, chain = journal.load_events(meta["id"])
            job = Job(
                meta["id"],
                meta.get("params", {}),
                journal=journal,
                events=events,
                chain=chain,
            )
            self._jobs[job.id] = job
            self._counter = max(self._counter, int(match.group(1)))
            if not job.done:
                resumable.append(job)
        if resumable:
            with self._lock:
                self._ensure_worker_locked()
            for job in resumable:
                self._queue.put(job)

    def _ensure_worker_locked(self) -> None:
        """Start the drain thread if needed; caller holds ``self._lock``
        (an unlocked check-then-start could spawn two workers and run
        two protocol jobs concurrently)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="repro-job-worker", daemon=True
            )
            self._worker.start()

    def _prune_locked(self) -> None:
        """Drop the oldest finished jobs (and journals) beyond the cap."""
        finished = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in finished[: max(len(finished) - self.KEEP_FINISHED, 0)]:
            job = self._jobs.pop(job_id)
            if job._journal is not None:
                job._journal.destroy()

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            # A replayed job already journalled "started" (and maybe
            # folds) in its previous life; "resumed" marks the new one
            # while keeping the journal a byte-identical prefix.
            if job.replayed:
                job.transition("running", {"event": "resumed", "job": job.id})
            else:
                job.transition("running", {"event": "started", "job": job.id})
            try:
                # The runner returns the terminal event's extra payload;
                # the state flips atomically with the event, so a reader
                # that sees the terminal line also sees the final state.
                outcome = self._runner(job)
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                job.transition(
                    "failed",
                    {"event": "failed", "job": job.id, "error": str(error)},
                )
            else:
                job.transition(
                    "done",
                    {"event": "complete", "job": job.id, **(outcome or {})},
                )

    def submit(self, params: dict) -> Job:
        """Enqueue one job; returns immediately with its handle."""
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            if self.root is not None:
                journal = JobJournal.create(
                    self.root / job_id, job_id, dict(params)
                )
                job = Job(job_id, params, journal=journal)
            else:
                job = Job(job_id, params)
            self._prune_locked()
            self._jobs[job.id] = job
            self._ensure_worker_locked()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def compact(self, job_id: str | None = None) -> int:
        """Snapshot finished jobs' journals; returns how many compacted.

        With ``job_id`` only that job is considered; otherwise every
        finished job is.  Unfinished, unknown, and in-memory jobs are
        skipped, never errors — compaction is an optimisation, not a
        lifecycle step.
        """
        with self._lock:
            if job_id is not None:
                job = self._jobs.get(job_id)
                jobs = [job] if job is not None else []
            else:
                jobs = list(self._jobs.values())
        return sum(1 for job in jobs if job.compact())

    def list(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.snapshot() for job in jobs]

    def counts(self) -> dict[str, int]:
        """Jobs per state, for ``/healthz``."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
