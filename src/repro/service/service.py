"""The prediction service: the paper's deployable end product.

A :class:`PredictionService` fronts one :class:`~repro.api.Session` and
one :class:`~repro.api.ModelRegistry`: train once per microarchitecture
space, promote the model, then answer "which flag setting for this
program/machine?" from memory forever.  It is transport-agnostic — every
endpoint is a plain ``dict -> dict`` method the HTTP layer (and the
tests) call directly, serialised with :func:`canonical_json` so an HTTP
response and the in-process facet answer are bit-identical.

The served model tracks the registry's *promoted* pointer: each request
re-reads the pointer (one tiny JSON stat) and reloads only when it
moved, so a ``promote``/``rollback`` from another process takes effect
on the next request without a restart.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Iterator

from repro.api import ModelRegistry, RegistryError, Session
from repro.api.backends import resolve_backend
from repro.api.facets import (
    profile_with_model,
    ranked_prediction,
    ranked_prediction_many,
)
from repro.compiler.flags import FlagSetting
from repro.machine.params import MicroArch
from repro.service.jobs import Job, JobManager
from repro.sim.counters import COUNTER_NAMES, PerfCounters

#: Upper bound on ``top`` in /predict: the flag space holds ~4e14
#: settings, so an uncapped request could enumerate effectively forever.
MAX_TOP = 100

#: Upper bound on ``items`` in a batched /predict request.
MAX_BATCH_ITEMS = 256


def canonical_json(payload: dict) -> str:
    """The service's one serialisation: sorted keys, no whitespace.

    Floats emit their shortest round-tripping repr, so two payloads are
    byte-identical exactly when their values are bit-identical — the
    property the ``/predict`` contract (and its tests) rely on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ServiceError(Exception):
    """A client-visible failure with an HTTP status code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ServiceMetrics:
    """Per-endpoint request counts and latency percentiles.

    Latencies are kept in a bounded per-endpoint window; percentiles are
    computed on read (nearest-rank), so recording stays O(1) per request.
    """

    WINDOW = 1024

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latencies: dict[str, list[float]] = {}
        self._started = time.monotonic()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            self._counts[endpoint] = self._counts.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            window = self._latencies.setdefault(endpoint, [])
            window.append(seconds)
            if len(window) > self.WINDOW:
                del window[: len(window) - self.WINDOW]

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        index = max(0, min(len(ordered) - 1, round(fraction * len(ordered)) - 1))
        return ordered[index]

    def snapshot(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
            errors = dict(self._errors)
            latencies = {key: list(window) for key, window in self._latencies.items()}
            uptime = time.monotonic() - self._started
        endpoints = {}
        for endpoint, count in sorted(counts.items()):
            ordered = sorted(latencies.get(endpoint, []))
            summary = {
                "count": count,
                "errors": errors.get(endpoint, 0),
            }
            if ordered:
                summary["latency_ms"] = {
                    "mean": sum(ordered) / len(ordered) * 1000.0,
                    "p50": self._percentile(ordered, 0.50) * 1000.0,
                    "p90": self._percentile(ordered, 0.90) * 1000.0,
                    "p99": self._percentile(ordered, 0.99) * 1000.0,
                    "max": ordered[-1] * 1000.0,
                }
            endpoints[endpoint] = summary
        return {"uptime_seconds": uptime, "endpoints": endpoints}


# ------------------------------------------------------------ payload codecs
def _machine_from(payload: dict) -> MicroArch:
    fields = payload.get("machine")
    if not isinstance(fields, dict):
        raise ServiceError("request needs a 'machine' object of MicroArch fields")
    try:
        return MicroArch(**fields)
    except TypeError as error:
        raise ServiceError(f"bad machine: {error}")


def _counters_from(payload: dict) -> PerfCounters:
    raw = payload["counters"]
    if isinstance(raw, dict):
        missing = [name for name in COUNTER_NAMES if name not in raw]
        if missing:
            raise ServiceError(f"counters missing {missing}")
        values = [raw[name] for name in COUNTER_NAMES]
    elif isinstance(raw, (list, tuple)):
        values = list(raw)
    else:
        raise ServiceError("'counters' must be an object or an 11-value array")
    if len(values) != len(COUNTER_NAMES):
        raise ServiceError(
            f"counters need exactly {len(COUNTER_NAMES)} values, got {len(values)}"
        )
    try:
        return PerfCounters(*(float(value) for value in values))
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad counters: {error}")


def _setting_from(payload: dict) -> FlagSetting | None:
    raw = payload.get("setting")
    if raw is None:
        return None
    try:
        if isinstance(raw, dict) and "indices" in raw:
            return FlagSetting.from_indices(raw["indices"])
        if isinstance(raw, dict) and "flags" in raw:
            return FlagSetting(raw["flags"])
        if isinstance(raw, (list, tuple)):
            return FlagSetting.from_indices(raw)
    except (TypeError, ValueError, KeyError) as error:
        raise ServiceError(f"bad setting: {error}")
    raise ServiceError(
        "'setting' must be an index array, {'indices': [...]}, or {'flags': {...}}"
    )


class PredictionService:
    """Registry-backed prediction, evaluation, and protocol jobs."""

    def __init__(self, session: Session, registry: ModelRegistry | None = None):
        self.session = session
        self.registry = (
            registry if registry is not None else session.models.registry()
        )
        self.metrics = ServiceMetrics()
        self.jobs = JobManager(self._run_job)
        self._model_lock = threading.Lock()
        #: Loaded (predictor, provenance) per registry version.  Versions
        #: are immutable, so entries are valid forever; only the newest
        #: few are kept to bound memory across many promotions.
        self._models: dict[int, tuple[object, dict]] = {}
        self._MODEL_CACHE = 4

    # -------------------------------------------------------------- the model
    def _promoted_model(self) -> tuple[object, dict]:
        """The promoted predictor plus its provenance, from the cache.

        Re-checks the promotion pointer per request (one tiny JSON read)
        and loads a version at most once.  The returned pair is
        immutable, so a request keeps ranking with the model it started
        with even if a concurrent ``promote``/``rollback`` moves the
        pointer mid-flight.
        """
        try:
            promoted = self.registry.promoted_version()
        except RegistryError as error:
            raise ServiceError(str(error), status=503)
        if promoted is None:
            raise ServiceError(
                f"no promoted model in registry {self.registry.root}; "
                "train one with: repro-experiments train",
                status=503,
            )
        with self._model_lock:
            cached = self._models.get(promoted)
            if cached is None:
                try:
                    predictor, entry = self.registry.load(
                        promoted,
                        space=self.session.flag_space,
                        vectorize=self.session.vectorize,
                    )
                except RegistryError as error:
                    raise ServiceError(str(error), status=503)
                info = {
                    "version": entry.version,
                    "digest": entry.digest,
                    "fingerprint": entry.fingerprint,
                }
                cached = (predictor, info)
                self._models[promoted] = cached
                while len(self._models) > self._MODEL_CACHE:
                    self._models.pop(next(iter(self._models)))
            return cached

    def model_info(self) -> dict | None:
        """Provenance of the served model (``None`` before promotion)."""
        try:
            _, info = self._promoted_model()
        except ServiceError:
            return None
        return info

    # -------------------------------------------------------------- endpoints
    def health(self) -> dict:
        return {
            "status": "ok",
            "scale": self.session.scale.name,
            "registry": str(self.registry.root),
            "model": self.model_info(),
            "jobs": self.jobs.counts(),
        }

    def predict(self, payload: dict) -> dict:
        """``POST /predict``: features or program-spec in, ranked settings out.

        The ranked list is exactly what ``session.models.rank(...)`` /
        ``rank_counters(...)`` produce on the promoted model — both go
        through :func:`~repro.api.facets.ranked_prediction`, so the
        service serialises the same payload bit-for-bit.  The model and
        the provenance echoed back are captured together, once, so the
        response always names the version that actually answered.

        A payload with an ``items`` array is a batch: each element is a
        single-predict payload, answered in order and returned under
        ``results``, with program-spec profiling routed through the
        vectorised simulate-many kernel (one pass over the batch's
        binary × machine grid).  Per-item payloads are byte-identical to
        what ``len(items)`` single requests would return.
        """
        if "items" in payload:
            return self._predict_batch(payload)
        model, info = self._promoted_model()
        machine = _machine_from(payload)
        top = payload.get("top", 5)
        if not isinstance(top, int) or not 1 <= top <= MAX_TOP:
            raise ServiceError(f"'top' must be an integer in [1, {MAX_TOP}]")
        program_name = payload.get("program")
        if "counters" in payload:
            counters = _counters_from(payload)
            code_features = None
        elif program_name is not None:
            try:
                program = self.session.program(program_name)
            except ValueError as error:
                raise ServiceError(str(error), status=404)
            try:
                backend = (
                    self.session.backend
                    if payload.get("backend") is None
                    else resolve_backend(payload["backend"])
                )
            except (ValueError, TypeError) as error:
                raise ServiceError(f"bad backend: {error}")
            profile, code_features = profile_with_model(
                model, self.session.compile(program), machine, backend
            )
            counters = profile.counters
            program_name = program.name
        else:
            raise ServiceError("request needs 'program' or 'counters'")
        try:
            ranked = ranked_prediction(
                model,
                counters,
                machine,
                top,
                code_features=code_features,
                program=program_name,
            )
        except ValueError as error:
            raise ServiceError(str(error))
        return {"model": info, **ranked.payload()}

    # ------------------------------------------------------------ batch predict
    def _predict_batch(self, payload: dict) -> dict:
        """The ``items`` form of ``/predict``: many queries, one pass.

        Counter items rank directly; program-spec items are profiled in
        bulk — each distinct program compiled once, the whole
        (binary × machine) grid priced by the backend's ``run_many``
        (the vectorised kernel for the analytic tier).  Item order is
        preserved and each element of ``results`` matches the
        corresponding single-request payload bit-for-bit.
        """
        model, info = self._promoted_model()
        items = payload["items"]
        if not isinstance(items, list) or not items:
            raise ServiceError("'items' must be a non-empty array of predict payloads")
        if len(items) > MAX_BATCH_ITEMS:
            raise ServiceError(
                f"batch too large: {len(items)} items (max {MAX_BATCH_ITEMS})"
            )
        default_top = payload.get("top", 5)

        parsed: list[dict] = []
        profile_groups: dict[object, list[int]] = {}
        for index, item in enumerate(items):
            try:
                if not isinstance(item, dict):
                    raise ServiceError("must be an object")
                machine = _machine_from(item)
                top = item.get("top", default_top)
                if not isinstance(top, int) or not 1 <= top <= MAX_TOP:
                    raise ServiceError(f"'top' must be an integer in [1, {MAX_TOP}]")
                entry = {"machine": machine, "top": top, "program": None,
                         "counters": None, "code_features": None}
                program_name = item.get("program")
                if "counters" in item:
                    entry["counters"] = _counters_from(item)
                    entry["program"] = program_name
                elif program_name is not None:
                    try:
                        entry["binary"] = self.session.compile(
                            self.session.program(program_name)
                        )
                    except ValueError as error:
                        raise ServiceError(str(error), status=404)
                    entry["program"] = entry["binary"].program_name
                    try:
                        backend = (
                            self.session.backend
                            if item.get("backend") is None
                            else resolve_backend(item["backend"])
                        )
                    except (ValueError, TypeError) as error:
                        raise ServiceError(f"bad backend: {error}")
                    entry["backend"] = backend
                    profile_groups.setdefault(backend, []).append(index)
                else:
                    raise ServiceError("needs 'program' or 'counters'")
                parsed.append(entry)
            except ServiceError as error:
                raise ServiceError(f"items[{index}]: {error}", status=error.status)

        for backend, indices in profile_groups.items():
            self._profile_group(model, backend, [parsed[i] for i in indices])

        try:
            # One ranking-kernel pass for the whole batch; each result is
            # bit-identical to the corresponding single-request payload.
            ranked_batch = ranked_prediction_many(model, parsed)
        except ValueError:
            # Re-run item by item only to attribute the failure.
            for index, entry in enumerate(parsed):
                try:
                    ranked_prediction(
                        model,
                        entry["counters"],
                        entry["machine"],
                        entry["top"],
                        code_features=entry["code_features"],
                        program=entry["program"],
                    )
                except ValueError as error:
                    raise ServiceError(f"items[{index}]: {error}")
            raise
        results = [ranked.payload() for ranked in ranked_batch]
        return {"model": info, "results": results}

    def _profile_group(self, model, backend, entries: list[dict]) -> None:
        """Fill ``counters``/``code_features`` for one backend's entries.

        Batch-capable backends price the deduplicated binary × machine
        grid in one ``run_many`` call; others (or a session with
        ``vectorize=False``) fall back to the scalar per-item profile.
        Both produce the exact counters a single ``/predict`` computes.
        """
        run_many = (
            getattr(backend, "run_many", None)
            if self.session.vectorize
            else None
        )
        if run_many is None:
            for entry in entries:
                profile, code_features = profile_with_model(
                    model, entry["binary"], entry["machine"], backend
                )
                entry["counters"] = profile.counters
                entry["code_features"] = code_features
            return

        from repro.sim.vector import GridIndex

        rows, cols = GridIndex(), GridIndex()
        coords = [
            (
                rows.add(id(entry["binary"]), lambda: entry["binary"]),
                cols.add(entry["machine"], lambda: entry["machine"]),
            )
            for entry in entries
        ]
        grid = run_many(rows.values, cols.values)
        features = [None] * len(rows.values)
        if model.feature_mode == "with_code":
            from repro.core.code_features import static_code_features

            features = [static_code_features(binary) for binary in rows.values]
        for entry, (row, col) in zip(entries, coords):
            entry["counters"] = PerfCounters(*grid.counters[row, col, :])
            entry["code_features"] = features[row]

    def evaluate(self, payload: dict) -> dict:
        """``POST /evaluate``: compile-and-simulate one triple."""
        try:
            program = self.session.program(payload.get("program", ""))
        except ValueError as error:
            raise ServiceError(str(error), status=404)
        machine = _machine_from(payload)
        setting = _setting_from(payload)
        backend = payload.get("backend")
        try:
            resolve_backend(backend if backend is not None else "analytic")
        except (KeyError, ValueError, TypeError) as error:
            raise ServiceError(f"bad backend: {error}")
        result = self.session.eval.evaluate(
            program, machine, setting=setting, backend=backend
        )
        return {
            "program": result.program,
            "machine": dataclasses.asdict(result.machine),
            "setting": list(result.setting.as_indices()),
            "backend": result.backend,
            "runtime_seconds": result.runtime,
            "cycles": result.cycles,
            "energy_nj": result.energy_nj,
            "counters": dict(zip(COUNTER_NAMES, result.counters.vector())),
        }

    # ------------------------------------------------------------------- jobs
    def submit_job(self, payload: dict) -> dict:
        """``POST /jobs``: queue a (possibly capped) background protocol run."""
        params = {
            "scale": payload.get("scale"),
            "only": payload.get("only"),
            "max_folds": payload.get("max_folds"),
        }
        max_folds = params["max_folds"]
        if max_folds is not None and (not isinstance(max_folds, int) or max_folds < 1):
            raise ServiceError("'max_folds' must be a positive integer")
        job = self.jobs.submit(params)
        return job.snapshot()

    def _run_job(self, job: Job) -> dict:
        """Worker-thread body: one protocol run streaming fold events."""

        def on_fold(key, completed, total):
            job.emit(
                {
                    "event": "fold",
                    "job": job.id,
                    "fold": key.stem(),
                    "variant": key.variant,
                    "program": key.program,
                    "completed": completed,
                    "total": total,
                }
            )

        outcome = self.session.protocol.run(
            scale=job.params.get("scale"),
            only=job.params.get("only"),
            max_folds=job.params.get("max_folds"),
            on_fold=on_fold,
        )
        result = {
            "protocol_complete": outcome.complete,
            "folds_computed": outcome.stats.folds_computed,
            "folds_skipped": outcome.stats.folds_skipped,
        }
        if outcome.report is not None:
            result["report_fingerprint"] = outcome.report.fingerprint
        return result

    def job_snapshot(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return job.snapshot()

    def job_events(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return job.events(timeout=timeout)
