"""The prediction service: the paper's deployable end product.

A :class:`PredictionService` fronts one :class:`~repro.api.Session` and
one :class:`~repro.api.ModelRegistry`: train once per microarchitecture
space, promote the model, then answer "which flag setting for this
program/machine?" from memory forever.  It is transport-agnostic — every
endpoint is a plain ``dict -> dict`` method the HTTP layer (and the
tests) call directly, serialised with :func:`canonical_json` so an HTTP
response and the in-process facet answer are bit-identical.

Production shape:

* **Multi-model routing** — requests carry an optional ``channel`` and
  are answered by that channel's promoted registry model; each request
  re-reads the channel's promotion pointer (one tiny JSON stat) and
  reloads only when it moved, so a ``promote``/``rollback`` from another
  process takes effect on the next request without a restart.
* **Request micro-batching** — concurrent single ``/predict`` requests
  coalesce (:class:`PredictBatcher`) into one batched ranking-kernel
  pass, with every per-request payload byte-identical to the unbatched
  answer.
* **Load shedding** — a bounded in-flight budget (:class:`LoadLimiter`)
  turns overload into immediate 429 + ``Retry-After`` instead of a
  pile-up, surfaced in ``/metrics``.
* **Persistent jobs** — ``POST /jobs`` journals to disk (when the
  session uses a disk cache), so job history and unfinished runs survive
  a server restart; see :mod:`repro.service.jobs`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import math
import threading
import time
from typing import Iterator

from repro.api import ModelRegistry, RegistryError, Session
from repro.api.backends import resolve_backend
from repro.api.facets import (
    profile_with_model,
    ranked_prediction,
    ranked_prediction_many,
)
from repro.api.registry import DEFAULT_CHANNEL, validate_channel
from repro.compiler.flags import FlagSetting
from repro.evalrun import resolve_artifacts
from repro.experiments.config import preset
from repro.machine.params import MicroArch
from repro.service.jobs import Job, JobManager, jobs_root
from repro.sim.counters import COUNTER_NAMES, PerfCounters

#: Upper bound on ``top`` in /predict: the flag space holds ~4e14
#: settings, so an uncapped request could enumerate effectively forever.
MAX_TOP = 100

#: Upper bound on ``items`` in a batched /predict request.
MAX_BATCH_ITEMS = 256

#: Default bound on concurrently-served /predict + /evaluate requests;
#: arrivals beyond it are shed with 429 rather than queued.
DEFAULT_MAX_INFLIGHT = 64


def canonical_json(payload: dict) -> str:
    """The service's one serialisation: sorted keys, no whitespace.

    Floats emit their shortest round-tripping repr, so two payloads are
    byte-identical exactly when their values are bit-identical — the
    property the ``/predict`` contract (and its tests) rely on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ServiceError(Exception):
    """A client-visible failure with an HTTP status code.

    ``retry_after`` (seconds) is set on load-shed 429s so the transport
    can emit a ``Retry-After`` header.
    """

    def __init__(
        self, message: str, status: int = 400, retry_after: float | None = None
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceMetrics:
    """Per-endpoint and per-channel request counts and latency percentiles.

    Latencies are kept in a bounded window per key; percentiles are
    computed on read (nearest-rank), so recording stays O(1) per request.
    Endpoints and routing channels are separate key spaces: ``/predict``
    traffic lands in one endpoint bucket *and* in the bucket of the
    channel whose promoted model answered it, so a slow canary model is
    visible without un-mixing the shared endpoint window.
    """

    WINDOW = 1024

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latencies: dict[str, list[float]] = {}
        self._channel_counts: dict[str, int] = {}
        self._channel_errors: dict[str, int] = {}
        self._channel_latencies: dict[str, list[float]] = {}
        self._started = time.monotonic()

    def _record(
        self,
        counts: dict[str, int],
        errors: dict[str, int],
        latencies: dict[str, list[float]],
        key: str,
        seconds: float,
        error: bool,
    ) -> None:
        counts[key] = counts.get(key, 0) + 1
        if error:
            errors[key] = errors.get(key, 0) + 1
        window = latencies.setdefault(key, [])
        window.append(seconds)
        if len(window) > self.WINDOW:
            del window[: len(window) - self.WINDOW]

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            self._record(
                self._counts, self._errors, self._latencies,
                endpoint, seconds, error,
            )

    def observe_channel(
        self, channel: str, seconds: float, error: bool = False
    ) -> None:
        """Attribute one answered (or failed) request to a routing channel."""
        with self._lock:
            self._record(
                self._channel_counts,
                self._channel_errors,
                self._channel_latencies,
                channel,
                seconds,
                error,
            )

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile: the ``ceil(fraction * N)``-th value.

        ``round()`` is wrong here — it banker's-rounds half-way ranks
        down, so p50 of a 5-sample window picked the 2nd value instead
        of the median.  Nearest-rank always ceils.
        """
        index = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]

    @classmethod
    def _summarise(
        cls,
        counts: dict[str, int],
        errors: dict[str, int],
        latencies: dict[str, list[float]],
    ) -> dict:
        summaries = {}
        for key, count in sorted(counts.items()):
            ordered = sorted(latencies.get(key, []))
            summary = {
                "count": count,
                "errors": errors.get(key, 0),
            }
            if ordered:
                summary["latency_ms"] = {
                    "mean": sum(ordered) / len(ordered) * 1000.0,
                    "p50": cls._percentile(ordered, 0.50) * 1000.0,
                    "p90": cls._percentile(ordered, 0.90) * 1000.0,
                    "p99": cls._percentile(ordered, 0.99) * 1000.0,
                    "max": ordered[-1] * 1000.0,
                }
            summaries[key] = summary
        return summaries

    def snapshot(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
            errors = dict(self._errors)
            latencies = {key: list(window) for key, window in self._latencies.items()}
            channel_counts = dict(self._channel_counts)
            channel_errors = dict(self._channel_errors)
            channel_latencies = {
                key: list(window)
                for key, window in self._channel_latencies.items()
            }
            uptime = time.monotonic() - self._started
        return {
            "uptime_seconds": uptime,
            "endpoints": self._summarise(counts, errors, latencies),
            "channels": self._summarise(
                channel_counts, channel_errors, channel_latencies
            ),
        }


class LoadLimiter:
    """A bounded in-flight budget for the expensive endpoints.

    Admission is O(1) under one lock.  When the budget is exhausted the
    request is shed immediately with 429 + ``Retry-After`` instead of
    queueing, so overload degrades into fast, explicit backpressure
    rather than a thread pile-up behind the model lock.
    """

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        retry_after: float = 1.0,
    ):
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak = 0
        self._shed = 0

    @contextlib.contextmanager
    def admit(self):
        """Hold one in-flight slot, or raise a 429 ``ServiceError``."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                raise ServiceError(
                    f"server overloaded: {self._inflight} requests in flight "
                    f"(max {self.max_inflight})",
                    status=429,
                    retry_after=self.retry_after,
                )
            self._inflight += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "peak_inflight": self._peak,
                "shed": self._shed,
            }


class _PendingPredict:
    """One caller's slot in the micro-batch queue."""

    __slots__ = ("payload", "response", "error", "done")

    def __init__(self, payload: dict):
        self.payload = payload
        self.response: dict | None = None
        self.error: BaseException | None = None
        self.done = False


class PredictBatcher:
    """Coalesce concurrent single ``/predict`` requests into one pass.

    Batching is contention-driven: the first thread to arrive becomes
    the dispatcher, optionally sleeps a tiny gather ``window``, then
    drains everything queued behind it into one ranking-kernel pass
    (:func:`~repro.api.facets.ranked_prediction_many`).  Requests that
    arrive while a dispatch is in flight queue up and form the next
    batch, so under load batches grow naturally while an idle server
    with ``window=0`` adds no latency at all.

    Each member's payload is parsed, profiled, and ranked by exactly the
    code the unbatched path uses, so per-request responses are
    byte-identical to unbatched answers — including per-request errors,
    which are raised in the caller's own thread.
    """

    def __init__(
        self,
        service: "PredictionService",
        window: float = 0.0,
        max_items: int = MAX_BATCH_ITEMS,
    ):
        self._service = service
        self.window = window
        self.max_items = max_items
        self._condition = threading.Condition()
        self._pending: list[_PendingPredict] = []
        self._dispatching = False
        self._batches = 0
        self._requests = 0
        self._max_batch = 0

    def snapshot(self) -> dict:
        with self._condition:
            return {
                "enabled": True,
                "window_seconds": self.window,
                "max_items": self.max_items,
                "batches": self._batches,
                "requests": self._requests,
                "max_batch": self._max_batch,
            }

    def submit(self, payload: dict) -> dict:
        """Answer one single-predict payload, possibly batched with peers."""
        request = _PendingPredict(payload)
        with self._condition:
            self._pending.append(request)
        while True:
            with self._condition:
                if request.done:
                    break
                if self._dispatching:
                    self._condition.wait()
                    continue
                self._dispatching = True
            batch: list[_PendingPredict] = []
            try:
                if self.window:
                    time.sleep(self.window)
                with self._condition:
                    batch = self._pending[: self.max_items]
                    del self._pending[: len(batch)]
                    if batch:
                        self._batches += 1
                        self._requests += len(batch)
                        if len(batch) > self._max_batch:
                            self._max_batch = len(batch)
                if batch:
                    self._dispatch(batch)
            finally:
                with self._condition:
                    self._dispatching = False
                    for member in batch:
                        member.done = True
                    self._condition.notify_all()
        if request.error is not None:
            raise request.error
        assert request.response is not None
        return request.response

    def _dispatch(self, batch: list[_PendingPredict]) -> None:
        """Answer a drained batch, grouped by routing channel."""
        groups: dict[str | None, list[_PendingPredict]] = {}
        for member in batch:
            try:
                channel = _channel_from(member.payload)
            except ServiceError as error:
                member.error = error
                continue
            groups.setdefault(channel, []).append(member)
        for channel, members in groups.items():
            try:
                self._dispatch_channel(channel, members)
            except BaseException as error:
                for member in members:
                    if member.response is None and member.error is None:
                        member.error = error

    def _dispatch_channel(
        self, channel: str | None, members: list[_PendingPredict]
    ) -> None:
        service = self._service
        try:
            model, info = service._promoted_model(channel)
        except ServiceError as error:
            for member in members:
                member.error = error
            return

        live: list[tuple[_PendingPredict, dict]] = []
        for member in members:
            try:
                live.append((member, service._parse_predict_entry(member.payload)))
            except ServiceError as error:
                member.error = error

        # Program-spec members profile together: one run_many grid pass
        # per backend, exactly as the explicit `items` batch form does.
        profile_groups: dict[object, list[tuple[_PendingPredict, dict]]] = {}
        for member, entry in live:
            if entry["binary"] is not None:
                profile_groups.setdefault(entry["backend"], []).append((member, entry))
        for backend, group in profile_groups.items():
            try:
                service._profile_group(model, backend, [entry for _, entry in group])
            except BaseException as error:
                failed = {id(entry) for _, entry in group}
                for member, _ in group:
                    member.error = error
                live = [pair for pair in live if id(pair[1]) not in failed]
        if not live:
            return

        try:
            ranked_batch = ranked_prediction_many(
                model, [entry for _, entry in live]
            )
        except ValueError:
            # Attribute the failure per member; survivors still answer.
            for member, entry in live:
                try:
                    ranked = ranked_prediction(
                        model,
                        entry["counters"],
                        entry["machine"],
                        entry["top"],
                        code_features=entry["code_features"],
                        program=entry["program"],
                    )
                except ValueError as error:
                    member.error = ServiceError(str(error))
                else:
                    member.response = {"model": info, **ranked.payload()}
            return
        for (member, _), ranked in zip(live, ranked_batch):
            member.response = {"model": info, **ranked.payload()}


# ------------------------------------------------------------ payload codecs
def _channel_from(payload: dict) -> str | None:
    """The request's routing channel, validated (``None`` = service default)."""
    channel = payload.get("channel")
    if channel is None:
        return None
    try:
        return validate_channel(channel)
    except RegistryError as error:
        raise ServiceError(str(error))



def _machine_from(payload: dict) -> MicroArch:
    fields = payload.get("machine")
    if not isinstance(fields, dict):
        raise ServiceError("request needs a 'machine' object of MicroArch fields")
    try:
        return MicroArch(**fields)
    except TypeError as error:
        raise ServiceError(f"bad machine: {error}")


def _counters_from(payload: dict) -> PerfCounters:
    raw = payload["counters"]
    if isinstance(raw, dict):
        missing = [name for name in COUNTER_NAMES if name not in raw]
        if missing:
            raise ServiceError(f"counters missing {missing}")
        values = [raw[name] for name in COUNTER_NAMES]
    elif isinstance(raw, (list, tuple)):
        values = list(raw)
    else:
        raise ServiceError("'counters' must be an object or an 11-value array")
    if len(values) != len(COUNTER_NAMES):
        raise ServiceError(
            f"counters need exactly {len(COUNTER_NAMES)} values, got {len(values)}"
        )
    try:
        return PerfCounters(*(float(value) for value in values))
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad counters: {error}")


def _setting_from(payload: dict) -> FlagSetting | None:
    raw = payload.get("setting")
    if raw is None:
        return None
    try:
        if isinstance(raw, dict) and "indices" in raw:
            return FlagSetting.from_indices(raw["indices"])
        if isinstance(raw, dict) and "flags" in raw:
            return FlagSetting(raw["flags"])
        if isinstance(raw, (list, tuple)):
            return FlagSetting.from_indices(raw)
    except (TypeError, ValueError, KeyError) as error:
        raise ServiceError(f"bad setting: {error}")
    raise ServiceError(
        "'setting' must be an index array, {'indices': [...]}, or {'flags': {...}}"
    )


class PredictionService:
    """Registry-backed prediction, evaluation, and protocol jobs."""

    def __init__(
        self,
        session: Session,
        registry: ModelRegistry | None = None,
        *,
        channel: str = DEFAULT_CHANNEL,
        batching: bool = True,
        batch_window: float = 0.0,
        batch_max: int = MAX_BATCH_ITEMS,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        jobs_dir=None,
        persist_jobs: bool = True,
    ):
        self.session = session
        self.registry = (
            registry if registry is not None else session.models.registry()
        )
        try:
            self.channel = validate_channel(channel)
        except RegistryError as error:
            raise ValueError(str(error))
        self.metrics = ServiceMetrics()
        self.limiter = LoadLimiter(max_inflight=max_inflight)
        self.batcher = (
            PredictBatcher(self, window=batch_window, max_items=batch_max)
            if batching
            else None
        )
        if jobs_dir is None and persist_jobs and session.use_disk_cache:
            jobs_dir = jobs_root(session.cache_dir)
        self.jobs = JobManager(self._run_job, root=jobs_dir)
        self._model_lock = threading.Lock()
        #: Loaded (predictor, provenance) per registry version.  Versions
        #: are immutable, so entries are valid forever (even across
        #: channels); only the newest few are kept to bound memory.
        self._models: dict[int, tuple[object, dict]] = {}
        self._MODEL_CACHE = 4

    # -------------------------------------------------------------- the model
    def _promoted_model(self, channel: str | None = None) -> tuple[object, dict]:
        """The channel's promoted predictor plus provenance, from the cache.

        Re-checks the channel's promotion pointer per request (one tiny
        JSON read) and loads a version at most once — the cache is keyed
        by registry version, which is immutable, so it is shared across
        channels.  The returned pair is immutable too: a request keeps
        ranking with the model it started with even if a concurrent
        ``promote``/``rollback`` moves the pointer mid-flight.
        """
        channel = self.channel if channel is None else channel
        try:
            promoted = self.registry.promoted_version(channel)
        except RegistryError as error:
            raise ServiceError(str(error), status=503)
        if promoted is None:
            try:
                live = sorted(self.registry.channels())
            except RegistryError:
                live = []
            hint = (
                f"channels with a promoted model: {', '.join(live)}"
                if live
                else "train one with: repro-experiments train"
            )
            raise ServiceError(
                f"no promoted model on channel {channel!r} in registry "
                f"{self.registry.root}; {hint}",
                status=503,
            )
        with self._model_lock:
            cached = self._models.get(promoted)
            if cached is None:
                try:
                    predictor, entry = self.registry.load(
                        promoted,
                        space=self.session.flag_space,
                        vectorize=self.session.vectorize,
                    )
                except RegistryError as error:
                    raise ServiceError(str(error), status=503)
                info = {
                    "version": entry.version,
                    "digest": entry.digest,
                    "fingerprint": entry.fingerprint,
                }
                cached = (predictor, info)
                self._models[promoted] = cached
                while len(self._models) > self._MODEL_CACHE:
                    self._models.pop(next(iter(self._models)))
            return cached

    def model_info(self) -> dict | None:
        """Provenance of the served model (``None`` before promotion)."""
        try:
            _, info = self._promoted_model()
        except ServiceError:
            return None
        return info

    # -------------------------------------------------------------- endpoints
    def health(self) -> dict:
        """``GET /healthz``: liveness plus a damage report.

        Durable-state damage (an unreadable promotion pointer, a torn
        job journal found at recovery) degrades the service — it keeps
        answering with whatever still works and says why — rather than
        crashing it.  ``status`` is ``"ok"`` with no reasons,
        ``"degraded"`` with them.
        """
        reasons: list[str] = []
        try:
            channels = self.registry.channels()
        except RegistryError as error:
            channels = {}
            reasons.append(f"registry pointer unreadable: {error}")
        reasons.extend(self.jobs.degraded_reasons)
        payload = {
            "status": "degraded" if reasons else "ok",
            "scale": self.session.scale.name,
            "registry": str(self.registry.root),
            "channel": self.channel,
            "channels": channels,
            "model": self.model_info(),
            "jobs": self.jobs.counts(),
        }
        if reasons:
            payload["reasons"] = reasons
        return payload

    def metrics_snapshot(self) -> dict:
        """``GET /metrics``: request stats plus load/batching gauges."""
        snapshot = self.metrics.snapshot()
        snapshot["load"] = self.limiter.snapshot()
        snapshot["batching"] = (
            self.batcher.snapshot()
            if self.batcher is not None
            else {"enabled": False}
        )
        return snapshot

    def predict(self, payload: dict) -> dict:
        """``POST /predict``: features or program-spec in, ranked settings out.

        The ranked list is exactly what ``session.models.rank(...)`` /
        ``rank_counters(...)`` produce on the promoted model — both go
        through :func:`~repro.api.facets.ranked_prediction`, so the
        service serialises the same payload bit-for-bit.  The model and
        the provenance echoed back are captured together, once, so the
        response always names the version that actually answered.

        A payload with an ``items`` array is a batch: each element is a
        single-predict payload, answered in order and returned under
        ``results``, with program-spec profiling routed through the
        vectorised simulate-many kernel (one pass over the batch's
        binary × machine grid).  Per-item payloads are byte-identical to
        what ``len(items)`` single requests would return.

        Single payloads route through the micro-batcher (when enabled):
        concurrent requests coalesce into one kernel pass, with each
        caller's payload — and each caller's error — exactly what the
        unbatched path would produce.

        Every request is also attributed to its routing channel in the
        metrics (``self.channel`` when the payload names none), so
        ``/metrics`` can show a slow or failing canary separately from
        stable traffic.  Batched requests time the whole call — queue
        wait included — because that is the latency the caller saw.
        """
        channel = _channel_from(payload)  # malformed channels fail pre-metrics
        name = self.channel if channel is None else channel
        started = time.perf_counter()
        try:
            if "items" in payload:
                response = self._predict_batch(payload)
            elif self.batcher is not None:
                response = self.batcher.submit(payload)
            else:
                response = self._predict_one(payload)
        except BaseException:
            self.metrics.observe_channel(
                name, time.perf_counter() - started, error=True
            )
            raise
        self.metrics.observe_channel(name, time.perf_counter() - started)
        return response

    def _predict_one(self, payload: dict) -> dict:
        """The unbatched single-predict path (ground truth for batching)."""
        model, info = self._promoted_model(_channel_from(payload))
        entry = self._parse_predict_entry(payload)
        if entry["binary"] is not None:
            profile, code_features = profile_with_model(
                model, entry["binary"], entry["machine"], entry["backend"]
            )
            entry["counters"] = profile.counters
            entry["code_features"] = code_features
        try:
            ranked = ranked_prediction(
                model,
                entry["counters"],
                entry["machine"],
                entry["top"],
                code_features=entry["code_features"],
                program=entry["program"],
            )
        except ValueError as error:
            raise ServiceError(str(error))
        return {"model": info, **ranked.payload()}

    def _parse_predict_entry(self, item: dict, default_top: int = 5) -> dict:
        """Validate one predict payload into a ranking-ready entry.

        Shared by the single path, the explicit ``items`` batch, and the
        micro-batcher, so all three reject and answer identically.
        Program-spec entries come back with ``binary``/``backend`` set
        and ``counters`` still to be profiled.
        """
        if not isinstance(item, dict):
            raise ServiceError("must be an object")
        machine = _machine_from(item)
        top = item.get("top", default_top)
        if not isinstance(top, int) or not 1 <= top <= MAX_TOP:
            raise ServiceError(f"'top' must be an integer in [1, {MAX_TOP}]")
        entry = {
            "machine": machine,
            "top": top,
            "program": None,
            "counters": None,
            "code_features": None,
            "binary": None,
            "backend": None,
        }
        program_name = item.get("program")
        if "counters" in item:
            entry["counters"] = _counters_from(item)
            entry["program"] = program_name
        elif program_name is not None:
            try:
                entry["binary"] = self.session.compile(
                    self.session.program(program_name)
                )
            except ValueError as error:
                raise ServiceError(str(error), status=404)
            entry["program"] = entry["binary"].program_name
            try:
                entry["backend"] = (
                    self.session.backend
                    if item.get("backend") is None
                    else resolve_backend(item["backend"])
                )
            except (ValueError, TypeError) as error:
                raise ServiceError(f"bad backend: {error}")
        else:
            raise ServiceError("needs 'program' or 'counters'")
        return entry

    # ------------------------------------------------------------ batch predict
    def _predict_batch(self, payload: dict) -> dict:
        """The ``items`` form of ``/predict``: many queries, one pass.

        Counter items rank directly; program-spec items are profiled in
        bulk — each distinct program compiled once, the whole
        (binary × machine) grid priced by the backend's ``run_many``
        (the vectorised kernel for the analytic tier).  Item order is
        preserved and each element of ``results`` matches the
        corresponding single-request payload bit-for-bit.
        """
        model, info = self._promoted_model(_channel_from(payload))
        items = payload["items"]
        if not isinstance(items, list) or not items:
            raise ServiceError("'items' must be a non-empty array of predict payloads")
        if len(items) > MAX_BATCH_ITEMS:
            raise ServiceError(
                f"batch too large: {len(items)} items (max {MAX_BATCH_ITEMS})"
            )
        default_top = payload.get("top", 5)

        parsed: list[dict] = []
        profile_groups: dict[object, list[int]] = {}
        for index, item in enumerate(items):
            try:
                entry = self._parse_predict_entry(item, default_top)
            except ServiceError as error:
                raise ServiceError(f"items[{index}]: {error}", status=error.status)
            if entry["binary"] is not None:
                profile_groups.setdefault(entry["backend"], []).append(index)
            parsed.append(entry)

        for backend, indices in profile_groups.items():
            self._profile_group(model, backend, [parsed[i] for i in indices])

        try:
            # One ranking-kernel pass for the whole batch; each result is
            # bit-identical to the corresponding single-request payload.
            ranked_batch = ranked_prediction_many(model, parsed)
        except ValueError:
            # Re-run item by item only to attribute the failure.
            for index, entry in enumerate(parsed):
                try:
                    ranked_prediction(
                        model,
                        entry["counters"],
                        entry["machine"],
                        entry["top"],
                        code_features=entry["code_features"],
                        program=entry["program"],
                    )
                except ValueError as error:
                    raise ServiceError(f"items[{index}]: {error}")
            raise
        results = [ranked.payload() for ranked in ranked_batch]
        return {"model": info, "results": results}

    def _profile_group(self, model, backend, entries: list[dict]) -> None:
        """Fill ``counters``/``code_features`` for one backend's entries.

        Batch-capable backends price the deduplicated binary × machine
        grid in one ``run_many`` call; others (or a session with
        ``vectorize=False``) fall back to the scalar per-item profile.
        Both produce the exact counters a single ``/predict`` computes.
        """
        run_many = (
            getattr(backend, "run_many", None)
            if self.session.vectorize
            else None
        )
        if run_many is None:
            for entry in entries:
                profile, code_features = profile_with_model(
                    model, entry["binary"], entry["machine"], backend
                )
                entry["counters"] = profile.counters
                entry["code_features"] = code_features
            return

        from repro.sim.vector import GridIndex

        rows, cols = GridIndex(), GridIndex()
        coords = [
            (
                rows.add(id(entry["binary"]), lambda: entry["binary"]),
                cols.add(entry["machine"], lambda: entry["machine"]),
            )
            for entry in entries
        ]
        grid = run_many(rows.values, cols.values)
        features = [None] * len(rows.values)
        if model.feature_mode == "with_code":
            from repro.core.code_features import static_code_features

            features = [static_code_features(binary) for binary in rows.values]
        for entry, (row, col) in zip(entries, coords):
            entry["counters"] = PerfCounters(*grid.counters[row, col, :])
            entry["code_features"] = features[row]

    def evaluate(self, payload: dict) -> dict:
        """``POST /evaluate``: compile-and-simulate one triple."""
        try:
            program = self.session.program(payload.get("program", ""))
        except ValueError as error:
            raise ServiceError(str(error), status=404)
        machine = _machine_from(payload)
        setting = _setting_from(payload)
        backend = payload.get("backend")
        try:
            resolve_backend(backend if backend is not None else "analytic")
        except (KeyError, ValueError, TypeError) as error:
            raise ServiceError(f"bad backend: {error}")
        result = self.session.eval.evaluate(
            program, machine, setting=setting, backend=backend
        )
        return {
            "program": result.program,
            "machine": dataclasses.asdict(result.machine),
            "setting": list(result.setting.as_indices()),
            "backend": result.backend,
            "runtime_seconds": result.runtime,
            "cycles": result.cycles,
            "energy_nj": result.energy_nj,
            "counters": dict(zip(COUNTER_NAMES, result.counters.vector())),
        }

    # ------------------------------------------------------------------- jobs
    def submit_job(self, payload: dict) -> dict:
        """``POST /jobs``: validate, then queue a background protocol run.

        Every parameter is checked at submit time — an unknown scale,
        artifact, or field answers 400 immediately instead of enqueueing
        a job that fails minutes into its run.
        """
        allowed = ("scale", "only", "max_folds")
        unknown = sorted(set(payload) - set(allowed))
        if unknown:
            raise ServiceError(
                f"unknown job fields {unknown}; allowed fields: {list(allowed)}"
            )
        scale = payload.get("scale")
        if scale is not None:
            if not isinstance(scale, str):
                raise ServiceError("'scale' must be a scale preset name")
            try:
                preset(scale)
            except ValueError as error:
                raise ServiceError(str(error))
        only = payload.get("only")
        if only is not None:
            if not (
                isinstance(only, str)
                or (
                    isinstance(only, list)
                    and all(isinstance(name, str) for name in only)
                )
            ):
                raise ServiceError(
                    "'only' must be an artifact name (or comma-joined names) "
                    "or an array of artifact names"
                )
            try:
                resolve_artifacts(only)
            except ValueError as error:
                raise ServiceError(str(error))
        max_folds = payload.get("max_folds")
        if max_folds is not None and (not isinstance(max_folds, int) or max_folds < 1):
            raise ServiceError("'max_folds' must be a positive integer")
        job = self.jobs.submit(
            {"scale": scale, "only": only, "max_folds": max_folds}
        )
        return job.snapshot()

    def _run_job(self, job: Job) -> dict:
        """Worker-thread body: one protocol run streaming fold events."""

        def on_fold(key, completed, total):
            job.emit(
                {
                    "event": "fold",
                    "job": job.id,
                    "fold": key.stem(),
                    "variant": key.variant,
                    "program": key.program,
                    "completed": completed,
                    "total": total,
                }
            )

        outcome = self.session.protocol.run(
            scale=job.params.get("scale"),
            only=job.params.get("only"),
            max_folds=job.params.get("max_folds"),
            on_fold=on_fold,
        )
        result = {
            "protocol_complete": outcome.complete,
            "folds_computed": outcome.stats.folds_computed,
            "folds_skipped": outcome.stats.folds_skipped,
        }
        if outcome.report is not None:
            result["report_fingerprint"] = outcome.report.fingerprint
        return result

    def job_snapshot(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return job.snapshot()

    def job_events(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return job.events(timeout=timeout)
