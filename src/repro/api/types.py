"""Typed request/result objects of the :mod:`repro.api` façade.

Every Session operation speaks these dataclasses instead of positional
tuples: a request names *what* to run (program, flag setting, machine,
backend) and a result carries the full simulation outcome plus enough
provenance (backend name, canonical setting) to reproduce it.  Requests
and results are plain picklable dataclasses so batches can cross process
boundaries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Program
from repro.machine.params import MicroArch
from repro.search.evaluator import evaluations_to_reach
from repro.sim.analytic import SimulationResult
from repro.sim.counters import PerfCounters


@dataclass(frozen=True)
class EvaluationRequest:
    """One compile-and-simulate unit of work.

    Attributes:
        program: a :class:`Program` or a MiBench benchmark name.
        machine: the microarchitecture to run on.
        setting: the flag setting to compile with (default: -O3).
        backend: simulator backend name or instance overriding the
            session default (``"analytic"`` or ``"trace"``).
    """

    program: Program | str
    machine: MicroArch
    setting: FlagSetting | None = None
    backend: object | None = None


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one :class:`EvaluationRequest`."""

    program: str
    machine: MicroArch
    setting: FlagSetting
    backend: str
    simulation: SimulationResult

    @property
    def runtime(self) -> float:
        """Runtime in seconds (what speedups are computed from)."""
        return self.simulation.seconds

    @property
    def cycles(self) -> float:
        return self.simulation.cycles

    @property
    def counters(self) -> PerfCounters:
        return self.simulation.counters

    @property
    def energy_nj(self) -> float:
        return self.simulation.energy_nj


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of the paper's §3.4 deployment flow for one pair.

    The model sees only the -O3 profiling run's counters; ``predicted_run``
    is the (optional) verification simulation of the predicted setting.
    """

    program: str
    machine: MicroArch
    setting: FlagSetting
    profile: SimulationResult
    predicted_run: SimulationResult | None = None

    @property
    def speedup_over_o3(self) -> float | None:
        """Speedup of the predicted setting over -O3 (> 1 is faster)."""
        if self.predicted_run is None:
            return None
        return self.profile.seconds / self.predicted_run.seconds


@dataclass(frozen=True)
class RankedSetting:
    """One entry of a ranked prediction: a setting and its model probability."""

    rank: int
    setting: FlagSetting
    probability: float

    def payload(self) -> dict:
        """JSON-ready form.

        The setting ships uncanonicalised — exactly the mode
        :meth:`ModelsFacet.predict` deploys — so rank 1 of a ``/predict``
        response equals the flat prediction index-for-index.
        """
        return {
            "rank": self.rank,
            "indices": list(self.setting.as_indices()),
            "flags": dict(self.setting),
            "probability": self.probability,
        }


@dataclass(frozen=True)
class RankedPrediction:
    """The prediction service's answer: the top-N settings for one query.

    ``settings[0]`` is always the distribution's mode — the same setting
    :meth:`ModelsFacet.predict` returns — and :meth:`payload` is the
    *exact* JSON body ``POST /predict`` serves (the service and the
    in-process facet share this object, so they agree bit-for-bit).
    """

    program: str | None
    machine: MicroArch
    settings: tuple[RankedSetting, ...]

    @property
    def best(self) -> FlagSetting:
        return self.settings[0].setting

    def payload(self) -> dict:
        import dataclasses

        return {
            "program": self.program,
            "machine": dataclasses.asdict(self.machine),
            "settings": [entry.payload() for entry in self.settings],
        }


@dataclass(frozen=True)
class SearchRequest:
    """One iterative-compilation run on a (program, machine) pair.

    Attributes:
        program: a :class:`Program` or MiBench name.
        machine: the target microarchitecture.
        algorithm: one of the registered algorithms (see
            :data:`repro.api.session.SEARCH_ALGORITHMS`).
        budget: maximum number of distinct evaluations.
        seed: RNG seed for the stochastic drivers.
        backend: simulator backend override, as in EvaluationRequest.
    """

    program: Program | str
    machine: MicroArch
    algorithm: str = "random"
    budget: int = 100
    seed: int = 0
    backend: object | None = None


@dataclass(frozen=True)
class SearchOutcome:
    """A search's best point, its convergence data, and the -O3 reference."""

    program: str
    machine: MicroArch
    algorithm: str
    best_setting: FlagSetting
    best_runtime: float
    o3_runtime: float
    evaluations: int
    trajectory: tuple[float, ...] = field(default_factory=tuple)

    @property
    def best_speedup(self) -> float:
        return self.o3_runtime / self.best_runtime

    def evaluations_to_reach(self, target_runtime: float) -> int | None:
        """First evaluation index (1-based) reaching ``target_runtime``."""
        return evaluations_to_reach(self.trajectory, target_runtime)
