"""repro.api — the unified front door to the reproduction pipeline.

Everything the CLI, the experiments, the examples, and downstream users
need goes through :class:`Session`:

* **Evaluation** — :meth:`Session.evaluate` /
  :meth:`Session.evaluate_batch` compile-and-simulate (program, setting,
  machine) triples, optionally in parallel, against any registered
  :class:`SimulatorBackend` (the fast analytic model or the trace-driven
  reference tier).
* **Model lifecycle** — :meth:`Session.fit`, :meth:`Session.predict`,
  :meth:`Session.save_model`, :meth:`Session.load_model`.
* **Search** — :meth:`Session.search` runs the iterative-compilation
  baselines through the same backends.
"""

from repro.api.backends import (
    BACKENDS,
    AnalyticBackend,
    SimulatorBackend,
    TraceBackend,
    resolve_backend,
)
from repro.parallel import EXECUTORS, resolve_jobs, run_batch
from repro.api.persistence import load_predictor, save_predictor
from repro.api.session import SEARCH_ALGORITHMS, ProtocolRun, Session
from repro.api.types import (
    EvaluationRequest,
    EvaluationResult,
    PredictionResult,
    SearchOutcome,
    SearchRequest,
)

__all__ = [
    "AnalyticBackend",
    "BACKENDS",
    "EXECUTORS",
    "EvaluationRequest",
    "EvaluationResult",
    "PredictionResult",
    "ProtocolRun",
    "SEARCH_ALGORITHMS",
    "SearchOutcome",
    "SearchRequest",
    "Session",
    "SimulatorBackend",
    "TraceBackend",
    "load_predictor",
    "resolve_backend",
    "resolve_jobs",
    "run_batch",
    "save_predictor",
]
