"""repro.api — the unified front door to the reproduction pipeline.

Everything the CLI, the experiments, the examples, the prediction
service, and downstream users need goes through :class:`Session`, whose
surface is split into four lazily-constructed facets:

* **``session.eval``** — compile-and-simulate (program, setting, machine)
  triples, optionally in parallel, against any registered
  :class:`SimulatorBackend` (the fast analytic model or the trace-driven
  reference tier); plus the iterative-compilation search baselines.
* **``session.models``** — fit/predict/rank, file persistence, and the
  versioned :class:`ModelRegistry` (register/promote/rollback) the
  prediction service deploys from.
* **``session.data``** — the sharded, resumable experiment store.
* **``session.protocol``** — the checkpointed paper-protocol fold grid.

The pre-v2 flat ``Session`` methods remain as deprecation shims.
"""

from repro.api.backends import (
    BACKENDS,
    AnalyticBackend,
    SimulatorBackend,
    TraceBackend,
    resolve_backend,
)
from repro.parallel import EXECUTORS, resolve_jobs, run_batch
from repro.api.facets import (
    DataFacet,
    EvalFacet,
    ModelsFacet,
    ProtocolFacet,
)
from repro.api.persistence import load_predictor, save_predictor
from repro.api.registry import (
    DEFAULT_CHANNEL,
    ModelRegistry,
    ModelVersion,
    RegistryError,
    registry_root,
)
from repro.api.session import SEARCH_ALGORITHMS, ProtocolRun, Session
from repro.api.types import (
    EvaluationRequest,
    EvaluationResult,
    PredictionResult,
    RankedPrediction,
    RankedSetting,
    SearchOutcome,
    SearchRequest,
)

__all__ = [
    "AnalyticBackend",
    "BACKENDS",
    "DEFAULT_CHANNEL",
    "DataFacet",
    "EXECUTORS",
    "EvalFacet",
    "EvaluationRequest",
    "EvaluationResult",
    "ModelRegistry",
    "ModelVersion",
    "ModelsFacet",
    "PredictionResult",
    "ProtocolFacet",
    "ProtocolRun",
    "RankedPrediction",
    "RankedSetting",
    "RegistryError",
    "SEARCH_ALGORITHMS",
    "SearchOutcome",
    "SearchRequest",
    "Session",
    "SimulatorBackend",
    "TraceBackend",
    "load_predictor",
    "registry_root",
    "resolve_backend",
    "resolve_jobs",
    "run_batch",
    "save_predictor",
]
