"""The Session façade: one front door to the whole pipeline.

A :class:`Session` owns the pieces every consumer used to hand-wire —
compiler, flag space, machine space, simulator backend, dataset caches —
and exposes the full train/predict/search/evaluate loop:

    >>> from repro.api import Session
    >>> session = Session(scale="tiny")
    >>> session.fit()                               # train on the dataset
    >>> machine = session.machines(1, seed=99)[0]
    >>> session.predict("sha", machine).speedup_over_o3
    >>> session.save_model("model.json")            # persist for deployment

Batches of independent (program, setting, machine) triples run through
:meth:`Session.evaluate_batch`, which fans out over threads or processes
(the ``--jobs`` knob) and always returns results identical to serial
execution, in request order.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.api.backends import SimulatorBackend, resolve_backend
from repro.api.persistence import load_predictor, save_predictor
from repro.api.types import (
    EvaluationRequest,
    EvaluationResult,
    PredictionResult,
    SearchOutcome,
    SearchRequest,
)
from repro.compiler.binary import CompiledBinary
from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.predictor import (
    DEFAULT_BETA,
    DEFAULT_K,
    DEFAULT_QUANTILE,
    OptimisationPredictor,
)
from repro.core.training import TrainingSet
from repro.evalrun import (
    EvaluationPipeline,
    FoldStore,
    PipelineRunStats,
    ProtocolReport,
    protocol_fingerprint,
    protocol_variants,
    render_report,
    resolve_artifacts,
    variants_for_artifacts,
)
from repro.evalrun.foldstore import FoldStoreStatus
from repro.experiments.config import Scale, preset
from repro.experiments.dataset import (
    ExperimentData,
    experiment_store,
    grid_for_scale,
    load_or_build,
    protocol_store_root,
    store_status,
)
from repro.experiments.figures import seed_crossval_cache
from repro.store import ExperimentRunner, ExperimentStore, StoreStatus
from repro.machine.params import MicroArch, MicroArchSpace
from repro.parallel import resolve_jobs, run_batch
from repro.programs.mibench import mibench_program
from repro.search.combined_elimination import combined_elimination
from repro.search.evaluator import Evaluator
from repro.search.genetic import genetic_search
from repro.search.hillclimb import hill_climb
from repro.search.random_search import random_search

#: Registered iterative-compilation drivers: name -> (evaluator, budget,
#: seed, space) -> SearchResult.  Aliases share an entry.
SEARCH_ALGORITHMS: dict[str, Callable] = {
    "random": lambda ev, budget, seed, space: random_search(
        ev, budget, seed=seed, space=space
    ),
    "hillclimb": lambda ev, budget, seed, space: hill_climb(
        ev, budget, seed=seed, space=space
    ),
    "genetic": lambda ev, budget, seed, space: genetic_search(
        ev, budget, seed=seed, space=space
    ),
    "combined-elimination": lambda ev, budget, seed, space: combined_elimination(
        ev, seed=seed, budget=budget, space=space
    ),
}
SEARCH_ALGORITHMS["ce"] = SEARCH_ALGORITHMS["combined-elimination"]

@dataclass
class ProtocolRun:
    """Outcome of one :meth:`Session.run_protocol` call.

    ``report`` is ``None`` when a ``max_folds`` cap left folds pending —
    re-run (resume) to finish; everything checkpointed so far is kept.
    """

    stats: PipelineRunStats
    status: FoldStoreStatus
    report: ProtocolReport | None = None

    @property
    def complete(self) -> bool:
        return self.report is not None


#: Per-process compiler for process-pool workers; built lazily so forked
#: children that never evaluate pay nothing.
_WORKER_COMPILER: Compiler | None = None


def _evaluate_work(
    work: tuple[Program, FlagSetting, MicroArch, SimulatorBackend],
    compiler: Compiler | None = None,
) -> EvaluationResult:
    """One batch item; module-level so process pools can pickle it."""
    global _WORKER_COMPILER
    program, setting, machine, backend = work
    if compiler is None:
        if _WORKER_COMPILER is None:
            _WORKER_COMPILER = Compiler()
        compiler = _WORKER_COMPILER
    binary = compiler.compile(program, setting)
    simulation = backend.run(binary, machine)
    return EvaluationResult(
        program=program.name,
        machine=machine,
        setting=setting.canonical(),
        backend=backend.name,
        simulation=simulation,
    )


class Session:
    """Owns compiler, spaces, caches, backend, and the fitted model.

    Args:
        scale: experiment scale preset name or :class:`Scale` (default
            ``"quick"``); governs :meth:`dataset` and :meth:`fit`.
        backend: default simulator backend (name, class, or instance).
        jobs: default worker count for batches and dataset builds
            (1 = serial, negative = all cores).
        executor: default batch strategy — ``auto``, ``serial``,
            ``thread``, or ``process``.
        cache_dir: dataset cache root, overriding ``$REPRO_CACHE_DIR``.
        use_disk_cache: disable to keep datasets in memory only.
        compiler: share a memoising compiler across sessions if desired.
    """

    def __init__(
        self,
        scale: str | Scale | None = None,
        *,
        backend: object = "analytic",
        jobs: int | None = 1,
        executor: str = "auto",
        cache_dir: str | Path | None = None,
        use_disk_cache: bool = True,
        compiler: Compiler | None = None,
        flag_space: FlagSpace = DEFAULT_SPACE,
        machine_space: MicroArchSpace | None = None,
    ):
        self.scale = self._resolve_scale(scale if scale is not None else "quick")
        self.backend = resolve_backend(backend)
        self.jobs = resolve_jobs(jobs)
        self.executor = executor
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.use_disk_cache = use_disk_cache
        self.compiler = compiler if compiler is not None else Compiler()
        self.flag_space = flag_space
        self.machine_space = (
            machine_space
            if machine_space is not None
            else MicroArchSpace(extended=self.scale.extended)
        )
        self.model: OptimisationPredictor | None = None
        self.model_fingerprint: str | None = None
        #: Cache-less sessions keep one in-memory store per scale so
        #: build_dataset/dataset_status/dataset all see the same shards.
        self._memory_stores: dict[str, ExperimentStore] = {}
        #: Likewise for protocol fold stores, keyed by protocol fingerprint.
        self._memory_fold_stores: dict[str, FoldStore] = {}

    # ------------------------------------------------------------- resolvers
    @staticmethod
    def _resolve_scale(scale: str | Scale) -> Scale:
        return preset(scale) if isinstance(scale, str) else scale

    def program(self, program: Program | str) -> Program:
        """Resolve a MiBench name (or pass a Program through)."""
        if isinstance(program, str):
            try:
                return mibench_program(program)
            except KeyError:
                from repro.programs.mibench import mibench_names

                raise ValueError(
                    f"unknown program {program!r}; "
                    f"choose from {', '.join(mibench_names())}"
                ) from None
        return program

    def machines(
        self, count: int | None = None, seed: int | None = None
    ) -> list[MicroArch]:
        """Sample microarchitectures (defaults come from the scale)."""
        return self.machine_space.sample(
            count if count is not None else self.scale.n_machines,
            seed=seed if seed is not None else self.scale.machine_seed,
        )

    def compile(
        self, program: Program | str, setting: FlagSetting | None = None
    ) -> CompiledBinary:
        """Compile through the session's memoising compiler (default -O3)."""
        return self.compiler.compile(
            self.program(program),
            setting if setting is not None else o3_setting(),
        )

    # ------------------------------------------------------------ evaluation
    def evaluate(
        self,
        request: EvaluationRequest | Program | str,
        machine: MicroArch | None = None,
        setting: FlagSetting | None = None,
        backend: object | None = None,
    ) -> EvaluationResult:
        """Compile-and-simulate one triple (default setting: -O3)."""
        if not isinstance(request, EvaluationRequest):
            if machine is None:
                raise TypeError("evaluate() needs a machine")
            request = EvaluationRequest(
                program=request, machine=machine, setting=setting, backend=backend
            )
        return _evaluate_work(self._work_item(request), compiler=self.compiler)

    def _work_item(
        self, request: EvaluationRequest
    ) -> tuple[Program, FlagSetting, MicroArch, SimulatorBackend]:
        backend = (
            self.backend
            if request.backend is None
            else resolve_backend(request.backend)
        )
        setting = request.setting if request.setting is not None else o3_setting()
        return (self.program(request.program), setting, request.machine, backend)

    def evaluate_batch(
        self,
        requests: Iterable[EvaluationRequest | tuple],
        jobs: int | None = None,
        executor: str | None = None,
    ) -> list[EvaluationResult]:
        """Evaluate many triples, preserving request order.

        Requests may be :class:`EvaluationRequest` objects or
        ``(program, machine[, setting])`` tuples.  With ``jobs > 1`` the
        batch fans out over the chosen executor; results are identical to
        a serial run.
        """
        normalised = [
            request
            if isinstance(request, EvaluationRequest)
            else EvaluationRequest(*request)
            for request in requests
        ]
        items = [self._work_item(request) for request in normalised]
        jobs = self.jobs if jobs is None else resolve_jobs(jobs)
        strategy = executor if executor is not None else self.executor
        if strategy == "auto":
            strategy = "process" if jobs > 1 else "serial"
        if strategy != "process":
            # Serial and thread runs share this process's memory, so they
            # go through the session compiler and its memoisation.
            def work(item):
                return _evaluate_work(item, compiler=self.compiler)

            return run_batch(work, items, jobs=jobs, executor=strategy)
        return run_batch(_evaluate_work, items, jobs=jobs, executor=strategy)

    def speedup_over_o3(
        self,
        program: Program | str,
        machine: MicroArch,
        setting: FlagSetting,
        backend: object | None = None,
    ) -> float:
        """Speedup of ``setting`` over -O3 on one pair (> 1 is faster)."""
        o3, tuned = self.evaluate_batch(
            [
                EvaluationRequest(program, machine, backend=backend),
                EvaluationRequest(program, machine, setting, backend=backend),
            ],
            jobs=1,
        )
        return o3.runtime / tuned.runtime

    # --------------------------------------------------------------- dataset
    def dataset(
        self,
        scale: str | Scale | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> ExperimentData:
        """The (cached) training dataset for a scale (default: session's).

        Builds run through the sharded :mod:`repro.store` store, so an
        interrupted build resumes from its last completed shard; the
        assembled data is bit-identical however it was produced.
        """
        resolved = self.scale if scale is None else self._resolve_scale(scale)
        store = None if self.use_disk_cache else self.experiment_store(resolved)
        data = load_or_build(
            resolved,
            progress=progress,
            use_disk_cache=self.use_disk_cache,
            cache_directory=self.cache_dir,
            jobs=self.jobs,
            executor=self.executor,
            store=store,
        )
        if store is not None and not store.is_complete():
            # The dataset was memoised by an earlier (possibly other-
            # session) build; absorb it so this session's store, status,
            # and dataset stay consistent.
            store.adopt(data.training)
        return data

    def experiment_store(
        self, scale: str | Scale | None = None
    ) -> ExperimentStore:
        """The shard store backing a scale's dataset.

        On disk under the session's cache directory, or — when the
        session was created with ``use_disk_cache=False`` — a per-scale
        in-memory store (same API, nothing written) owned by this
        session, so partial builds survive across calls.
        """
        resolved = self.scale if scale is None else self._resolve_scale(scale)
        if not self.use_disk_cache:
            key = resolved.fingerprint()
            store = self._memory_stores.get(key)
            if store is None:
                store = ExperimentStore(grid_for_scale(resolved), root=None)
                self._memory_stores[key] = store
            return store
        return experiment_store(resolved, cache_directory=self.cache_dir)

    def dataset_status(self, scale: str | Scale | None = None) -> StoreStatus:
        """Shard-completion snapshot of a scale's store (read-only)."""
        resolved = self.scale if scale is None else self._resolve_scale(scale)
        if not self.use_disk_cache:
            return self.experiment_store(resolved).status()
        return store_status(resolved, cache_directory=self.cache_dir)

    def build_dataset(
        self,
        scale: str | Scale | None = None,
        max_shards: int | None = None,
        progress: Callable[[str], None] | None = None,
        store: ExperimentStore | None = None,
    ) -> int:
        """Advance a scale's store by up to ``max_shards`` shards.

        Each completed shard is checkpointed, so this can be called
        repeatedly — across processes, interruptions, and executors — and
        the store converges on the same bit-identical dataset.  Pass an
        already-opened ``store`` to avoid re-sampling the grid.  Returns
        the number of shards computed by this call.
        """
        if store is None:
            store = self.experiment_store(scale)
        runner = ExperimentRunner(
            store,
            compiler=self.compiler,
            jobs=self.jobs,
            executor=self.executor,
        )
        return runner.run(max_shards=max_shards, progress=progress)

    # --------------------------------------------------------- paper protocol
    def protocol_store(
        self, data: ExperimentData | None = None, scale: str | Scale | None = None
    ) -> FoldStore:
        """The fold store backing a scale's paper-protocol run.

        On disk under the session's cache directory, or — with
        ``use_disk_cache=False`` — a per-scale in-memory store owned by
        this session so partial protocol runs survive across calls.
        Opening the store requires the training matrix (the protocol
        fingerprint covers it), so the dataset is built first if needed.
        """
        if data is None:
            data = self.dataset(scale)
        variants = protocol_variants(
            with_code=data.training.code_features is not None
        )
        fingerprint = protocol_fingerprint(data.training, variants)
        programs = list(data.training.program_names)
        metadata = {"scale": data.scale.name}
        if not self.use_disk_cache:
            store = self._memory_fold_stores.get(fingerprint)
            if store is None:
                store = FoldStore(
                    fingerprint, variants, programs, root=None, metadata=metadata
                )
                self._memory_fold_stores[fingerprint] = store
            return store
        return FoldStore(
            fingerprint,
            variants,
            programs,
            root=protocol_store_root(data.scale, fingerprint, self.cache_dir),
            metadata=metadata,
        )

    def run_protocol(
        self,
        scale: str | Scale | None = None,
        *,
        only: str | Sequence[str] | None = None,
        max_folds: int | None = None,
        jobs: int | None = None,
        executor: str | None = None,
        progress: Callable[[str], None] | None = None,
        store: FoldStore | None = None,
    ) -> ProtocolRun:
        """Run the full paper protocol — resumably — and render the artifact.

        Builds (or resumes) the scale's dataset through the experiment
        store, executes the leave-one-out + ablation fold grid through
        the checkpointing :class:`EvaluationPipeline`, and renders the
        requested artifacts as markdown + JSON.  Every fold is
        checkpointed as it completes, so a killed run resumes with zero
        re-simulation, and the rendered report is byte-identical however
        the run was interrupted or parallelised.

        Args:
            only: artifact subset (``"fig6,headline"`` or a sequence);
                folds that only unrequested artifacts need are not run.
            max_folds: checkpoint at most this many folds then stop
                (``report`` is ``None`` if that leaves the grid
                incomplete; call again to resume).
            jobs/executor: override the session defaults for this run.
        """
        data = self.dataset(scale, progress=progress)
        if store is None:
            store = self.protocol_store(data)
        artifacts = resolve_artifacts(only)
        with_code = data.training.code_features is not None
        variant_keys = variants_for_artifacts(artifacts, with_code=with_code)
        pipeline = EvaluationPipeline(
            data.training,
            data.programs,
            store,
            jobs=self.jobs if jobs is None else jobs,
            executor=self.executor if executor is None else executor,
            compiler=self.compiler,
        )
        stats = pipeline.run(
            variants=variant_keys, max_folds=max_folds, progress=progress
        )
        if not store.is_complete(variant_keys):
            return ProtocolRun(stats=stats, status=store.status(), report=None)
        protocol = pipeline.assemble(variants=variant_keys)
        if "base" in protocol.results:
            # Figures/tables called outside the protocol now consume the
            # checkpointed pipeline output instead of recomputing CV.
            seed_crossval_cache(data, protocol.base)
        report = render_report(data, protocol, only=artifacts)
        return ProtocolRun(stats=stats, status=store.status(), report=report)

    # ---------------------------------------------------------- model lifecycle
    def fit(
        self,
        training: TrainingSet | None = None,
        *,
        scale: str | Scale | None = None,
        progress: Callable[[str], None] | None = None,
        k: int = DEFAULT_K,
        beta: float = DEFAULT_BETA,
        quantile: float = DEFAULT_QUANTILE,
        feature_mode: str = "both",
    ) -> OptimisationPredictor:
        """Fit the paper's model, remembering it and its data fingerprint."""
        if training is None:
            training = self.dataset(scale, progress=progress).training
        model = OptimisationPredictor(
            space=self.flag_space,
            k=k,
            beta=beta,
            quantile=quantile,
            feature_mode=feature_mode,
        ).fit(training)
        self.model = model
        self.model_fingerprint = training.fingerprint()
        return model

    def predict(
        self,
        program: Program | str,
        machine: MicroArch,
        *,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        evaluate: bool = True,
        backend: object | None = None,
    ) -> PredictionResult:
        """The §3.4 deployment flow: one -O3 profile run, then predict.

        With ``evaluate=True`` the predicted setting is compiled and
        simulated too, so the result carries its speedup over -O3.
        """
        if self.model is None:
            raise RuntimeError("no model: call fit() or load_model() first")
        resolved = self.program(program)
        active_backend = (
            self.backend if backend is None else resolve_backend(backend)
        )
        o3_binary = self.compile(resolved)
        profile = active_backend.run(o3_binary, machine)

        code_features = None
        if self.model.feature_mode == "with_code":
            from repro.core.code_features import static_code_features

            code_features = static_code_features(o3_binary)
        setting = self.model.predict(
            profile.counters,
            machine,
            exclude_program=exclude_program,
            exclude_machine=exclude_machine,
            code_features=code_features,
        )
        predicted_run = None
        if evaluate:
            predicted_run = active_backend.run(
                self.compile(resolved, setting), machine
            )
        return PredictionResult(
            program=resolved.name,
            machine=machine,
            setting=setting,
            profile=profile,
            predicted_run=predicted_run,
        )

    def save_model(self, path: str | Path) -> Path:
        """Persist the fitted model plus its training fingerprint."""
        if self.model is None:
            raise RuntimeError("no model to save: call fit() first")
        return save_predictor(
            self.model,
            path,
            fingerprint=self.model_fingerprint,
            metadata={"scale": self.scale.name},
        )

    def load_model(self, path: str | Path) -> OptimisationPredictor:
        """Load a persisted model into this session."""
        predictor, provenance = load_predictor(path, space=self.flag_space)
        self.model = predictor
        self.model_fingerprint = provenance["fingerprint"]
        return predictor

    # ---------------------------------------------------------------- search
    def evaluator(
        self,
        program: Program | str,
        machine: MicroArch,
        backend: object | None = None,
    ) -> Evaluator:
        """A memoising runtime oracle wired to a session backend."""
        active_backend = (
            self.backend if backend is None else resolve_backend(backend)
        )
        return Evaluator(
            program=self.program(program),
            machine=machine,
            compiler=self.compiler,
            simulate=active_backend.run,
        )

    def search(
        self,
        request: SearchRequest | None = None,
        **kwargs,
    ) -> SearchOutcome:
        """Run one iterative-compilation baseline on a pair.

        Accepts a :class:`SearchRequest` or its fields as keyword
        arguments (``program``, ``machine``, ``algorithm``, ``budget``,
        ``seed``, ``backend``).
        """
        if request is None:
            request = SearchRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass a SearchRequest or keyword fields, not both")
        try:
            driver = SEARCH_ALGORITHMS[request.algorithm]
        except KeyError:
            raise ValueError(
                f"unknown search algorithm {request.algorithm!r}; "
                f"choose from {sorted(SEARCH_ALGORITHMS)}"
            ) from None
        evaluator = self.evaluator(
            request.program, request.machine, backend=request.backend
        )
        o3_runtime = evaluator.o3_runtime()
        result = driver(evaluator, request.budget, request.seed, self.flag_space)
        return SearchOutcome(
            program=evaluator.program.name,
            machine=request.machine,
            algorithm=request.algorithm,
            best_setting=result.best_setting,
            best_runtime=result.best_runtime,
            o3_runtime=o3_runtime,
            evaluations=result.evaluations,
            trajectory=tuple(result.trajectory),
        )
