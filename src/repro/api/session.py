"""The Session: one front door to the whole pipeline, split into facets.

A :class:`Session` owns the pieces every consumer used to hand-wire —
compiler, flag space, machine space, simulator backend, dataset caches —
and exposes them through four lazily-constructed facets:

    >>> from repro.api import Session
    >>> session = Session(scale="tiny")
    >>> session.models.fit()                       # train on the dataset
    >>> machine = session.machines(1, seed=99)[0]
    >>> session.models.predict("sha", machine).speedup_over_o3
    >>> session.models.register(promote=True)      # version it for serving
    >>> session.eval.batch([...], jobs=4)          # parallel evaluation
    >>> session.protocol.run(only="headline")      # the paper protocol

``session.data`` manages the sharded experiment store, ``session.models``
the model lifecycle (fit/predict/rank/persistence/registry),
``session.eval`` evaluation and search, and ``session.protocol`` the
resumable paper protocol.  The pre-v2 flat methods (``session.fit``,
``session.evaluate_batch``, ...) remain as thin shims that forward to the
facets and emit a :class:`DeprecationWarning` once per process.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from repro.api.backends import resolve_backend
from repro.api.facets import (
    SEARCH_ALGORITHMS,
    DataFacet,
    EvalFacet,
    ModelsFacet,
    ProtocolFacet,
    ProtocolRun,
)
from repro.compiler.binary import CompiledBinary
from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.predictor import OptimisationPredictor
from repro.evalrun import FoldStore
from repro.experiments.config import Scale, preset
from repro.machine.params import MicroArch, MicroArchSpace
from repro.parallel import resolve_jobs
from repro.programs.mibench import mibench_program
from repro.store import ExperimentStore

__all__ = ["SEARCH_ALGORITHMS", "ProtocolRun", "Session"]

#: Flat shim methods that have already warned this process (the
#: DeprecationWarning fires once per method name, not per call).
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(flat: str, replacement: str) -> None:
    if flat in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(flat)
    warnings.warn(
        f"Session.{flat}() is deprecated; use session.{replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Session:
    """Owns compiler, spaces, caches, backend, and the fitted model.

    Args:
        scale: experiment scale preset name or :class:`Scale` (default
            ``"quick"``); governs ``session.data`` and ``session.models``.
        backend: default simulator backend (name, class, or instance).
        jobs: default worker count for batches and dataset builds
            (1 = serial, negative = all cores).
        executor: default batch strategy — ``auto``, ``serial``,
            ``thread``, or ``process``.
        cache_dir: dataset cache root, overriding ``$REPRO_CACHE_DIR``.
        use_disk_cache: disable to keep datasets in memory only.
        compiler: share a memoising compiler across sessions if desired.
        vectorize: route whole batches through the bit-identical
            :func:`~repro.sim.vector.simulate_many` kernel when the
            backend supports it (default on; purely a performance knob).
    """

    def __init__(
        self,
        scale: str | Scale | None = None,
        *,
        backend: object = "analytic",
        jobs: int | None = 1,
        executor: str = "auto",
        cache_dir: str | Path | None = None,
        use_disk_cache: bool = True,
        compiler: Compiler | None = None,
        flag_space: FlagSpace = DEFAULT_SPACE,
        machine_space: MicroArchSpace | None = None,
        vectorize: bool = True,
    ):
        self.scale = self._resolve_scale(scale if scale is not None else "quick")
        self.backend = resolve_backend(backend)
        self.jobs = resolve_jobs(jobs)
        self.executor = executor
        self.vectorize = vectorize
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.use_disk_cache = use_disk_cache
        self.compiler = compiler if compiler is not None else Compiler()
        self.flag_space = flag_space
        self.machine_space = (
            machine_space
            if machine_space is not None
            else MicroArchSpace(extended=self.scale.extended)
        )
        self.model: OptimisationPredictor | None = None
        self.model_fingerprint: str | None = None
        #: Cache-less sessions keep one in-memory store per scale so
        #: data.build/data.status/data.dataset all see the same shards.
        self._memory_stores: dict[str, ExperimentStore] = {}
        #: Likewise for protocol fold stores, keyed by protocol fingerprint.
        self._memory_fold_stores: dict[str, FoldStore] = {}
        #: Facets, constructed on first access.
        self._facets: dict[str, object] = {}

    # --------------------------------------------------------------- facets
    def _facet(self, name: str, factory):
        facet = self._facets.get(name)
        if facet is None:
            facet = factory(self)
            self._facets[name] = facet
        return facet

    @property
    def data(self) -> DataFacet:
        """Dataset lifecycle: the sharded, resumable experiment store."""
        return self._facet("data", DataFacet)

    @property
    def models(self) -> ModelsFacet:
        """Model lifecycle: fit/predict/rank, persistence, the registry."""
        return self._facet("models", ModelsFacet)

    @property
    def eval(self) -> EvalFacet:
        """Evaluation: one triple, parallel batches, search baselines."""
        return self._facet("eval", EvalFacet)

    @property
    def protocol(self) -> ProtocolFacet:
        """The resumable paper protocol: fold store, pipeline, report."""
        return self._facet("protocol", ProtocolFacet)

    # ------------------------------------------------------------- resolvers
    @staticmethod
    def _resolve_scale(scale: str | Scale) -> Scale:
        return preset(scale) if isinstance(scale, str) else scale

    def program(self, program: Program | str) -> Program:
        """Resolve a MiBench name (or pass a Program through)."""
        if isinstance(program, str):
            try:
                return mibench_program(program)
            except KeyError:
                from repro.programs.mibench import mibench_names

                raise ValueError(
                    f"unknown program {program!r}; "
                    f"choose from {', '.join(mibench_names())}"
                ) from None
        return program

    def machines(
        self, count: int | None = None, seed: int | None = None
    ) -> list[MicroArch]:
        """Sample microarchitectures (defaults come from the scale)."""
        return self.machine_space.sample(
            count if count is not None else self.scale.n_machines,
            seed=seed if seed is not None else self.scale.machine_seed,
        )

    def compile(
        self, program: Program | str, setting: FlagSetting | None = None
    ) -> CompiledBinary:
        """Compile through the session's memoising compiler (default -O3)."""
        return self.compiler.compile(
            self.program(program),
            setting if setting is not None else o3_setting(),
        )

    # ------------------------------------------------------ deprecated shims
    # The flat pre-v2 surface.  Each method forwards to its facet and
    # warns (once per process); behaviour is otherwise identical, and both
    # surfaces share the same session state during migration.

    def evaluate(self, *args, **kwargs):
        """Deprecated: use :meth:`session.eval.evaluate <EvalFacet.evaluate>`."""
        _warn_deprecated("evaluate", "eval.evaluate")
        return self.eval.evaluate(*args, **kwargs)

    def evaluate_batch(self, *args, **kwargs):
        """Deprecated: use :meth:`session.eval.batch <EvalFacet.batch>`."""
        _warn_deprecated("evaluate_batch", "eval.batch")
        return self.eval.batch(*args, **kwargs)

    def speedup_over_o3(self, *args, **kwargs):
        """Deprecated: use :meth:`session.eval.speedup_over_o3`."""
        _warn_deprecated("speedup_over_o3", "eval.speedup_over_o3")
        return self.eval.speedup_over_o3(*args, **kwargs)

    def evaluator(self, *args, **kwargs):
        """Deprecated: use :meth:`session.eval.evaluator <EvalFacet.evaluator>`."""
        _warn_deprecated("evaluator", "eval.evaluator")
        return self.eval.evaluator(*args, **kwargs)

    def search(self, *args, **kwargs):
        """Deprecated: use :meth:`session.eval.search <EvalFacet.search>`."""
        _warn_deprecated("search", "eval.search")
        return self.eval.search(*args, **kwargs)

    def dataset(self, *args, **kwargs):
        """Deprecated: use :meth:`session.data.dataset <DataFacet.dataset>`."""
        _warn_deprecated("dataset", "data.dataset")
        return self.data.dataset(*args, **kwargs)

    def experiment_store(self, *args, **kwargs):
        """Deprecated: use :meth:`session.data.store <DataFacet.store>`."""
        _warn_deprecated("experiment_store", "data.store")
        return self.data.store(*args, **kwargs)

    def dataset_status(self, *args, **kwargs):
        """Deprecated: use :meth:`session.data.status <DataFacet.status>`."""
        _warn_deprecated("dataset_status", "data.status")
        return self.data.status(*args, **kwargs)

    def build_dataset(self, *args, **kwargs):
        """Deprecated: use :meth:`session.data.build <DataFacet.build>`."""
        _warn_deprecated("build_dataset", "data.build")
        return self.data.build(*args, **kwargs)

    def protocol_store(self, *args, **kwargs):
        """Deprecated: use :meth:`session.protocol.store <ProtocolFacet.store>`."""
        _warn_deprecated("protocol_store", "protocol.store")
        return self.protocol.store(*args, **kwargs)

    def run_protocol(self, *args, **kwargs):
        """Deprecated: use :meth:`session.protocol.run <ProtocolFacet.run>`."""
        _warn_deprecated("run_protocol", "protocol.run")
        return self.protocol.run(*args, **kwargs)

    def fit(self, *args, **kwargs):
        """Deprecated: use :meth:`session.models.fit <ModelsFacet.fit>`."""
        _warn_deprecated("fit", "models.fit")
        return self.models.fit(*args, **kwargs)

    def predict(self, *args, **kwargs):
        """Deprecated: use :meth:`session.models.predict <ModelsFacet.predict>`."""
        _warn_deprecated("predict", "models.predict")
        return self.models.predict(*args, **kwargs)

    def save_model(self, *args, **kwargs):
        """Deprecated: use :meth:`session.models.save <ModelsFacet.save>`."""
        _warn_deprecated("save_model", "models.save")
        return self.models.save(*args, **kwargs)

    def load_model(self, *args, **kwargs):
        """Deprecated: use :meth:`session.models.load <ModelsFacet.load>`."""
        _warn_deprecated("load_model", "models.load")
        return self.models.load(*args, **kwargs)
