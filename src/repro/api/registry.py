"""The versioned model registry: trained predictors as deployable artifacts.

A :class:`ModelRegistry` owns a directory of immutable, digest-verified
model files plus one mutable promotion pointer::

    registry/
        models/
            v0001.json       # {"format", "version", "digest", "fingerprint",
            v0002.json       #  "metadata", "model": <predictor state>}
            ...
        promoted.json        # {"format", "current": 2, "history": [1],
                             #  "channels": {"default": {"current": 2,
                             #               "history": [1]}, "tiny": {...}}}

Model files follow the store-shard rules: written atomically, content
digested, and never rewritten — :meth:`ModelRegistry.register` allocates
the next free version with an exclusive link, so two sessions registering
concurrently can never collide on a version or corrupt each other.  The
promotion pointer is a single atomically-replaced JSON document carrying
its own history, which is what :meth:`ModelRegistry.rollback` pops.

Promotion is per-**channel**: every channel (``"default"`` unless named)
has its own current version and rollback history, so one registry can
serve e.g. a model per scale or per machine space, each promoted and
rolled back independently — the prediction service routes requests to a
channel at request time.  The pointer document mirrors the default
channel under the legacy top-level ``current``/``history`` keys, so
pointers written before channels existed read back as the default
channel and old readers keep working.

This replaces the ad-hoc ``save_model(path)`` / ``load_model(path)``
lifecycle for deployments: the prediction service always serves the
registry's *promoted* model, and promoting/rolling back is a metadata
flip, never a model rewrite.
"""

from __future__ import annotations

import contextlib
import fcntl
import hashlib
import io
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.core.predictor import OptimisationPredictor
from repro.core.vector import stack_state_arrays
from repro.ioutil import (
    atomic_write_bytes,
    atomic_write_text,
    tmp_sibling,
    write_text_with_faults,
)

#: Registry file schema version; bump on incompatible layout changes.
REGISTRY_FORMAT = 1

#: The promotion channel used when none is named.
DEFAULT_CHANNEL = "default"

#: Channel names stay filesystem/JSON-friendly and unambiguous.
_CHANNEL_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

_MODEL_FILE = re.compile(r"^v(\d{4,})\.json$")


def validate_channel(channel: str) -> str:
    """Check a promotion channel name (returns it for chaining)."""
    if not isinstance(channel, str) or not _CHANNEL_NAME.match(channel):
        raise RegistryError(
            f"bad channel name {channel!r}: use 1-64 letters, digits, "
            "'_', '.', or '-' (starting with a letter or digit)"
        )
    return channel


class RegistryError(RuntimeError):
    """A registry entry is missing, corrupt, or from another format."""


def registry_root(cache_directory: str | Path | None = None) -> Path:
    """Where the default registry lives under the dataset cache root."""
    from repro.experiments.dataset import cache_dir

    return cache_dir(cache_directory) / "registry"


def _entry_digest(payload: dict) -> str:
    """Content digest over everything but the digest itself.

    Canonical JSON keeps the digest bit-exact: floats serialise as their
    shortest round-tripping repr, so two registrations of the same fitted
    model — and only those — share a digest.
    """
    canonical = json.dumps(
        {
            "fingerprint": payload.get("fingerprint"),
            "metadata": payload.get("metadata", {}),
            "model": payload["model"],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ModelVersion:
    """One registered model's provenance (everything but its weights)."""

    version: int
    digest: str
    fingerprint: str | None
    metadata: dict = field(default_factory=dict)
    promoted: bool = False
    #: Channels currently promoting this version (empty when none do).
    channels: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.channels and set(self.channels) != {DEFAULT_CHANNEL}:
            marker = f" *promoted:{','.join(self.channels)}*"
        elif self.promoted:
            marker = " *promoted*"
        else:
            marker = ""
        fingerprint = self.fingerprint or "-"
        scale = self.metadata.get("scale", "-")
        return (
            f"v{self.version:04d}  digest {self.digest}  "
            f"training {fingerprint}  scale {scale}{marker}"
        )


class ModelRegistry:
    """Versioned, fingerprint-addressed trained models on disk.

    Registration is append-only and race-free (exclusive version
    allocation, atomic writes); promotion is an atomically-replaced
    pointer whose history makes :meth:`rollback` possible.  Reads verify
    the stored content digest, so a torn or tampered model file raises
    instead of silently serving wrong predictions.
    """

    MODEL_DIR = "models"
    PROMOTED_NAME = "promoted.json"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ paths
    def _model_dir(self) -> Path:
        return self.root / self.MODEL_DIR

    def _model_path(self, version: int) -> Path:
        return self._model_dir() / f"v{version:04d}.json"

    def _arrays_path(self, version: int) -> Path:
        return self._model_dir() / f"v{version:04d}.arrays.npz"

    def _promoted_path(self) -> Path:
        return self.root / self.PROMOTED_NAME

    # ------------------------------------------------------------- inventory
    def versions(self) -> list[int]:
        """Registered version numbers, ascending (unreadable names skipped)."""
        directory = self._model_dir()
        if not directory.exists():
            return []
        found = []
        for path in directory.iterdir():
            match = _MODEL_FILE.match(path.name)
            if match is not None:
                found.append(int(match.group(1)))
        return sorted(found)

    def list(self) -> list[ModelVersion]:
        """Provenance of every registered model, ascending by version."""
        channels = self.channels()
        entries = []
        for version in self.versions():
            payload = self._read_entry(version)
            promoting = tuple(
                sorted(name for name, current in channels.items() if current == version)
            )
            entries.append(
                ModelVersion(
                    version=version,
                    digest=payload["digest"],
                    fingerprint=payload.get("fingerprint"),
                    metadata=dict(payload.get("metadata", {})),
                    promoted=bool(promoting),
                    channels=promoting,
                )
            )
        return entries

    def _read_entry(self, version: int) -> dict:
        path = self._model_path(version)
        if not path.exists():
            raise RegistryError(f"no model v{version:04d} in registry {self.root}")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise RegistryError(f"model v{version:04d} is unreadable: {error}")
        if payload.get("format") != REGISTRY_FORMAT:
            raise RegistryError(
                f"model v{version:04d} uses format {payload.get('format')!r}, "
                f"expected {REGISTRY_FORMAT}"
            )
        if _entry_digest(payload) != payload.get("digest"):
            raise RegistryError(
                f"model v{version:04d} is corrupt: content digest mismatch"
            )
        return payload

    # ----------------------------------------------------------- registration
    def register(
        self,
        predictor: OptimisationPredictor,
        fingerprint: str | None = None,
        metadata: dict | None = None,
        promote: bool = False,
        channel: str = DEFAULT_CHANNEL,
    ) -> ModelVersion:
        """Store a fitted predictor as the next version; never overwrites.

        Version allocation is exclusive: the entry is staged to a temp
        file and linked into place, so two concurrent registrations get
        two distinct versions — whichever loses the race for a number
        simply takes the next one.
        """
        payload = {
            "format": REGISTRY_FORMAT,
            "fingerprint": fingerprint,
            "metadata": dict(metadata or {}),
            "model": predictor.get_state(),
        }
        payload["digest"] = _entry_digest(payload)
        self._model_dir().mkdir(parents=True, exist_ok=True)
        version = (self.versions() or [0])[-1] + 1
        while True:
            target = self._model_path(version)
            payload["version"] = version
            tmp = tmp_sibling(target)
            write_text_with_faults(
                tmp, json.dumps(payload, indent=1), site="registry.model"
            )
            try:
                os.link(tmp, target)
            except FileExistsError:
                version += 1  # lost the race: take the next number
                continue
            finally:
                tmp.unlink(missing_ok=True)
            break
        entry = ModelVersion(
            version=version,
            digest=payload["digest"],
            fingerprint=fingerprint,
            metadata=dict(payload["metadata"]),
        )
        if promote:
            return self.promote(version, channel=channel)
        return entry

    # -------------------------------------------------------------- promotion
    @contextlib.contextmanager
    def _pointer_lock(self):
        """Serialise the pointer's read-modify-write across processes.

        Registration needs no lock (versions are allocated exclusively),
        but promote/rollback read the current pointer before rewriting
        it — without mutual exclusion two concurrent promotions would
        both read the same state and one version would vanish from the
        rollback history.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / "promoted.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_promoted(self) -> dict:
        """The pointer document, normalised to its per-channel form.

        Pointers written before channels existed carry only the legacy
        top-level ``current``/``history``; those read back as the default
        channel, so nothing is migrated on disk until the next promote.
        """
        path = self._promoted_path()
        if not path.exists():
            payload = {"format": REGISTRY_FORMAT, "current": None, "history": []}
        else:
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise RegistryError(f"promotion pointer is unreadable: {error}")
            if payload.get("format") != REGISTRY_FORMAT:
                raise RegistryError(
                    f"promotion pointer uses format {payload.get('format')!r}, "
                    f"expected {REGISTRY_FORMAT}"
                )
        channels = {
            name: {
                "current": (
                    None if state.get("current") is None else int(state["current"])
                ),
                "history": [int(item) for item in state.get("history", [])],
            }
            for name, state in payload.get("channels", {}).items()
        }
        if DEFAULT_CHANNEL not in channels and (
            payload.get("current") is not None or payload.get("history")
        ):
            channels[DEFAULT_CHANNEL] = {
                "current": (
                    None if payload.get("current") is None else int(payload["current"])
                ),
                "history": [int(item) for item in payload.get("history", [])],
            }
        payload["channels"] = channels
        return payload

    def _write_promoted_locked(self, channels: dict) -> None:
        """Atomically replace the pointer; caller holds the pointer lock.

        The default channel is mirrored into the legacy top-level keys so
        pre-channel readers of ``promoted.json`` keep working.
        """
        default = channels.get(DEFAULT_CHANNEL, {"current": None, "history": []})
        atomic_write_text(
            self._promoted_path(),
            json.dumps(
                {
                    "format": REGISTRY_FORMAT,
                    "current": default["current"],
                    "history": default["history"],
                    "channels": channels,
                }
            ),
            site="registry.pointer",
            fsync=True,
        )

    def promoted_version(self, channel: str = DEFAULT_CHANNEL) -> int | None:
        """The channel's promoted version (``None`` when nothing is)."""
        state = self._read_promoted()["channels"].get(channel)
        if state is None:
            return None
        return state["current"]

    def channels(self) -> dict[str, int]:
        """Every channel with a promotion, mapped to its current version."""
        return {
            name: state["current"]
            for name, state in self._read_promoted()["channels"].items()
            if state["current"] is not None
        }

    # ------------------------------------------------------- ranking sidecar
    def _write_arrays(self, version: int, payload: dict) -> None:
        """Precompute the model's ranking-ready arrays at promote time.

        The stacked ``[P, F]`` feature matrix and padded ``[P, D, Vmax]``
        theta tensor are exactly what the batch prediction kernel needs,
        so the service loads a promoted model without re-stacking its
        pairs.  Idempotent (keyed by the entry digest) and atomic; purely
        an acceleration — a missing or stale sidecar only costs a rebuild.
        """
        target = self._arrays_path(version)
        if target.exists():
            return
        features, theta = stack_state_arrays(payload["model"])
        buffer = io.BytesIO()
        np.savez(
            buffer,
            digest=np.array(payload["digest"]),
            features=features,
            theta=theta,
        )
        atomic_write_bytes(target, buffer.getvalue(), site="registry.arrays")

    def _load_arrays(
        self, version: int, digest: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The promote-time sidecar arrays, or ``None`` when absent, torn,
        or written for a different entry digest."""
        path = self._arrays_path(version)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                if str(data["digest"]) != digest:
                    return None
                return (
                    np.array(data["features"], dtype=float),
                    np.array(data["theta"], dtype=float),
                )
        except Exception:  # noqa: BLE001 - any corruption means "rebuild"
            return None

    def promote(
        self, version: int, channel: str = DEFAULT_CHANNEL
    ) -> ModelVersion:
        """Point the channel's deployments at ``version`` (verified first)."""
        validate_channel(channel)
        entry = self._read_entry(version)  # digest-verified, must exist
        self._write_arrays(version, entry)
        with self._pointer_lock():
            channels = self._read_promoted()["channels"]
            state = channels.setdefault(
                channel, {"current": None, "history": []}
            )
            previous = state["current"]
            if previous is not None and previous != version:
                state["history"].append(previous)
            state["current"] = version
            self._write_promoted_locked(channels)
        return ModelVersion(
            version=version,
            digest=entry["digest"],
            fingerprint=entry.get("fingerprint"),
            metadata=dict(entry.get("metadata", {})),
            promoted=True,
            channels=(channel,),
        )

    def rollback(self, channel: str = DEFAULT_CHANNEL) -> ModelVersion:
        """Re-promote the channel's previously promoted version."""
        validate_channel(channel)
        with self._pointer_lock():
            channels = self._read_promoted()["channels"]
            state = channels.get(channel, {"current": None, "history": []})
            if not state["history"]:
                raise RegistryError(
                    f"nothing to roll back to on channel {channel!r}: "
                    "promotion history is empty"
                )
            version = state["history"].pop()
            entry = self._read_entry(version)
            state["current"] = version
            channels[channel] = state
            self._write_promoted_locked(channels)
        return ModelVersion(
            version=version,
            digest=entry["digest"],
            fingerprint=entry.get("fingerprint"),
            metadata=dict(entry.get("metadata", {})),
            promoted=True,
            channels=(channel,),
        )

    # ----------------------------------------------------------------- loading
    def load(
        self,
        version: int | None = None,
        space: FlagSpace = DEFAULT_SPACE,
        vectorize: bool = True,
        channel: str = DEFAULT_CHANNEL,
    ) -> tuple[OptimisationPredictor, ModelVersion]:
        """Rebuild a registered predictor (default: the channel's promoted one).

        With ``vectorize=True`` the model comes back ranking-ready: the
        promote-time sidecar arrays are attached when present (and valid
        for this entry's digest), otherwise the tensors are rebuilt from
        the pairs — bit-identical either way.
        """
        if version is None:
            version = self.promoted_version(channel)
            if version is None:
                raise RegistryError(
                    f"registry {self.root} has no promoted model on channel "
                    f"{channel!r}; register one with promote=True or call "
                    "promote()"
                )
            promoted = True
        else:
            promoted = version in self.channels().values()
        payload = self._read_entry(version)
        predictor = OptimisationPredictor.from_state(
            payload["model"], space=space, vectorize=False
        )
        if vectorize:
            arrays = self._load_arrays(version, payload["digest"])
            try:
                if arrays is not None:
                    predictor.ensure_tensors(
                        features=arrays[0], theta=arrays[1]
                    )
                else:
                    predictor.ensure_tensors()
            except ValueError:
                predictor.ensure_tensors()  # stale sidecar shapes: rebuild
        return predictor, ModelVersion(
            version=version,
            digest=payload["digest"],
            fingerprint=payload.get("fingerprint"),
            metadata=dict(payload.get("metadata", {})),
            promoted=promoted,
            channels=tuple(
                sorted(
                    name
                    for name, current in self.channels().items()
                    if current == version
                )
            ),
        )

    def render(self) -> str:
        """Human-readable inventory for the CLI ``models`` command."""
        entries = self.list()
        lines = [f"model registry {self.root}"]
        if not entries:
            lines.append("  (empty — register one with: repro-experiments train)")
            return "\n".join(lines)
        for entry in entries:
            lines.append(f"  {entry.describe()}")
        if not self.channels():
            lines.append("  no model promoted yet")
        return "\n".join(lines)
