"""Pluggable simulator backends behind one protocol.

The paper's toolchain has two simulation tiers: the fast analytic model
used for the 7-million-run training protocol, and the slow trace-driven
reference simulator used to validate it.  The :class:`SimulatorBackend`
protocol makes the two interchangeable behind a single
``run(binary, machine) -> SimulationResult`` call, so every Session
operation (evaluate, batch, search, predict) works against either tier.

Backends are small frozen dataclasses: stateless, hashable, and picklable,
so a batch tagged with a backend can be shipped to worker processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.compiler.binary import CompiledBinary
from repro.machine.cacti import dcache_timing, icache_timing
from repro.machine.params import MicroArch
from repro.sim.analytic import (
    MISPREDICT_PENALTY,
    SEQUENTIAL_FETCH_OVERLAP,
    SimulationResult,
    simulate_analytic,
)
from repro.sim.trace import simulate_trace
from repro.sim.vector import VectorResults, simulate_grid


@runtime_checkable
class SimulatorBackend(Protocol):
    """Anything that turns (binary, machine) into a SimulationResult."""

    name: str

    def run(self, binary: CompiledBinary, machine: MicroArch) -> SimulationResult:
        ...


@dataclass(frozen=True)
class AnalyticBackend:
    """The fast tier: the first-order analytic timing model."""

    name: str = dataclasses.field(default="analytic", init=False)

    def run(self, binary: CompiledBinary, machine: MicroArch) -> SimulationResult:
        return simulate_analytic(binary, machine)

    def run_many(
        self,
        binaries: list[CompiledBinary],
        machines: list[MicroArch],
    ) -> VectorResults:
        """Every (binary × machine) pair in one vectorised kernel pass.

        Bit-identical to calling :meth:`run` per pair; batch-aware
        callers (``session.eval.batch``, the search evaluator, the
        service's batched ``/predict``) detect this method's presence to
        route whole grids through :func:`repro.sim.vector.simulate_many`.
        """
        return simulate_grid(binaries, machines)


@dataclass(frozen=True)
class TraceBackend:
    """The reference tier: trace-measured cache/BTB behaviour.

    Replays the binary's representative reference streams through the
    true-LRU cache and BTB simulators, then prices the *measured* miss
    rates with the same cost formulas the analytic model uses for its
    issue/dependence components (which the trace tier does not model).
    Slower but structurally faithful where the analytic capacity formulas
    approximate.
    """

    name: str = dataclasses.field(default="trace", init=False)
    max_loop_iterations: int = 256
    seed: int = 7

    def run(self, binary: CompiledBinary, machine: MicroArch) -> SimulationResult:
        base = simulate_analytic(binary, machine)
        trace = simulate_trace(
            binary, machine, self.max_loop_iterations, self.seed
        )

        ic_timing = icache_timing(machine)
        dc_timing = dcache_timing(machine)
        fetches = max(binary.dyn_insns, 1.0)
        memory_ops = max(binary.dyn_memory, 1.0)
        ic_misses = trace.icache_miss_rate * fetches
        dc_misses = trace.dcache_miss_rate * memory_ops
        mispredict_rate = min(
            1.0,
            (1.0 - binary.mean_predictability) + 0.5 * trace.btb_miss_rate,
        )
        penalty = MISPREDICT_PENALTY + (ic_timing.hit_cycles - 1.0)

        breakdown = dataclasses.replace(
            base.breakdown,
            icache_misses=(
                ic_misses * ic_timing.miss_penalty_cycles * SEQUENTIAL_FETCH_OVERLAP
            ),
            dcache_misses=dc_misses * dc_timing.miss_penalty_cycles,
            branch_mispredictions=(
                binary.dyn_branches * mispredict_rate * penalty
                + binary.dyn_taken * trace.btb_miss_rate * 2.0
            ),
        )
        cycles = max(breakdown.total(), 1.0)
        seconds = cycles * machine.cycle_ns * 1e-9

        # Per-cycle counter rates rescale with the new cycle count; the
        # measured miss rates replace the modelled ones outright.
        rescale = base.cycles / cycles
        counters = dataclasses.replace(
            base.counters,
            ipc=base.counters.ipc * rescale,
            dec_acc_rate=base.counters.dec_acc_rate * rescale,
            reg_acc_rate=base.counters.reg_acc_rate * rescale,
            bpred_acc_rate=base.counters.bpred_acc_rate * rescale,
            icache_acc_rate=base.counters.icache_acc_rate * rescale,
            dcache_acc_rate=base.counters.dcache_acc_rate * rescale,
            icache_miss_rate=min(trace.icache_miss_rate, 1.0),
            dcache_miss_rate=min(trace.dcache_miss_rate, 1.0),
        )

        detail = dict(base.detail)
        detail.update(
            ic_misses=ic_misses,
            dc_misses=dc_misses,
            btb_miss_rate=trace.btb_miss_rate,
            mispredict_rate=mispredict_rate,
        )
        return SimulationResult(
            cycles=cycles,
            seconds=seconds,
            counters=counters,
            breakdown=breakdown,
            energy_nj=base.energy_nj,
            detail=detail,
        )


#: Registered backend constructors, by name.
BACKENDS: dict[str, type] = {
    "analytic": AnalyticBackend,
    "trace": TraceBackend,
}


def resolve_backend(spec: object) -> SimulatorBackend:
    """Turn a backend name, class, or instance into a backend instance."""
    if spec is None:
        return AnalyticBackend()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
            ) from None
    if isinstance(spec, type):
        return spec()
    if isinstance(spec, SimulatorBackend):
        return spec
    raise TypeError(f"not a simulator backend: {spec!r}")
