"""Model lifecycle: persist a fitted predictor and its provenance.

The fitted :class:`~repro.core.predictor.OptimisationPredictor` is small —
one multinomial bundle and one feature vector per training pair — so it is
stored as a single JSON document.  Python's JSON float serialisation emits
the shortest repr that reparses to the identical double, so a reloaded
model reproduces the original's predictions bit-for-bit.

The envelope carries the training set's content fingerprint
(:meth:`~repro.core.training.TrainingSet.fingerprint`) so a deployment can
verify which data a model was fitted on.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.core.predictor import OptimisationPredictor

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def save_predictor(
    predictor: OptimisationPredictor,
    path: str | Path,
    fingerprint: str | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write a fitted predictor (plus provenance) to ``path``."""
    payload = {
        "format": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "metadata": dict(metadata or {}),
        "model": predictor.get_state(),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_predictor(
    path: str | Path, space: FlagSpace = DEFAULT_SPACE, vectorize: bool = True
) -> tuple[OptimisationPredictor, dict]:
    """Read a predictor back; returns ``(model, provenance)``.

    ``space`` must match the flag space the model was fitted on (checked
    against the stored dimension names).  ``provenance`` holds the stored
    ``fingerprint`` and ``metadata``.  ``vectorize`` selects whether the
    restored model carries its batch ranking kernel.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {version!r} (expected {FORMAT_VERSION})"
        )
    predictor = OptimisationPredictor.from_state(
        payload["model"], space=space, vectorize=vectorize
    )
    return predictor, {
        "fingerprint": payload.get("fingerprint"),
        "metadata": payload.get("metadata", {}),
    }
