"""The Session's facets: data, models, eval, and protocol.

Session API v2 splits the former god-object into four lazily-constructed,
individually-testable facets, each owning one slice of the pipeline:

* ``session.data`` — the experiment store and dataset lifecycle;
* ``session.models`` — fit/predict/rank plus persistence and the
  versioned :class:`~repro.api.registry.ModelRegistry`;
* ``session.eval`` — compile-and-simulate one triple or a parallel batch,
  and the iterative-compilation search baselines;
* ``session.protocol`` — the resumable paper-protocol fold grid.

Facets share the session's state (compiler, spaces, caches, fitted
model), so mixing facet calls with the deprecated flat ``Session``
methods is safe during migration — both operate on the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.api.backends import SimulatorBackend, resolve_backend
from repro.autotune.core import run_strategy
from repro.autotune.guided import GUIDED_STRATEGIES
from repro.autotune.tournament import TournamentResult, run_tournament
from repro.api.persistence import load_predictor, save_predictor
from repro.api.registry import (
    DEFAULT_CHANNEL,
    ModelRegistry,
    ModelVersion,
    registry_root,
)
from repro.api.types import (
    EvaluationRequest,
    EvaluationResult,
    PredictionResult,
    RankedPrediction,
    RankedSetting,
    SearchOutcome,
    SearchRequest,
)
from repro.compiler.flags import FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.predictor import (
    DEFAULT_BETA,
    DEFAULT_K,
    DEFAULT_QUANTILE,
    OptimisationPredictor,
)
from repro.core.training import TrainingSet
from repro.evalrun import (
    EvaluationPipeline,
    FoldStore,
    PipelineRunStats,
    ProtocolReport,
    protocol_fingerprint,
    protocol_variants,
    render_report,
    resolve_artifacts,
    variants_for_artifacts,
)
from repro.evalrun.foldstore import FoldKey, FoldStoreStatus
from repro.experiments.config import Scale
from repro.experiments.dataset import (
    ExperimentData,
    experiment_store,
    grid_for_scale,
    load_or_build,
    protocol_store_root,
    store_status,
)
from repro.experiments.figures import seed_crossval_cache
from repro.machine.params import MicroArch
from repro.parallel import resolve_jobs, run_batch
from repro.search.combined_elimination import combined_elimination
from repro.search.evaluator import Evaluator
from repro.search.genetic import genetic_search
from repro.search.hillclimb import hill_climb
from repro.search.random_search import random_search
from repro.sim.counters import PerfCounters
from repro.sim.vector import GridIndex
from repro.store import ExperimentRunner, ExperimentStore, StoreStatus

#: Registered iterative-compilation drivers: name -> (evaluator, budget,
#: seed, space) -> SearchResult.  Aliases share an entry.
SEARCH_ALGORITHMS: dict[str, Callable] = {
    "random": lambda ev, budget, seed, space: random_search(
        ev, budget, seed=seed, space=space
    ),
    "hillclimb": lambda ev, budget, seed, space: hill_climb(
        ev, budget, seed=seed, space=space
    ),
    "genetic": lambda ev, budget, seed, space: genetic_search(
        ev, budget, seed=seed, space=space
    ),
    "combined-elimination": lambda ev, budget, seed, space: combined_elimination(
        ev, seed=seed, budget=budget, space=space
    ),
}
SEARCH_ALGORITHMS["ce"] = SEARCH_ALGORITHMS["combined-elimination"]


@dataclass
class ProtocolRun:
    """Outcome of one :meth:`ProtocolFacet.run` call.

    ``report`` is ``None`` when a ``max_folds`` cap left folds pending —
    re-run (resume) to finish; everything checkpointed so far is kept.
    """

    stats: PipelineRunStats
    status: FoldStoreStatus
    report: ProtocolReport | None = None

    @property
    def complete(self) -> bool:
        return self.report is not None


#: Per-process compiler for process-pool workers; built lazily so forked
#: children that never evaluate pay nothing.
_WORKER_COMPILER: Compiler | None = None


def _evaluate_work(
    work: tuple[Program, FlagSetting, MicroArch, SimulatorBackend],
    compiler: Compiler | None = None,
) -> EvaluationResult:
    """One batch item; module-level so process pools can pickle it."""
    global _WORKER_COMPILER
    program, setting, machine, backend = work
    if compiler is None:
        if _WORKER_COMPILER is None:
            _WORKER_COMPILER = Compiler()
        compiler = _WORKER_COMPILER
    binary = compiler.compile(program, setting)
    simulation = backend.run(binary, machine)
    return EvaluationResult(
        program=program.name,
        machine=machine,
        setting=setting.canonical(),
        backend=backend.name,
        simulation=simulation,
    )


def profile_with_model(model, binary, machine, backend):
    """The §3.4 profiling step against an explicit model: one run of the
    -O3 ``binary`` plus the static code features the model's feature mode
    demands.  Shared by :meth:`ModelsFacet.predict`/``rank`` and the
    prediction service's program-spec path, so the two cannot drift.
    Returns ``(profile, code_features)``."""
    profile = backend.run(binary, machine)
    code_features = None
    if model.feature_mode == "with_code":
        from repro.core.code_features import static_code_features

        code_features = static_code_features(binary)
    return profile, code_features


def ranked_prediction(
    model: OptimisationPredictor,
    counters: PerfCounters,
    machine: MicroArch,
    top: int = 5,
    code_features=None,
    program: str | None = None,
) -> RankedPrediction:
    """Top-N ranked settings from an explicit fitted model.

    The shared core of :meth:`ModelsFacet.rank_counters` and the
    prediction service's ``/predict`` — taking the model as an argument
    (instead of reading the session's mutable slot) keeps a concurrent
    promotion from swapping the model mid-request.
    """
    distribution = model.predict_distribution(
        counters, machine, code_features=code_features
    )
    ranked = tuple(
        RankedSetting(rank=index + 1, setting=setting, probability=probability)
        for index, (setting, probability) in enumerate(
            distribution.top_settings(top)
        )
    )
    return RankedPrediction(program=program, machine=machine, settings=ranked)


def ranked_prediction_many(
    model: OptimisationPredictor,
    queries: Sequence[dict],
) -> list[RankedPrediction]:
    """Batched :func:`ranked_prediction`: one ranking-kernel pass for the
    whole batch, bit-identical per item to the single-query path.

    Each query is a mapping with ``counters`` and ``machine`` plus optional
    ``top`` (default 5), ``code_features``, and ``program`` — the shape the
    service's batched ``/predict`` already parses.  Models without a batch
    kernel (duck-typed predictors) fall back to the scalar loop.
    """
    if not hasattr(model, "predict_distribution_many"):
        return [
            ranked_prediction(
                model,
                query["counters"],
                query["machine"],
                query.get("top", 5),
                code_features=query.get("code_features"),
                program=query.get("program"),
            )
            for query in queries
        ]
    distributions = model.predict_distribution_many(
        [query["counters"] for query in queries],
        [query["machine"] for query in queries],
        code_features=[query.get("code_features") for query in queries],
    )
    predictions = []
    for query, distribution in zip(queries, distributions):
        ranked = tuple(
            RankedSetting(
                rank=index + 1, setting=setting, probability=probability
            )
            for index, (setting, probability) in enumerate(
                distribution.top_settings(query.get("top", 5))
            )
        )
        predictions.append(
            RankedPrediction(
                program=query.get("program"),
                machine=query["machine"],
                settings=ranked,
            )
        )
    return predictions


class _Facet:
    """Base class: a view over one slice of a session's state."""

    def __init__(self, session):
        self._session = session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(session={self._session!r})"


# ---------------------------------------------------------------------- eval
class EvalFacet(_Facet):
    """Compile-and-simulate triples, batches, and search baselines."""

    def evaluate(
        self,
        request: EvaluationRequest | Program | str,
        machine: MicroArch | None = None,
        setting: FlagSetting | None = None,
        backend: object | None = None,
    ) -> EvaluationResult:
        """Compile-and-simulate one triple (default setting: -O3)."""
        if not isinstance(request, EvaluationRequest):
            if machine is None:
                raise TypeError("evaluate() needs a machine")
            request = EvaluationRequest(
                program=request, machine=machine, setting=setting, backend=backend
            )
        return _evaluate_work(
            self._work_item(request), compiler=self._session.compiler
        )

    def _work_item(
        self, request: EvaluationRequest
    ) -> tuple[Program, FlagSetting, MicroArch, SimulatorBackend]:
        session = self._session
        backend = (
            session.backend
            if request.backend is None
            else resolve_backend(request.backend)
        )
        setting = request.setting if request.setting is not None else o3_setting()
        return (session.program(request.program), setting, request.machine, backend)

    def batch(
        self,
        requests: Iterable[EvaluationRequest | tuple],
        jobs: int | None = None,
        executor: str | None = None,
    ) -> list[EvaluationResult]:
        """Evaluate many triples, preserving request order.

        Requests may be :class:`EvaluationRequest` objects or
        ``(program, machine[, setting])`` tuples.  With ``jobs > 1`` the
        batch fans out over the chosen executor; results are identical to
        a serial run.
        """
        session = self._session
        normalised = [
            request
            if isinstance(request, EvaluationRequest)
            else EvaluationRequest(*request)
            for request in requests
        ]
        items = [self._work_item(request) for request in normalised]
        jobs = session.jobs if jobs is None else resolve_jobs(jobs)
        strategy = executor if executor is not None else session.executor
        if strategy == "auto":
            strategy = "process" if jobs > 1 else "serial"
        if strategy != "process":
            if self._vectorisable(items):
                return self._batch_vectorised(items)
            # Serial and thread runs share this process's memory, so they
            # go through the session compiler and its memoisation.
            def work(item):
                return _evaluate_work(item, compiler=session.compiler)

            return run_batch(work, items, jobs=jobs, executor=strategy)
        return run_batch(_evaluate_work, items, jobs=jobs, executor=strategy)

    def _vectorisable(self, items: list[tuple]) -> bool:
        """True when the whole batch can ride one simulate-many pass."""
        if not self._session.vectorize or len(items) < 2:
            return False
        first_backend = items[0][3]
        return hasattr(first_backend, "run_many") and all(
            item[3] == first_backend for item in items
        )

    def _batch_vectorised(self, items: list[tuple]) -> list[EvaluationResult]:
        """One kernel pass over the batch's (binary × machine) grid.

        Compiles each distinct (program, setting) once through the
        session compiler, prices the full grid with the backend's
        ``run_many``, and materialises per-request results — bit-identical
        to the per-item path, just without S×M scalar simulations.
        """
        compiler = self._session.compiler
        backend = items[0][3]
        rows, cols = GridIndex(), GridIndex()
        coords = [
            (
                rows.add(
                    (id(program), setting.canonical()),
                    lambda: compiler.compile(program, setting),
                ),
                cols.add(machine, lambda: machine),
            )
            for program, setting, machine, _ in items
        ]
        results = backend.run_many(rows.values, cols.values)
        return [
            EvaluationResult(
                program=program.name,
                machine=machine,
                setting=setting.canonical(),
                backend=backend.name,
                simulation=results.result(row, col),
            )
            for (program, setting, machine, _), (row, col) in zip(items, coords)
        ]

    def speedup_over_o3(
        self,
        program: Program | str,
        machine: MicroArch,
        setting: FlagSetting,
        backend: object | None = None,
    ) -> float:
        """Speedup of ``setting`` over -O3 on one pair (> 1 is faster)."""
        o3, tuned = self.batch(
            [
                EvaluationRequest(program, machine, backend=backend),
                EvaluationRequest(program, machine, setting, backend=backend),
            ],
            jobs=1,
        )
        return o3.runtime / tuned.runtime

    def evaluator(
        self,
        program: Program | str,
        machine: MicroArch,
        backend: object | None = None,
    ) -> Evaluator:
        """A memoising runtime oracle wired to a session backend."""
        session = self._session
        active_backend = (
            session.backend if backend is None else resolve_backend(backend)
        )
        return Evaluator(
            program=session.program(program),
            machine=machine,
            compiler=session.compiler,
            simulate=active_backend.run,
            batch_simulate=getattr(active_backend, "run_many", None),
            vectorize=session.vectorize,
        )

    def search(
        self,
        request: SearchRequest | None = None,
        **kwargs,
    ) -> SearchOutcome:
        """Run one iterative-compilation baseline on a pair.

        Accepts a :class:`SearchRequest` or its fields as keyword
        arguments (``program``, ``machine``, ``algorithm``, ``budget``,
        ``seed``, ``backend``).
        """
        if request is None:
            request = SearchRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass a SearchRequest or keyword fields, not both")
        if (
            request.algorithm not in SEARCH_ALGORITHMS
            and request.algorithm not in GUIDED_STRATEGIES
        ):
            raise ValueError(
                f"unknown search algorithm {request.algorithm!r}; "
                f"choose from "
                f"{sorted({*SEARCH_ALGORITHMS, *GUIDED_STRATEGIES})}"
            )
        evaluator = self.evaluator(
            request.program, request.machine, backend=request.backend
        )
        o3_runtime = evaluator.o3_runtime()
        if request.algorithm in GUIDED_STRATEGIES:
            # Model-guided: one §3.4 profile run feeds the predictive
            # distribution the strategy searches with (no exclusions —
            # this is the deployment flow, not leave-one-out evaluation).
            distribution = self._pair_distribution(
                request.program, request.machine, backend=request.backend
            )
            result = run_strategy(
                GUIDED_STRATEGIES[request.algorithm](),
                evaluator,
                request.budget,
                seed=request.seed,
                space=self._session.flag_space,
                distribution=distribution,
                o3_runtime=o3_runtime,
            )
        else:
            driver = SEARCH_ALGORITHMS[request.algorithm]
            result = driver(
                evaluator, request.budget, request.seed, self._session.flag_space
            )
        return SearchOutcome(
            program=evaluator.program.name,
            machine=request.machine,
            algorithm=request.algorithm,
            best_setting=result.best_setting,
            best_runtime=result.best_runtime,
            o3_runtime=o3_runtime,
            evaluations=result.evaluations,
            trajectory=tuple(result.trajectory),
        )

    def _pair_distribution(
        self,
        program: Program | str,
        machine: MicroArch,
        backend: object | None = None,
        exclude: bool = False,
        model: OptimisationPredictor | None = None,
    ):
        """The model's predictive distribution for one pair.

        One -O3 profile run (the paper's deployment price) plus the
        model's KNN mixture.  ``exclude=True`` applies the §5.1.1
        leave-one-*program*-out guard (the paper's "across programs"
        protocol: the target program's training rows are off-limits,
        other programs measured on the same machine remain fair game) —
        used by the tournament so the model never consults training
        data for the program it is searching.
        """
        session = self._session
        if model is None:
            model = session.models._require_model()
        resolved = session.program(program)
        active_backend = (
            session.backend if backend is None else resolve_backend(backend)
        )
        profile, code_features = profile_with_model(
            model, session.compile(resolved), machine, active_backend
        )
        return model.predict_distribution(
            profile.counters,
            machine,
            exclude_program=resolved.name if exclude else None,
            code_features=code_features,
        )

    def tournament(
        self,
        programs: Sequence[Program | str] | None = None,
        machines: int | Sequence[MicroArch] | None = None,
        *,
        budget: int = 40,
        seeds: Sequence[int] = (0, 1),
        strategies: Sequence[str] | None = None,
        tolerance: float = 0.01,
        backend: object | None = None,
        model: OptimisationPredictor | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> TournamentResult:
        """Run the autotuning tournament on a (program, machine) grid.

        Every registered strategy — the four iterative baselines plus
        the model-guided ones — searches each pair under the same
        budget and seeds; the result carries the leaderboard of
        evaluations- and simulations-to-match-best (see
        :mod:`repro.autotune.tournament` for the accounting rules).

        Defaults: the session scale's programs, the scale's sampled
        machines, and the session's fitted model (fitting it on the
        scale's dataset first if needed).  The model predicts each
        pair's distribution under the §5.1.1 leave-one-out exclusions,
        so a program in the training set never benefits from its own
        training rows.
        """
        session = self._session
        if model is None:
            if session.model is None:
                session.models.fit()
            model = session.model
        resolved_programs = [
            session.program(program)
            for program in (
                programs if programs is not None else session.scale.programs
            )
        ]
        if machines is None:
            resolved_machines = session.machines()
        elif isinstance(machines, int):
            resolved_machines = session.machines(machines)
        else:
            resolved_machines = list(machines)
        active_backend = (
            session.backend if backend is None else resolve_backend(backend)
        )

        def make_evaluator(program: Program, machine: MicroArch) -> Evaluator:
            return Evaluator(
                program=program,
                machine=machine,
                compiler=session.compiler,
                simulate=active_backend.run,
                batch_simulate=getattr(active_backend, "run_many", None),
                vectorize=session.vectorize,
            )

        def distribution_for(program: Program, machine: MicroArch):
            return self._pair_distribution(
                program, machine, backend=backend, exclude=True, model=model
            )

        return run_tournament(
            resolved_programs,
            resolved_machines,
            budget=budget,
            seeds=seeds,
            strategies=strategies,
            make_evaluator=make_evaluator,
            distribution_for=distribution_for,
            space=session.flag_space,
            tolerance=tolerance,
            progress=progress,
        )


# ---------------------------------------------------------------------- data
class DataFacet(_Facet):
    """The sharded experiment store and dataset lifecycle."""

    def dataset(
        self,
        scale: str | Scale | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> ExperimentData:
        """The (cached) training dataset for a scale (default: session's).

        Builds run through the sharded :mod:`repro.store` store, so an
        interrupted build resumes from its last completed shard; the
        assembled data is bit-identical however it was produced.
        """
        session = self._session
        resolved = session.scale if scale is None else session._resolve_scale(scale)
        store = None if session.use_disk_cache else self.store(resolved)
        data = load_or_build(
            resolved,
            progress=progress,
            use_disk_cache=session.use_disk_cache,
            cache_directory=session.cache_dir,
            jobs=session.jobs,
            executor=session.executor,
            store=store,
        )
        if store is not None and not store.is_complete():
            # The dataset was memoised by an earlier (possibly other-
            # session) build; absorb it so this session's store, status,
            # and dataset stay consistent.
            store.adopt(data.training)
        return data

    def store(self, scale: str | Scale | None = None) -> ExperimentStore:
        """The shard store backing a scale's dataset.

        On disk under the session's cache directory, or — when the
        session was created with ``use_disk_cache=False`` — a per-scale
        in-memory store (same API, nothing written) owned by this
        session, so partial builds survive across calls.
        """
        session = self._session
        resolved = session.scale if scale is None else session._resolve_scale(scale)
        if not session.use_disk_cache:
            key = resolved.fingerprint()
            store = session._memory_stores.get(key)
            if store is None:
                store = ExperimentStore(grid_for_scale(resolved), root=None)
                session._memory_stores[key] = store
            return store
        return experiment_store(resolved, cache_directory=session.cache_dir)

    def status(self, scale: str | Scale | None = None) -> StoreStatus:
        """Shard-completion snapshot of a scale's store (read-only)."""
        session = self._session
        resolved = session.scale if scale is None else session._resolve_scale(scale)
        if not session.use_disk_cache:
            return self.store(resolved).status()
        return store_status(resolved, cache_directory=session.cache_dir)

    def build(
        self,
        scale: str | Scale | None = None,
        max_shards: int | None = None,
        progress: Callable[[str], None] | None = None,
        store: ExperimentStore | None = None,
        lease_ttl: float | None = None,
    ) -> int:
        """Advance a scale's store by up to ``max_shards`` shards.

        Each completed shard is checkpointed, so this can be called
        repeatedly — across processes, interruptions, and executors — and
        the store converges on the same bit-identical dataset.  Pass an
        already-opened ``store`` to avoid re-sampling the grid.  Returns
        the number of shards computed by this call.  ``lease_ttl`` only
        matters for the ``cluster`` executor (lease staleness horizon).
        """
        session = self._session
        if store is None:
            store = self.store(scale)
        runner = ExperimentRunner(
            store,
            compiler=session.compiler,
            jobs=session.jobs,
            executor=session.executor,
            vectorize=session.vectorize,
            lease_ttl=lease_ttl,
        )
        return runner.run(max_shards=max_shards, progress=progress)


# -------------------------------------------------------------------- models
class ModelsFacet(_Facet):
    """Fit, predict, rank, and persist models; the versioned registry."""

    @property
    def model(self) -> OptimisationPredictor | None:
        """The session's fitted model (shared with the flat shims)."""
        return self._session.model

    @property
    def fingerprint(self) -> str | None:
        """The training-data fingerprint of the fitted model."""
        return self._session.model_fingerprint

    def fit(
        self,
        training: TrainingSet | None = None,
        *,
        scale: str | Scale | None = None,
        progress: Callable[[str], None] | None = None,
        k: int = DEFAULT_K,
        beta: float = DEFAULT_BETA,
        quantile: float = DEFAULT_QUANTILE,
        feature_mode: str = "both",
    ) -> OptimisationPredictor:
        """Fit the paper's model, remembering it and its data fingerprint."""
        session = self._session
        if training is None:
            training = session.data.dataset(scale, progress=progress).training
        model = OptimisationPredictor(
            space=session.flag_space,
            k=k,
            beta=beta,
            quantile=quantile,
            feature_mode=feature_mode,
            vectorize=session.vectorize,
        ).fit(training)
        session.model = model
        session.model_fingerprint = training.fingerprint()
        return model

    def _require_model(self) -> OptimisationPredictor:
        if self._session.model is None:
            raise RuntimeError(
                "no model: call models.fit(), models.load(), or "
                "models.load_registered() first"
            )
        return self._session.model

    def _profile(
        self,
        program: Program | str,
        machine: MicroArch,
        backend: object | None,
    ):
        """The §3.4 profiling step: one -O3 run plus optional code features."""
        session = self._session
        model = self._require_model()
        resolved = session.program(program)
        active_backend = (
            session.backend if backend is None else resolve_backend(backend)
        )
        profile, code_features = profile_with_model(
            model, session.compile(resolved), machine, active_backend
        )
        return resolved, active_backend, profile, code_features

    def predict(
        self,
        program: Program | str,
        machine: MicroArch,
        *,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        evaluate: bool = True,
        backend: object | None = None,
    ) -> PredictionResult:
        """The §3.4 deployment flow: one -O3 profile run, then predict.

        With ``evaluate=True`` the predicted setting is compiled and
        simulated too, so the result carries its speedup over -O3.
        """
        session = self._session
        resolved, active_backend, profile, code_features = self._profile(
            program, machine, backend
        )
        setting = session.model.predict(
            profile.counters,
            machine,
            exclude_program=exclude_program,
            exclude_machine=exclude_machine,
            code_features=code_features,
        )
        predicted_run = None
        if evaluate:
            predicted_run = active_backend.run(
                session.compile(resolved, setting), machine
            )
        return PredictionResult(
            program=resolved.name,
            machine=machine,
            setting=setting,
            profile=profile,
            predicted_run=predicted_run,
        )

    def rank(
        self,
        program: Program | str,
        machine: MicroArch,
        top: int = 5,
        *,
        backend: object | None = None,
    ) -> RankedPrediction:
        """The deployment flow, answered as the top-N ranked settings.

        ``settings[0]`` is the distribution's mode — exactly what
        :meth:`predict` returns — followed by the next most probable
        settings under the model's predictive distribution.  This is the
        object ``POST /predict`` serialises, bit-for-bit.
        """
        resolved, _, profile, code_features = self._profile(
            program, machine, backend
        )
        return self.rank_counters(
            profile.counters,
            machine,
            top,
            code_features=code_features,
            program=resolved.name,
        )

    def rank_counters(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        top: int = 5,
        *,
        code_features=None,
        program: str | None = None,
    ) -> RankedPrediction:
        """Ranked settings straight from a feature vector (no profiling run)."""
        return ranked_prediction(
            self._require_model(),
            counters,
            machine,
            top,
            code_features=code_features,
            program=program,
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> Path:
        """Persist the fitted model plus its training fingerprint."""
        session = self._session
        if session.model is None:
            raise RuntimeError("no model to save: call models.fit() first")
        return save_predictor(
            session.model,
            path,
            fingerprint=session.model_fingerprint,
            metadata={"scale": session.scale.name},
        )

    def load(self, path: str | Path) -> OptimisationPredictor:
        """Load a persisted model file into this session."""
        session = self._session
        predictor, provenance = load_predictor(
            path, space=session.flag_space, vectorize=session.vectorize
        )
        session.model = predictor
        session.model_fingerprint = provenance["fingerprint"]
        return predictor

    # --------------------------------------------------------------- registry
    def registry(self, root: str | Path | None = None) -> ModelRegistry:
        """The session's model registry (default: ``<cache>/registry``)."""
        if root is None:
            root = registry_root(self._session.cache_dir)
        return ModelRegistry(root)

    def register(
        self,
        registry: ModelRegistry | str | Path | None = None,
        metadata: dict | None = None,
        promote: bool = False,
        channel: str = DEFAULT_CHANNEL,
    ) -> ModelVersion:
        """Register the fitted model as a new immutable registry version.

        With ``promote=True`` the new version is promoted on ``channel``
        (the default channel unless named), so one registry can serve a
        model per scale or per machine space side by side.
        """
        session = self._session
        if session.model is None:
            raise RuntimeError("no model to register: call models.fit() first")
        if not isinstance(registry, ModelRegistry):
            registry = self.registry(registry)
        merged = {"scale": session.scale.name}
        merged.update(metadata or {})
        return registry.register(
            session.model,
            fingerprint=session.model_fingerprint,
            metadata=merged,
            promote=promote,
            channel=channel,
        )

    def load_registered(
        self,
        version: int | None = None,
        registry: ModelRegistry | str | Path | None = None,
        channel: str = DEFAULT_CHANNEL,
    ) -> ModelVersion:
        """Load a registry model (default: the channel's promoted one)."""
        session = self._session
        if not isinstance(registry, ModelRegistry):
            registry = self.registry(registry)
        predictor, entry = registry.load(
            version,
            space=session.flag_space,
            vectorize=session.vectorize,
            channel=channel,
        )
        session.model = predictor
        session.model_fingerprint = entry.fingerprint
        return entry


# ------------------------------------------------------------------ protocol
class ProtocolFacet(_Facet):
    """The resumable paper protocol: fold store, pipeline, report."""

    def store(
        self, data: ExperimentData | None = None, scale: str | Scale | None = None
    ) -> FoldStore:
        """The fold store backing a scale's paper-protocol run.

        On disk under the session's cache directory, or — with
        ``use_disk_cache=False`` — a per-scale in-memory store owned by
        this session so partial protocol runs survive across calls.
        Opening the store requires the training matrix (the protocol
        fingerprint covers it), so the dataset is built first if needed.
        """
        session = self._session
        if data is None:
            data = session.data.dataset(scale)
        variants = protocol_variants(
            with_code=data.training.code_features is not None
        )
        fingerprint = protocol_fingerprint(data.training, variants)
        programs = list(data.training.program_names)
        metadata = {"scale": data.scale.name}
        if not session.use_disk_cache:
            store = session._memory_fold_stores.get(fingerprint)
            if store is None:
                store = FoldStore(
                    fingerprint, variants, programs, root=None, metadata=metadata
                )
                session._memory_fold_stores[fingerprint] = store
            return store
        return FoldStore(
            fingerprint,
            variants,
            programs,
            root=protocol_store_root(data.scale, fingerprint, session.cache_dir),
            metadata=metadata,
        )

    def run(
        self,
        scale: str | Scale | None = None,
        *,
        only: str | Sequence[str] | None = None,
        max_folds: int | None = None,
        jobs: int | None = None,
        executor: str | None = None,
        progress: Callable[[str], None] | None = None,
        store: FoldStore | None = None,
        on_fold: Callable[[FoldKey, int, int], None] | None = None,
        formats: Sequence[str] = ("md", "json"),
        lease_ttl: float | None = None,
    ) -> ProtocolRun:
        """Run the full paper protocol — resumably — and render the artifact.

        Builds (or resumes) the scale's dataset through the experiment
        store, executes the leave-one-out + ablation fold grid through
        the checkpointing :class:`EvaluationPipeline`, and renders the
        requested artifacts as markdown + JSON.  Every fold is
        checkpointed as it completes, so a killed run resumes with zero
        re-simulation, and the rendered report is byte-identical however
        the run was interrupted or parallelised.

        Args:
            only: artifact subset (``"fig6,headline"`` or a sequence);
                folds that only unrequested artifacts need are not run.
            max_folds: checkpoint at most this many folds then stop
                (``report`` is ``None`` if that leaves the grid
                incomplete; call again to resume).
            jobs/executor: override the session defaults for this run.
            on_fold: called as ``on_fold(key, completed, total)`` the
                moment each fold checkpoints — the hook the prediction
                service streams live NDJSON progress events from.
            formats: report representations; add ``"svg"`` for the
                headline speedup figure (needs the ``base`` variant).
            lease_ttl: ``cluster`` executor only — seconds without a
                heartbeat before a fold lease counts as stale.
        """
        session = self._session
        data = session.data.dataset(scale, progress=progress)
        if store is None:
            store = self.store(data)
        artifacts = resolve_artifacts(only)
        with_code = data.training.code_features is not None
        variant_keys = variants_for_artifacts(artifacts, with_code=with_code)
        pipeline = EvaluationPipeline(
            data.training,
            data.programs,
            store,
            jobs=session.jobs if jobs is None else jobs,
            executor=session.executor if executor is None else executor,
            compiler=session.compiler,
            vectorize=session.vectorize,
            lease_ttl=lease_ttl,
        )
        stats = pipeline.run(
            variants=variant_keys,
            max_folds=max_folds,
            progress=progress,
            on_fold=on_fold,
        )
        if not store.is_complete(variant_keys):
            return ProtocolRun(stats=stats, status=store.status(), report=None)
        protocol = pipeline.assemble(variants=variant_keys)
        if "base" in protocol.results:
            # Figures/tables called outside the protocol now consume the
            # checkpointed pipeline output instead of recomputing CV.
            seed_crossval_cache(data, protocol.base)
        report = render_report(data, protocol, only=artifacts, formats=formats)
        return ProtocolRun(stats=stats, status=store.status(), report=report)
