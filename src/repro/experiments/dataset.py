"""Experiment-data generation over the sharded, resumable store.

Building a training matrix is the expensive step of every experiment, so
it is computed once per (scale, program-spec fingerprint) and memoised in
process and on disk.  The on-disk representation is a
:class:`repro.store.ExperimentStore` under ``$REPRO_CACHE_DIR`` (default
``<cwd>/.repro-cache``): one directory per scale holding a manifest plus
append-only, fingerprinted shard files keyed by (program,
machine-chunk).  An interrupted build loses nothing — the next
:func:`load_or_build` (or ``repro-experiments run --resume``) skips
completed shards and computes only the rest, and the assembled
:class:`~repro.core.training.TrainingSet` is bit-identical to a
single-shot build.

Datasets written by older versions as a single ``.npz`` + JSON sidecar
remain readable: :func:`load_or_build` falls back to the legacy file
when no store exists for the scale.

The in-process memoisation is guarded by a lock, so concurrent sessions
(threads) sharing this module build each dataset exactly once.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.training import TrainingSet
from repro.experiments.config import Scale
from repro.machine.params import MicroArch, MicroArchSpace
from repro.programs.mibench import mibench_program
from repro.store import (
    ExperimentRunner,
    ExperimentStore,
    GridSpec,
    StoreError,
    StoreStatus,
)


@dataclass
class ExperimentData:
    """Everything the per-figure experiments consume."""

    scale: Scale
    programs: list[Program]
    machines: list[MicroArch]
    training: TrainingSet
    compiler: Compiler


_MEMORY_CACHE: dict[str, ExperimentData] = {}
#: Guards ``_MEMORY_CACHE`` and ``_BUILD_LOCKS``; never held during a build.
_CACHE_LOCK = threading.Lock()
#: Per-fingerprint build locks so concurrent sessions build each dataset
#: once (and different scales still build in parallel).
_BUILD_LOCKS: dict[str, threading.Lock] = {}


def cache_dir(override: str | Path | None = None) -> Path:
    """The dataset cache root: explicit override > $REPRO_CACHE_DIR > cwd."""
    if override is not None:
        return Path(override)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def _machines_for(scale: Scale) -> list[MicroArch]:
    space = MicroArchSpace(extended=scale.extended)
    return space.sample(scale.n_machines, seed=scale.machine_seed)


def grid_for_scale(scale: Scale, chunk_machines: int | None = None) -> GridSpec:
    """The explicit experiment grid (machines, settings) of a scale."""
    kwargs = {} if chunk_machines is None else {"chunk_machines": chunk_machines}
    return GridSpec(
        program_names=tuple(scale.programs),
        machines=tuple(_machines_for(scale)),
        settings=tuple(
            DEFAULT_SPACE.sample_many(scale.n_settings, scale.setting_seed)
        ),
        extended=scale.extended,
        metadata={"seed": scale.setting_seed, "n_settings": scale.n_settings},
        **kwargs,
    )


def store_root(scale: Scale, cache_directory: str | Path | None = None) -> Path:
    """Where a scale's shard store lives under the cache root."""
    return cache_dir(cache_directory) / f"store-{scale.name}-{scale.fingerprint()}"


def experiment_store(
    scale: Scale,
    cache_directory: str | Path | None = None,
    chunk_machines: int | None = None,
) -> ExperimentStore:
    """Open (or create) the shard store for a scale.

    The store directory is keyed by the scale fingerprint — which covers
    the program specs — so retuning a benchmark spec starts a fresh
    store rather than resuming a stale one.
    """
    return ExperimentStore(
        grid_for_scale(scale, chunk_machines),
        root=store_root(scale, cache_directory),
    )


def protocol_store_root(
    scale: Scale,
    fingerprint: str,
    cache_directory: str | Path | None = None,
) -> Path:
    """Where a scale's protocol fold store lives under the cache root.

    Keyed by the *protocol* fingerprint — which covers the training
    matrix and every predictor variant — so a changed dataset or variant
    set starts a fresh fold store rather than resuming a stale one.
    """
    return cache_dir(cache_directory) / f"protocol-{scale.name}-{fingerprint}"


def store_status(
    scale: Scale, cache_directory: str | Path | None = None
) -> StoreStatus:
    """Shard-completion snapshot for ``repro-experiments status``.

    Read-only: when no store exists yet this reports an all-pending grid
    without creating the store directory as a side effect.
    """
    root = store_root(scale, cache_directory)
    if not root.exists():
        return StoreStatus.pending_for(grid_for_scale(scale), root=str(root))
    return experiment_store(scale, cache_directory).status()


# --------------------------------------------------------- legacy flat cache
def _save(path: Path, training: TrainingSet) -> None:
    """Write the legacy single-file cache (kept for tooling/tests)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(
        runtimes=training.runtimes,
        o3_runtimes=training.o3_runtimes,
        counters=training.counters,
    )
    if training.code_features is not None:
        arrays["code_features"] = training.code_features
    np.savez_compressed(path.with_suffix(".npz"), **arrays)
    sidecar = {
        "program_names": training.program_names,
        "machines": [dataclasses.asdict(machine) for machine in training.machines],
        "settings": [list(setting.as_indices()) for setting in training.settings],
        "extended": training.extended,
        "metadata": training.metadata,
    }
    path.with_suffix(".json").write_text(json.dumps(sidecar))


def _load(path: Path) -> TrainingSet | None:
    """Read a legacy single-file cache, if one exists."""
    npz_path = path.with_suffix(".npz")
    json_path = path.with_suffix(".json")
    if not npz_path.exists() or not json_path.exists():
        return None
    sidecar = json.loads(json_path.read_text())
    arrays = np.load(npz_path)
    return TrainingSet(
        program_names=list(sidecar["program_names"]),
        machines=[MicroArch(**fields) for fields in sidecar["machines"]],
        settings=[
            FlagSetting.from_indices(indices) for indices in sidecar["settings"]
        ],
        runtimes=arrays["runtimes"],
        o3_runtimes=arrays["o3_runtimes"],
        counters=arrays["counters"],
        extended=bool(sidecar["extended"]),
        metadata=dict(sidecar["metadata"]),
        code_features=(
            arrays["code_features"] if "code_features" in arrays else None
        ),
    )


def _legacy_path(scale: Scale, cache_directory: str | Path | None) -> Path:
    return cache_dir(cache_directory) / f"training-{scale.name}-{scale.fingerprint()}"


def adopt_legacy_cache(
    scale: Scale,
    store: ExperimentStore,
    cache_directory: str | Path | None = None,
) -> int:
    """Fill a store's pending shards from the legacy single-file cache.

    Bit-exact with computed shards, so a store can absorb a dataset
    written by an older release instead of recomputing it.  Returns the
    number of shards adopted (0 when there is no usable legacy file or
    nothing is pending).
    """
    if store.is_complete():
        return 0
    legacy = _load(_legacy_path(scale, cache_directory))
    if legacy is None:
        return 0
    try:
        return store.adopt(legacy)
    except StoreError:
        return 0  # legacy data from another grid: compute instead


# ------------------------------------------------------------------- builds
def _build_training(
    scale: Scale,
    programs: list[Program],
    compiler: Compiler,
    progress: Callable[[str], None] | None,
    use_disk_cache: bool,
    cache_directory: str | Path | None,
    jobs: int,
    executor: str,
    store: ExperimentStore | None = None,
) -> TrainingSet:
    """Resolve a scale's training set: store > legacy file > fresh build."""
    if store is None and use_disk_cache:
        # Consult the legacy single-file cache before materialising a
        # store directory: a legacy-only cache keeps serving without the
        # side effect of an empty (and misleading) all-pending store.
        if not store_root(scale, cache_directory).exists():
            legacy = _load(_legacy_path(scale, cache_directory))
            if legacy is not None:
                return legacy
        store = experiment_store(scale, cache_directory)
        # A store directory already on disk (empty or partial) absorbs a
        # matching legacy cache instead of recomputing its shards.
        adopt_legacy_cache(scale, store, cache_directory)
    elif store is None:
        store = ExperimentStore(grid_for_scale(scale), root=None)

    if not store.is_complete():
        pending = len(store.pending_keys())
        if progress is not None and pending < store.grid.n_shards:
            progress(
                f"resuming store: {store.grid.n_shards - pending}/"
                f"{store.grid.n_shards} shards already complete"
            )
        runner = ExperimentRunner(
            store,
            programs=programs,
            compiler=compiler,
            jobs=jobs,
            executor=executor,
        )
        runner.run(progress=progress)
    return store.assemble()


def load_or_build(
    scale: Scale,
    progress: Callable[[str], None] | None = None,
    use_disk_cache: bool = True,
    cache_directory: str | Path | None = None,
    jobs: int = 1,
    executor: str = "auto",
    store: ExperimentStore | None = None,
) -> ExperimentData:
    """Return the experiment data for ``scale``, building it if needed.

    The build runs through the sharded store, so it is resumable: a
    partially built store (from an interrupted run or a capped
    ``repro-experiments run --max-shards``) is completed rather than
    restarted.  ``cache_directory`` overrides the ``$REPRO_CACHE_DIR``
    default; ``jobs``/``executor`` fan the per-shard work out over the
    chosen pool; an explicit ``store`` (e.g. a session's in-memory
    store holding partial progress) is completed in place.  None of
    these knobs change the resulting data — the assembled training set
    is bit-identical for every combination.
    """
    # The memo key covers the persistence configuration, not just the
    # scale: a call pointed at a different cache directory must build
    # (and persist) there rather than be served a dataset that was never
    # written to its configured location.
    if use_disk_cache:
        target = str(cache_dir(cache_directory).resolve())
    else:
        target = "<memory>"
    key = f"{scale.fingerprint()}@{target}"
    with _CACHE_LOCK:
        if key in _MEMORY_CACHE:
            return _MEMORY_CACHE[key]
        build_lock = _BUILD_LOCKS.setdefault(key, threading.Lock())

    with build_lock:
        # Double-check: another session may have built while we waited.
        with _CACHE_LOCK:
            if key in _MEMORY_CACHE:
                return _MEMORY_CACHE[key]

        programs = [mibench_program(name) for name in scale.programs]
        compiler = Compiler()
        training = _build_training(
            scale,
            programs,
            compiler,
            progress=progress,
            use_disk_cache=use_disk_cache,
            cache_directory=cache_directory,
            jobs=jobs,
            executor=executor,
            store=store,
        )
        data = ExperimentData(
            scale=scale,
            programs=programs,
            machines=training.machines,
            training=training,
            compiler=compiler,
        )
        with _CACHE_LOCK:
            _MEMORY_CACHE[key] = data
        return data


def clear_memory_cache() -> None:
    with _CACHE_LOCK:
        _MEMORY_CACHE.clear()
