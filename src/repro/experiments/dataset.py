"""Experiment-data generation with on-disk caching.

Building a training matrix is the expensive step of every experiment, so it
is computed once per (scale, program-spec fingerprint) and memoised both in
process and on disk as an ``.npz`` plus JSON sidecar under
``$REPRO_CACHE_DIR`` (default ``<cwd>/.repro-cache``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.training import TrainingSet, generate_training_set
from repro.experiments.config import Scale
from repro.machine.params import MicroArch, MicroArchSpace
from repro.programs.mibench import mibench_program


@dataclass
class ExperimentData:
    """Everything the per-figure experiments consume."""

    scale: Scale
    programs: list[Program]
    machines: list[MicroArch]
    training: TrainingSet
    compiler: Compiler


_MEMORY_CACHE: dict[str, ExperimentData] = {}


def cache_dir(override: str | Path | None = None) -> Path:
    """The dataset cache root: explicit override > $REPRO_CACHE_DIR > cwd."""
    if override is not None:
        return Path(override)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def _machines_for(scale: Scale) -> list[MicroArch]:
    space = MicroArchSpace(extended=scale.extended)
    return space.sample(scale.n_machines, seed=scale.machine_seed)


def _save(path: Path, training: TrainingSet) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(
        runtimes=training.runtimes,
        o3_runtimes=training.o3_runtimes,
        counters=training.counters,
    )
    if training.code_features is not None:
        arrays["code_features"] = training.code_features
    np.savez_compressed(path.with_suffix(".npz"), **arrays)
    sidecar = {
        "program_names": training.program_names,
        "machines": [dataclasses.asdict(machine) for machine in training.machines],
        "settings": [list(setting.as_indices()) for setting in training.settings],
        "extended": training.extended,
        "metadata": training.metadata,
    }
    path.with_suffix(".json").write_text(json.dumps(sidecar))


def _load(path: Path) -> TrainingSet | None:
    npz_path = path.with_suffix(".npz")
    json_path = path.with_suffix(".json")
    if not npz_path.exists() or not json_path.exists():
        return None
    sidecar = json.loads(json_path.read_text())
    arrays = np.load(npz_path)
    return TrainingSet(
        program_names=list(sidecar["program_names"]),
        machines=[MicroArch(**fields) for fields in sidecar["machines"]],
        settings=[
            FlagSetting.from_indices(indices) for indices in sidecar["settings"]
        ],
        runtimes=arrays["runtimes"],
        o3_runtimes=arrays["o3_runtimes"],
        counters=arrays["counters"],
        extended=bool(sidecar["extended"]),
        metadata=dict(sidecar["metadata"]),
        code_features=(
            arrays["code_features"] if "code_features" in arrays else None
        ),
    )


def load_or_build(
    scale: Scale,
    progress: Callable[[str], None] | None = None,
    use_disk_cache: bool = True,
    cache_directory: str | Path | None = None,
    jobs: int = 1,
) -> ExperimentData:
    """Return the experiment data for ``scale``, building it if needed.

    ``cache_directory`` overrides the ``$REPRO_CACHE_DIR`` default and
    ``jobs`` fans the per-program build work over a process pool; neither
    changes the resulting data.
    """
    key = scale.fingerprint()
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    programs = [mibench_program(name) for name in scale.programs]
    machines = _machines_for(scale)
    compiler = Compiler()

    training = None
    path = cache_dir(cache_directory) / f"training-{scale.name}-{key}"
    if use_disk_cache:
        training = _load(path)
    if training is None:
        training = generate_training_set(
            programs,
            machines,
            n_settings=scale.n_settings,
            seed=scale.setting_seed,
            extended=scale.extended,
            compiler=compiler,
            progress=progress,
            jobs=jobs,
        )
        if use_disk_cache:
            _save(path, training)

    data = ExperimentData(
        scale=scale,
        programs=programs,
        machines=training.machines,
        training=training,
        compiler=compiler,
    )
    _MEMORY_CACHE[key] = data
    return data


def clear_memory_cache() -> None:
    _MEMORY_CACHE.clear()
