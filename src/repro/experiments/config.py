"""Experiment scales.

The paper's protocol (§4) is 35 programs × 200 microarchitectures × 1000
flag settings — 7 million simulations.  That runs in hours here, not weeks,
but the benches and tests need smaller presets; every scale is an explicit,
seeded, reproducible configuration, and all experiments accept any of them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.programs.mibench import MIBENCH_ORDER, mibench_spec


@dataclass(frozen=True)
class Scale:
    """One fully-specified experiment size."""

    name: str
    programs: tuple[str, ...]
    n_machines: int
    n_settings: int
    machine_seed: int = 42
    setting_seed: int = 7
    extended: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.programs) - set(MIBENCH_ORDER)
        if unknown:
            raise ValueError(f"unknown programs: {sorted(unknown)}")
        if self.n_machines < 2 or self.n_settings < 2:
            raise ValueError("need at least 2 machines and 2 settings")

    def with_extended(self) -> "Scale":
        """The §7 variant of this scale (adds frequency & issue width)."""
        return replace(self, name=f"{self.name}-ext", extended=True)

    def fingerprint(self) -> str:
        """Cache key covering the scale *and* the program specs, so spec
        retuning invalidates stale datasets."""
        digest = hashlib.sha256()
        digest.update(repr(self).encode())
        for name in self.programs:
            digest.update(repr(mibench_spec(name)).encode())
        return digest.hexdigest()[:16]


#: The paper's full protocol (§4.1-4.3).
PAPER = Scale(
    name="paper",
    programs=MIBENCH_ORDER,
    n_machines=200,
    n_settings=1000,
)

#: Default for benches: all programs, reduced sampling — minutes, not hours.
DEFAULT = Scale(
    name="default",
    programs=MIBENCH_ORDER,
    n_machines=24,
    n_settings=120,
)

#: Quick look: a representative programme subset.
QUICK = Scale(
    name="quick",
    programs=(
        "qsort",
        "rawcaudio",
        "djpeg",
        "ispell",
        "bf_e",
        "tiffdither",
        "madplay",
        "sha",
        "bitcnts",
        "rijndael_e",
        "crc",
        "search",
    ),
    n_machines=10,
    n_settings=60,
)

#: Unit-test scale: small enough for CI, big enough to be non-degenerate.
TINY = Scale(
    name="tiny",
    programs=("qsort", "tiffdither", "sha", "rijndael_e", "search", "crc"),
    n_machines=6,
    n_settings=32,
)

PRESETS: dict[str, Scale] = {
    scale.name: scale for scale in (PAPER, DEFAULT, QUICK, TINY)
}


def preset(name: str) -> Scale:
    """Look up a named preset scale."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(PRESETS)}"
        ) from None
