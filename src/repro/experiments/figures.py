"""Reproduction of every figure in the paper's evaluation.

Each ``figureN`` function takes the (cached) experiment data and returns a
result dataclass with the numbers behind the paper's plot plus a
``render()`` producing the same series as text.  The benches print these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting
from repro.core.crossval import CrossValResult, leave_one_out
from repro.core.mutual_information import (
    feature_best_flag_mi,
    flag_speedup_mi,
    hinton_feature_columns,
    hinton_rows,
)
from repro.core.predictor import OptimisationPredictor
from repro.experiments.dataset import ExperimentData, load_or_build
from repro.machine.params import MicroArch
from repro.machine.xscale import (
    xscale,
    xscale_small_both_caches,
    xscale_small_icache,
)
from repro.sim.analytic import simulate_analytic

#: Figure 1's five headline passes, in the paper's legend order.
FIGURE1_PASSES: tuple[str, ...] = (
    "freorder_blocks",
    "funroll_loops",
    "finline_functions",
    "fschedule_insns",
    "fgcse",
)

FIGURE1_PROGRAMS: tuple[str, ...] = ("rijndael_e", "untoast", "madplay")

_CROSSVAL_CACHE: dict[str, CrossValResult] = {}


def run_crossval(data: ExperimentData) -> CrossValResult:
    """Leave-one-out CV for a dataset, memoised per scale."""
    key = data.scale.fingerprint()
    if key not in _CROSSVAL_CACHE:
        predictor = OptimisationPredictor(extended=data.scale.extended)
        _CROSSVAL_CACHE[key] = leave_one_out(
            data.training, data.programs, compiler=data.compiler, predictor=predictor
        )
    return _CROSSVAL_CACHE[key]


def seed_crossval_cache(data: ExperimentData, result: CrossValResult) -> None:
    """Install a protocol-pipeline result as the memoised CV for a scale.

    The pipeline's checkpointed base variant is the same computation as
    :func:`run_crossval` (identical fold function, identical oracle), so
    seeding lets every figure and table consume the resumable pipeline's
    output instead of recomputing the sweep in-process.
    """
    _CROSSVAL_CACHE[data.scale.fingerprint()] = result


def _crossval(data: ExperimentData, crossval: CrossValResult | None):
    return crossval if crossval is not None else run_crossval(data)


def _bar(value: float, scale: float, width: int = 10) -> str:
    filled = 0 if scale <= 0 else int(round(width * min(value / scale, 1.0)))
    return "#" * filled + "." * (width - filled)


# --------------------------------------------------------------------- fig 1
@dataclass
class Figure1Result:
    """Best-pass segment diagram for 3 programs × 3 microarchitectures."""

    machines: list[MicroArch]
    machine_labels: list[str]
    programs: list[str]
    #: segments[(program, machine_label)][pass_name] -> enabled?
    segments: dict[tuple[str, str], dict[str, bool]]

    def render(self) -> str:
        lines = ["Figure 1: best passes per program/microarchitecture"]
        header = f"{'pair':28s} " + " ".join(
            f"{name[:12]:>12s}" for name in FIGURE1_PASSES
        )
        lines.append(header)
        for (program, label), passes in self.segments.items():
            cells = " ".join(
                f"{'ON' if passes[name] else '--':>12s}" for name in FIGURE1_PASSES
            )
            lines.append(f"{program + ' @ ' + label:28s} {cells}")
        return "\n".join(lines)


def figure1(data: ExperimentData) -> Figure1Result:
    """Best-of-sample pass choices on the three illustrative machines."""
    machines = [xscale(), xscale_small_icache(), xscale_small_both_caches()]
    labels = ["A:XScale", "B:small-I$", "C:small-I$+D$"]
    by_name = {program.name: program for program in data.programs}
    segments: dict[tuple[str, str], dict[str, bool]] = {}
    for name in FIGURE1_PROGRAMS:
        program = by_name.get(name)
        if program is None:
            continue
        for machine, label in zip(machines, labels):
            best_setting, _ = _best_on_machine(data, program, machine)
            segments[(name, label)] = {
                pass_name: bool(best_setting.enabled(pass_name))
                for pass_name in FIGURE1_PASSES
            }
    return Figure1Result(
        machines=machines,
        machine_labels=labels,
        programs=list(FIGURE1_PROGRAMS),
        segments=segments,
    )


def _best_on_machine(
    data: ExperimentData, program, machine: MicroArch
) -> tuple[FlagSetting, float]:
    best_setting = None
    best_runtime = float("inf")
    for setting in data.training.settings:
        binary = data.compiler.compile(program, setting)
        runtime = simulate_analytic(binary, machine).seconds
        if runtime < best_runtime:
            best_runtime = runtime
            best_setting = setting
    return best_setting, best_runtime


# --------------------------------------------------------------------- fig 4
@dataclass
class Figure4Result:
    """Distribution of the maximum speedup per program (box plot data)."""

    programs: list[str]
    minimum: np.ndarray
    q25: np.ndarray
    median: np.ndarray
    q75: np.ndarray
    maximum: np.ndarray
    mean: np.ndarray

    @property
    def overall_mean(self) -> float:
        """The paper's right-most AVERAGE entry (1.23x in the paper)."""
        return float(self.mean.mean())

    def rows(self) -> list[tuple]:
        return [
            (
                name,
                float(self.minimum[index]),
                float(self.q25[index]),
                float(self.median[index]),
                float(self.q75[index]),
                float(self.maximum[index]),
                float(self.mean[index]),
            )
            for index, name in enumerate(self.programs)
        ]

    def render(self) -> str:
        lines = [
            "Figure 4: max speedup available per program across microarchitectures",
            f"{'program':12s} {'min':>5s} {'q25':>5s} {'med':>5s} {'q75':>5s} "
            f"{'max':>5s} {'mean':>5s}",
        ]
        for name, mn, q25, med, q75, mx, mean in self.rows():
            lines.append(
                f"{name:12s} {mn:5.2f} {q25:5.2f} {med:5.2f} {q75:5.2f} "
                f"{mx:5.2f} {mean:5.2f}  {_bar(mean - 1.0, 1.0)}"
            )
        lines.append(f"{'AVERAGE':12s} {'':23s} mean {self.overall_mean:5.2f}")
        return "\n".join(lines)


def figure4(data: ExperimentData) -> Figure4Result:
    speedups = data.training.speedups()  # [P, S, M]
    best = speedups.max(axis=1)  # [P, M]
    return Figure4Result(
        programs=list(data.training.program_names),
        minimum=best.min(axis=1),
        q25=np.quantile(best, 0.25, axis=1),
        median=np.median(best, axis=1),
        q75=np.quantile(best, 0.75, axis=1),
        maximum=best.max(axis=1),
        mean=best.mean(axis=1),
    )


# --------------------------------------------------------------------- fig 5
@dataclass
class Figure5Result:
    """Best vs predicted speedup surfaces over the joint space."""

    programs: list[str]
    machines: list[MicroArch]
    best: np.ndarray  # [P, M]
    predicted: np.ndarray  # [P, M]

    @property
    def correlation(self) -> float:
        """Pearson correlation over the joint space (paper: 0.93)."""
        flat_best = self.best.ravel()
        flat_pred = self.predicted.ravel()
        if flat_best.std() < 1e-12 or flat_pred.std() < 1e-12:
            return 1.0
        return float(np.corrcoef(flat_best, flat_pred)[0, 1])

    @property
    def peak_best(self) -> float:
        return float(self.best.max())

    @property
    def peak_predicted(self) -> float:
        return float(self.predicted.max())

    def render(self) -> str:
        lines = [
            "Figure 5: best (a) vs predicted (b) speedup per pair",
            f"correlation over joint space: {self.correlation:.3f}",
            f"peak best {self.peak_best:.2f}x; peak predicted "
            f"{self.peak_predicted:.2f}x",
            f"{'program':12s} {'best-mean':>9s} {'pred-mean':>9s}",
        ]
        for index, name in enumerate(self.programs):
            lines.append(
                f"{name:12s} {self.best[index].mean():9.3f} "
                f"{self.predicted[index].mean():9.3f}"
            )
        return "\n".join(lines)


def figure5(
    data: ExperimentData, crossval: CrossValResult | None = None
) -> Figure5Result:
    result = _crossval(data, crossval)
    P = len(data.training.program_names)
    M = len(data.training.machines)
    best = np.empty((P, M))
    predicted = np.empty((P, M))
    index = {
        (name, machine): (p, m)
        for p, name in enumerate(data.training.program_names)
        for m, machine in enumerate(data.training.machines)
    }
    for outcome in result.outcomes:
        p, m = index[(outcome.program, outcome.machine)]
        best[p, m] = outcome.best_speedup
        predicted[p, m] = outcome.speedup
    return Figure5Result(
        programs=list(data.training.program_names),
        machines=list(data.training.machines),
        best=best,
        predicted=predicted,
    )


# --------------------------------------------------------------------- fig 6
@dataclass
class Figure6Result:
    """Per-program model vs best speedup, averaged over machines."""

    programs: list[str]
    model: np.ndarray
    best: np.ndarray

    @property
    def mean_model(self) -> float:
        """Paper: 1.16x."""
        return float(self.model.mean())

    @property
    def mean_best(self) -> float:
        """Paper: 1.23x."""
        return float(self.best.mean())

    def rows(self) -> list[tuple[str, float, float]]:
        return [
            (name, float(self.model[index]), float(self.best[index]))
            for index, name in enumerate(self.programs)
        ]

    def render(self) -> str:
        lines = [
            "Figure 6: per-program speedup over -O3 (mean across microarchs)",
            f"{'program':12s} {'model':>6s} {'best':>6s}",
        ]
        for name, model, best in self.rows():
            lines.append(
                f"{name:12s} {model:6.3f} {best:6.3f}  {_bar(model - 1.0, 1.0)}"
            )
        lines.append(
            f"{'AVERAGE':12s} {self.mean_model:6.3f} {self.mean_best:6.3f}"
        )
        return "\n".join(lines)


def figure6(
    data: ExperimentData, crossval: CrossValResult | None = None
) -> Figure6Result:
    result = _crossval(data, crossval)
    by_program = result.by_program()
    programs = list(data.training.program_names)
    model = np.array(
        [
            np.mean([outcome.speedup for outcome in by_program[name]])
            for name in programs
        ]
    )
    best = np.array(
        [
            np.mean([outcome.best_speedup for outcome in by_program[name]])
            for name in programs
        ]
    )
    return Figure6Result(programs=programs, model=model, best=best)


# --------------------------------------------------------------------- fig 7
@dataclass
class Figure7Result:
    """Per-microarchitecture model vs best speedup, sorted by best."""

    machines: list[MicroArch]
    model: np.ndarray  # sorted by best
    best: np.ndarray

    @property
    def model_range(self) -> tuple[float, float]:
        """Paper: 1.08x to 1.35x."""
        return float(self.model.min()), float(self.model.max())

    @property
    def mean_model(self) -> float:
        return float(self.model.mean())

    def regions(self) -> dict[str, tuple[float, float]]:
        """Mean (model, best) of the low/middle/high thirds of the order —
        the paper's three-region reading of the figure."""
        count = len(self.machines)
        lo, hi = count // 3, (2 * count) // 3
        return {
            "low-headroom": (
                float(self.model[:lo].mean()) if lo else float("nan"),
                float(self.best[:lo].mean()) if lo else float("nan"),
            ),
            "middle": (
                float(self.model[lo:hi].mean()),
                float(self.best[lo:hi].mean()),
            ),
            "high-headroom": (float(self.model[hi:].mean()), float(self.best[hi:].mean())),
        }

    def render(self) -> str:
        low, high = self.model_range
        lines = [
            "Figure 7: per-microarchitecture speedup (sorted by best available)",
            f"model range {low:.2f}x..{high:.2f}x, mean {self.mean_model:.3f}",
        ]
        for label, (model, best) in self.regions().items():
            lines.append(f"  {label:14s} model {model:5.2f}  best {best:5.2f}")
        lines.append(f"{'machine':42s} {'model':>6s} {'best':>6s}")
        for index, machine in enumerate(self.machines):
            lines.append(
                f"{machine.label():42s} {self.model[index]:6.3f} "
                f"{self.best[index]:6.3f}"
            )
        return "\n".join(lines)


def figure7(
    data: ExperimentData, crossval: CrossValResult | None = None
) -> Figure7Result:
    result = _crossval(data, crossval)
    by_machine = result.by_machine()
    machines = list(data.training.machines)
    model = np.array(
        [
            np.mean([outcome.speedup for outcome in by_machine[machine]])
            for machine in machines
        ]
    )
    best = np.array(
        [
            np.mean([outcome.best_speedup for outcome in by_machine[machine]])
            for machine in machines
        ]
    )
    order = np.argsort(best, kind="stable")
    return Figure7Result(
        machines=[machines[int(i)] for i in order],
        model=model[order],
        best=best[order],
    )


# ----------------------------------------------------------------- fig 8 / 9
@dataclass
class HintonResult:
    """A Hinton diagram: |MI| matrix with row/column labels."""

    title: str
    rows: list[str]
    columns: list[str]
    matrix: np.ndarray  # [row, column]

    SHADES = " .:-=+*#%@"

    def render(self) -> str:
        peak = float(self.matrix.max()) or 1.0
        lines = [self.title]
        width = max(len(row) for row in self.rows) + 1
        for r, row_name in enumerate(self.rows):
            cells = "".join(
                self.SHADES[
                    min(
                        int(self.matrix[r, c] / peak * (len(self.SHADES) - 1)),
                        len(self.SHADES) - 1,
                    )
                ]
                for c in range(len(self.columns))
            )
            lines.append(f"{row_name:>{width}s} {cells}")
        lines.append(f"{'':>{width}s} columns: {', '.join(self.columns)}")
        return "\n".join(lines)

    def top_cells(self, count: int = 10) -> list[tuple[str, str, float]]:
        flat = [
            (self.rows[r], self.columns[c], float(self.matrix[r, c]))
            for r in range(len(self.rows))
            for c in range(len(self.columns))
        ]
        flat.sort(key=lambda item: -item[2])
        return flat[:count]


def figure8(data: ExperimentData) -> HintonResult:
    """MI between each optimisation and the speedups, per program."""
    matrix = flag_speedup_mi(data.training)
    return HintonResult(
        title="Figure 8: MI(optimisation; speedup) per program",
        rows=hinton_rows(data.training),
        columns=list(data.training.program_names),
        matrix=matrix,
    )


def figure9(data: ExperimentData) -> HintonResult:
    """MI between each feature and each optimisation's best value."""
    matrix = feature_best_flag_mi(data.training)
    return HintonResult(
        title="Figure 9: MI(feature; best optimisation value)",
        rows=hinton_rows(data.training),
        columns=hinton_feature_columns(data.training),
        matrix=matrix,
    )


# -------------------------------------------------------------------- fig 10
@dataclass
class Figure10Result:
    """Figure 6 re-run on the extended (frequency × width) space."""

    base: Figure6Result
    extended: Figure6Result

    def render(self) -> str:
        lines = [
            "Figure 10: extended microarchitecture space (§7)",
            f"base space:     model {self.base.mean_model:.3f}  "
            f"best {self.base.mean_best:.3f}",
            f"extended space: model {self.extended.mean_model:.3f}  "
            f"best {self.extended.mean_best:.3f}",
            "",
            self.extended.render(),
        ]
        return "\n".join(lines)


def figure10(data: ExperimentData) -> Figure10Result:
    """Build the extended-space dataset at the same scale and compare."""
    extended_data = load_or_build(data.scale.with_extended())
    return Figure10Result(
        base=figure6(data),
        extended=figure6(extended_data),
    )


# ------------------------------------------------------------------- helpers
@dataclass
class FlagSpaceSummary:
    """Figure 3's optimisation-space accounting."""

    dimensions: int = field(default=0)
    booleans: int = 0
    raw_boolean_size: int = 0
    raw_size: int = 0
    distinct_boolean_size: int = 0
    distinct_size: int = 0

    def render(self) -> str:
        return "\n".join(
            [
                "Figure 3: the optimisation space",
                f"dimensions: {self.dimensions} ({self.booleans} boolean)",
                f"on/off combinations: {self.raw_boolean_size:.3e} raw, "
                f"{self.distinct_boolean_size:.3e} behaviourally distinct "
                f"(paper: 6.42e8)",
                f"full space: {self.raw_size:.3e} raw, "
                f"{self.distinct_size:.3e} distinct (paper: 1.69e17)",
            ]
        )


def figure3() -> FlagSpaceSummary:
    space = DEFAULT_SPACE
    return FlagSpaceSummary(
        dimensions=len(space),
        booleans=sum(1 for spec in space.specs if spec.is_boolean),
        raw_boolean_size=space.raw_boolean_size(),
        raw_size=space.raw_size(),
        distinct_boolean_size=space.distinct_size(booleans_only=True),
        distinct_size=space.distinct_size(),
    )
