"""Ablations of the model's design choices (DESIGN.md §5).

The paper fixes K = 7, β = 1, a top-5 % good-set, the (c, d) feature pair
and a *factorised* (IID) distribution, asserting insensitivity or arguing
simplicity.  Each ablation here re-runs leave-one-out cross-validation with
one choice varied, so those assertions are measured rather than assumed:

* :func:`knn_k_sweep` — neighbourhood size (paper: "not sensitive");
* :func:`quantile_sweep` — the "good settings" threshold;
* :func:`feature_mode_sweep` — counters only vs descriptors only vs both
  (the §5.3 crc analysis predicts counters alone are not enough);
* :func:`iid_vs_joint` — the paper's IID mode against a dependence-aware
  variant that votes over *concrete* good settings of the K neighbours,
  preserving inter-flag correlations the factorisation discards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.flags import FlagSetting
from repro.core.crossval import CrossValResult, leave_one_out
from repro.core.features import FeatureNormaliser, feature_vector
from repro.core.predictor import (
    DEFAULT_BETA,
    DEFAULT_K,
    DEFAULT_QUANTILE,
    OptimisationPredictor,
)
from repro.core.training import TrainingSet
from repro.experiments.dataset import ExperimentData
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters


@dataclass
class AblationRow:
    label: str
    mean_speedup: float
    fraction_of_best: float
    correlation: float


@dataclass
class AblationResult:
    title: str
    rows: list[AblationRow]

    def render(self) -> str:
        lines = [
            self.title,
            f"{'variant':22s} {'mean speedup':>12s} {'frac of best':>12s} "
            f"{'correlation':>11s}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.label:22s} {row.mean_speedup:12.3f} "
                f"{row.fraction_of_best:12.2%} {row.correlation:11.3f}"
            )
        return "\n".join(lines)


def _shared_oracle(data: ExperimentData):
    """One runtime oracle per sweep: every row reads grid settings from
    the store-assembled matrix and shares one memoised fallback, so
    varying a hyper-parameter never re-simulates a setting another row
    (or variant) already priced.  Imported lazily — :mod:`repro.evalrun`
    renders *these* sweeps, so a module-level import would be a cycle.
    """
    from repro.evalrun.oracle import RuntimeOracle

    return RuntimeOracle(data.training, data.programs, compiler=data.compiler)


def _evaluate(data: ExperimentData, predictor, oracle=None) -> AblationRow:
    result = leave_one_out(
        data.training,
        data.programs,
        compiler=data.compiler,
        predictor=predictor,
        oracle=oracle,
    )
    return AblationRow(
        label="",
        mean_speedup=result.mean_speedup(),
        fraction_of_best=result.fraction_of_best(),
        correlation=result.correlation_with_best(),
    )


def knn_k_sweep(
    data: ExperimentData, ks: tuple[int, ...] = (1, 3, 5, 7, 11, 15)
) -> AblationResult:
    """§3.3.2 claims the technique is not sensitive to K around 7."""
    oracle = _shared_oracle(data)
    rows = []
    for k in ks:
        row = _evaluate(
            data,
            OptimisationPredictor(k=k, extended=data.scale.extended),
            oracle=oracle,
        )
        row.label = f"K = {k}" + ("  (paper)" if k == DEFAULT_K else "")
        rows.append(row)
    return AblationResult(title="Ablation: KNN neighbourhood size", rows=rows)


def beta_sweep(
    data: ExperimentData, betas: tuple[float, ...] = (0.25, 1.0, 4.0, 16.0)
) -> AblationResult:
    """§3.3.2 sets β = 1 in the softmax weighting (eq. 6); large β collapses
    the mixture onto the single nearest pair, small β flattens it towards a
    plain K-average."""
    oracle = _shared_oracle(data)
    rows = []
    for beta in betas:
        row = _evaluate(
            data,
            OptimisationPredictor(beta=beta, extended=data.scale.extended),
            oracle=oracle,
        )
        row.label = f"beta = {beta:g}" + (
            "  (paper)" if beta == DEFAULT_BETA else ""
        )
        rows.append(row)
    return AblationResult(title="Ablation: softmax sharpness beta", rows=rows)


def quantile_sweep(
    data: ExperimentData,
    quantiles: tuple[float, ...] = (0.01, 0.05, 0.10, 0.25),
) -> AblationResult:
    """Footnote 1's top-5 % definition of the good set."""
    oracle = _shared_oracle(data)
    rows = []
    for quantile in quantiles:
        row = _evaluate(
            data,
            OptimisationPredictor(quantile=quantile, extended=data.scale.extended),
            oracle=oracle,
        )
        row.label = f"top {quantile:.0%}" + (
            "  (paper)" if quantile == DEFAULT_QUANTILE else ""
        )
        rows.append(row)
    return AblationResult(title="Ablation: good-settings quantile", rows=rows)


def feature_mode_sweep(data: ExperimentData) -> AblationResult:
    """x = (c, d) against counters-only, descriptors-only, and the §9
    extension adding static code features (the crc fix)."""
    modes = ["both", "counters", "descriptors"]
    if data.training.code_features is not None:
        modes.append("with_code")
    oracle = _shared_oracle(data)
    rows = []
    for mode in modes:
        row = _evaluate(
            data,
            OptimisationPredictor(feature_mode=mode, extended=data.scale.extended),
            oracle=oracle,
        )
        suffix = "  (paper)" if mode == "both" else ""
        suffix = "  (§9 extension)" if mode == "with_code" else suffix
        row.label = mode + suffix
        rows.append(row)
    return AblationResult(title="Ablation: feature sources", rows=rows)


class JointVotePredictor:
    """Dependence-aware alternative to the factorised IID mode.

    Prediction collects the *concrete* good settings of the K nearest
    training pairs and returns the one with the highest total neighbour
    weight — a mode over observed joint settings, so inter-flag
    correlations are preserved at the cost of never synthesising an unseen
    combination (which the IID mode does).
    """

    def __init__(
        self,
        k: int = DEFAULT_K,
        beta: float = DEFAULT_BETA,
        quantile: float = DEFAULT_QUANTILE,
        extended: bool = False,
    ):
        self.k = k
        self.beta = beta
        self.quantile = quantile
        self.extended = extended
        self._features: np.ndarray | None = None
        self._pairs: list[tuple[str, MicroArch, list[FlagSetting]]] = []
        self._normaliser: FeatureNormaliser | None = None

    @property
    def is_fitted(self) -> bool:
        return self._features is not None

    def fit(self, training: TrainingSet) -> "JointVotePredictor":
        self.extended = training.extended
        raw = []
        self._pairs = []
        for p, name in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                counters = PerfCounters(*training.counters[p, m, :])
                raw.append(feature_vector(counters, machine, self.extended))
                self._pairs.append(
                    (name, machine, training.good_settings(p, m, self.quantile))
                )
        matrix = np.array(raw)
        self._normaliser = FeatureNormaliser.fit(matrix)
        self._features = self._normaliser.transform(matrix)
        return self

    def predict(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> FlagSetting:
        del code_features  # the joint-vote variant uses (c, d) only
        query = self._normaliser.transform_one(
            feature_vector(counters, machine, self.extended)
        )
        keep = [
            index
            for index, (name, mach, _) in enumerate(self._pairs)
            if (exclude_program is None or name != exclude_program)
            and (exclude_machine is None or mach != exclude_machine)
        ]
        distances = np.linalg.norm(self._features[keep] - query, axis=1)
        order = np.argsort(distances, kind="stable")[: self.k]
        logits = -self.beta * (distances[order] - distances[order].min())
        weights = np.exp(logits)
        weights /= weights.sum()

        votes: dict[FlagSetting, float] = {}
        for weight, position in zip(weights, order):
            _, _, good = self._pairs[keep[int(position)]]
            for setting in good:
                votes[setting] = votes.get(setting, 0.0) + weight / len(good)
        # Deterministic tie-break via the settings' index encoding.
        return max(votes.items(), key=lambda item: (item[1], item[0].as_indices()))[0]


def iid_vs_joint(data: ExperimentData) -> AblationResult:
    """The paper's factorised model vs the joint-vote variant."""
    oracle = _shared_oracle(data)
    iid_row = _evaluate(
        data, OptimisationPredictor(extended=data.scale.extended), oracle=oracle
    )
    iid_row.label = "IID mode  (paper)"
    joint_row = _evaluate(
        data, JointVotePredictor(extended=data.scale.extended), oracle=oracle
    )
    joint_row.label = "joint vote"
    return AblationResult(
        title="Ablation: factorised (IID) vs dependence-aware prediction",
        rows=[iid_row, joint_row],
    )
