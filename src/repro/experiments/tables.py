"""Reproduction of the paper's tables and headline claims.

* Table 1 — the 11 performance counters (definition + a sample -O3 run);
* Table 2 — the microarchitecture space (exactly 288,000 configurations);
* the §1/§5 headline numbers: mean speedup (1.16x), fraction of the
  iterative-compilation gain (67 %), best case (4.3x), correlation (0.93);
* the §4.4 wrong-passes numbers: 0.7x average, 0.2x worst case;
* the §5.3 claim: ≈50 random-search evaluations to match the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.flags import o3_setting
from repro.core.crossval import CrossValResult
from repro.experiments.dataset import ExperimentData
from repro.experiments.figures import _crossval
from repro.machine.params import BASE_GRID, EXTENDED_GRID, MicroArchSpace
from repro.machine.xscale import xscale
from repro.sim.analytic import simulate_analytic
from repro.sim.counters import COUNTER_NAMES


# ------------------------------------------------------------------- table 1
@dataclass
class Table1Result:
    """Counter names plus a sample reading from an XScale -O3 run."""

    counters: list[str]
    sample_program: str
    sample_values: dict[str, float]

    def render(self) -> str:
        lines = [
            "Table 1: performance counters "
            f"(sample: {self.sample_program} at -O3 on XScale)",
        ]
        for name in self.counters:
            lines.append(f"  {name:18s} {self.sample_values[name]:10.4f}")
        return "\n".join(lines)


def table1(data: ExperimentData) -> Table1Result:
    program = data.programs[0]
    binary = data.compiler.compile(program, o3_setting())
    result = simulate_analytic(binary, xscale())
    values = dict(zip(COUNTER_NAMES, result.counters.vector()))
    return Table1Result(
        counters=list(COUNTER_NAMES),
        sample_program=program.name,
        sample_values=values,
    )


# ------------------------------------------------------------------- table 2
@dataclass
class Table2Result:
    """The microarchitecture design space."""

    parameters: dict[str, tuple[int, ...]]
    base_size: int
    extended_size: int
    xscale: dict[str, int]

    def render(self) -> str:
        lines = ["Table 2: microarchitectural parameters"]
        for name, values in self.parameters.items():
            lines.append(
                f"  {name:14s} {values[0]}..{values[-1]} "
                f"({len(values)} values), XScale={self.xscale[name]}"
            )
        lines.append(
            f"  base space: {self.base_size:,} configurations (paper: 288,000)"
        )
        lines.append(f"  extended space (§7): {self.extended_size:,}")
        return "\n".join(lines)


def table2() -> Table2Result:
    reference = xscale()
    parameters = dict(BASE_GRID)
    xscale_values = {name: getattr(reference, name) for name in BASE_GRID}
    for name in EXTENDED_GRID:
        xscale_values[name] = getattr(reference, name)
    return Table2Result(
        parameters=parameters,
        base_size=MicroArchSpace().size(),
        extended_size=MicroArchSpace(extended=True).size(),
        xscale=xscale_values,
    )


# ------------------------------------------------------------------ headline
@dataclass
class HeadlineResult:
    """The paper's abstract/§5 numbers, measured on this reproduction."""

    mean_model_speedup: float  # paper: 1.16
    mean_best_speedup: float  # paper: 1.23
    fraction_of_best: float  # paper: 0.67
    correlation: float  # paper: 0.93
    best_case_model: float  # paper: 4.3
    best_case_available: float  # paper: 4.85
    worst_setting_mean: float  # paper: ~0.7
    worst_setting_min: float  # paper: ~0.2

    def render(self) -> str:
        return "\n".join(
            [
                "Headline numbers (paper values in parentheses)",
                f"  mean model speedup over -O3: {self.mean_model_speedup:.3f} (1.16)",
                f"  mean best speedup over -O3:  {self.mean_best_speedup:.3f} (1.23)",
                f"  fraction of best achieved:   {self.fraction_of_best:.2%} (67%)",
                f"  model/best correlation:      {self.correlation:.3f} (0.93)",
                f"  best-case model speedup:     {self.best_case_model:.2f}x (4.3x)",
                f"  best-case available:         {self.best_case_available:.2f}x (4.85x)",
                f"  wrong-passes mean speedup:   {self.worst_setting_mean:.2f}x (~0.7x)",
                f"  wrong-passes worst case:     {self.worst_setting_min:.2f}x (~0.2x)",
            ]
        )


def headline(
    data: ExperimentData, crossval: CrossValResult | None = None
) -> HeadlineResult:
    result = _crossval(data, crossval)
    speedups = data.training.speedups()  # [P, S, M]
    worst = speedups.min(axis=1)  # worst setting per pair
    return HeadlineResult(
        mean_model_speedup=result.mean_speedup(),
        mean_best_speedup=result.mean_best_speedup(),
        fraction_of_best=result.fraction_of_best(),
        correlation=result.correlation_with_best(),
        best_case_model=max(outcome.speedup for outcome in result.outcomes),
        best_case_available=max(
            outcome.best_speedup for outcome in result.outcomes
        ),
        worst_setting_mean=float(worst.mean()),
        worst_setting_min=float(worst.min()),
    )


# ------------------------------------------------------- iterations to match
@dataclass
class IterationsToMatchResult:
    """§5.3: random iterative compilation evaluations needed to reach the
    model's single-profile-run performance."""

    programs: list[str]
    mean_evaluations: np.ndarray  # per program (capped at budget)
    unmatched_fraction: np.ndarray  # pairs where the budget never matched
    budget: int

    @property
    def overall_mean(self) -> float:
        """Paper: ≈50 on average."""
        return float(self.mean_evaluations.mean())

    def render(self) -> str:
        lines = [
            "Iterations to match the model (random iterative compilation)",
            f"{'program':12s} {'mean evals':>10s} {'unmatched':>10s}",
        ]
        for index, name in enumerate(self.programs):
            lines.append(
                f"{name:12s} {self.mean_evaluations[index]:10.1f} "
                f"{self.unmatched_fraction[index]:10.2%}"
            )
        lines.append(
            f"{'AVERAGE':12s} {self.overall_mean:10.1f}   (paper: ~50, budget "
            f"{self.budget})"
        )
        return "\n".join(lines)


def iterations_to_match(
    data: ExperimentData, crossval: CrossValResult | None = None
) -> IterationsToMatchResult:
    """Replay the training matrix as a random-search trajectory per pair.

    The training settings are i.i.d. uniform draws, so the running minimum
    over their given order *is* a random search; the first index at which
    it reaches the model's runtime is the §5.3 statistic.
    """
    result = _crossval(data, crossval)
    runtimes = data.training.runtimes  # [P, S, M]
    trajectory = np.minimum.accumulate(runtimes, axis=1)
    budget = runtimes.shape[1]

    model_runtime = {
        (outcome.program, outcome.machine): outcome.predicted_runtime
        for outcome in result.outcomes
    }
    programs = list(data.training.program_names)
    mean_evaluations = np.zeros(len(programs))
    unmatched = np.zeros(len(programs))
    for p, name in enumerate(programs):
        evaluations = []
        misses = 0
        for m, machine in enumerate(data.training.machines):
            target = model_runtime[(name, machine)]
            reached = np.nonzero(trajectory[p, :, m] <= target)[0]
            if len(reached) > 0:
                evaluations.append(int(reached[0]) + 1)
            else:
                evaluations.append(budget)
                misses += 1
        mean_evaluations[p] = float(np.mean(evaluations))
        unmatched[p] = misses / len(data.training.machines)
    return IterationsToMatchResult(
        programs=programs,
        mean_evaluations=mean_evaluations,
        unmatched_fraction=unmatched,
        budget=budget,
    )
