"""Shared durable-IO helpers for every store in the reproduction.

One module owns the write discipline the stores rely on — writer-unique
temp siblings, atomic rename, fsynced appends, ``O_EXCL`` claims — so
the :class:`~repro.store.store.ExperimentStore`,
:class:`~repro.evalrun.foldstore.FoldStore`,
:class:`~repro.api.registry.ModelRegistry`, the service job journal, and
the cluster lease table all share one implementation instead of five
copies.  Routing every durable write through here buys two things:

* **Fault injection.**  Each helper takes an optional failpoint
  ``site`` name (see :mod:`repro.faults`); an armed site can tear the
  write mid-payload, raise ``OSError(ENOSPC)``, or kill the process at
  exactly that seam.  Unarmed, the check is a single module-global
  boolean — the failpoints stay compiled in at ~zero cost.
* **Transient tolerance.**  :func:`with_retries` wraps flaky OS calls
  (NFS hiccups, spurious ENOSPC) in a bounded, deterministically
  jittered backoff.  Semantically meaningful errors —
  ``FileExistsError`` from an ``O_EXCL`` claim race,
  ``FileNotFoundError`` from a reclaimed lease — are never retried, and
  :class:`~repro.faults.FaultInjected` (a simulated crash, not an
  ``OSError``) always propagates.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, TypeVar

from repro.faults import core as faults
from repro.faults.core import FaultInjected, Injection

T = TypeVar("T")

#: OSError subclasses that carry meaning (a lost race, a reclaimed
#: lease, a path that is simply not there) — retrying them would turn a
#: correct negative answer into a hang.
NON_TRANSIENT_OSERRORS = (
    FileExistsError,
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def is_transient(error: OSError) -> bool:
    """Whether an OSError is worth retrying."""
    return not isinstance(error, NON_TRANSIENT_OSERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic, per-call-site jittered backoff.

    The jitter is seeded from the ``seed_key`` (usually the target
    path), so two workers hammering different shards back off on
    different schedules while a given call site stays reproducible.
    """

    attempts: int = 3
    base_delay: float = 0.02
    factor: float = 4.0
    max_delay: float = 1.0

    def delays(self, seed_key: str = "") -> Iterator[float]:
        jitter = (zlib.crc32(seed_key.encode("utf-8")) % 1000) / 1000.0
        delay = self.base_delay
        for _ in range(max(0, self.attempts - 1)):
            yield min(self.max_delay, delay * (1.0 + 0.5 * jitter))
            delay *= self.factor


#: Default policy for checkpoint writes and lease traffic: three
#: attempts, ~20ms/80ms pauses — enough to ride out a transient NFS or
#: allocator hiccup without stalling a drain.
DEFAULT_RETRY = RetryPolicy()


def with_retries(
    operation: Callable[[], T],
    *,
    policy: RetryPolicy = DEFAULT_RETRY,
    seed_key: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``operation``, retrying transient :class:`OSError` failures.

    Non-transient OSErrors (:data:`NON_TRANSIENT_OSERRORS`) and every
    non-OSError exception — including a simulated-crash
    :class:`FaultInjected` — propagate immediately.
    """
    delays = policy.delays(seed_key)
    while True:
        try:
            return operation()
        except OSError as error:
            if not is_transient(error):
                raise
            pause = next(delays, None)
            if pause is None:
                raise
            sleep(pause)


# --------------------------------------------------------------- primitives
def tmp_sibling(path: Path) -> Path:
    """A writer-unique temp path next to ``path``.

    Uniqueness (pid + random) keeps concurrent writers of the same
    artifact from truncating each other's in-flight temp file; whoever
    renames last wins with identical bytes.
    """
    token = os.urandom(4).hex()
    return path.parent / f".{path.name}.{os.getpid()}.{token}.tmp"


def _fsync_file_and_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; file data is already down
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _inject_atomic(injection: Injection, path: Path, tmp: Path, data: bytes) -> None:
    """Leave the wreckage the injected failure implies, then fail.

    ``torn``   — a crash after a partial write that still got renamed
                 into place (or a torn page after a power cut): the
                 *final* path holds a truncated payload.
    ``enospc`` — the write ran out of space mid-payload: an orphaned,
                 truncated temp file is left behind and ``OSError``
                 propagates (retryable).
    ``crash``  — half-written temp file, then the process dies.
    ``error``  — a clean simulated kill before any bytes land.
    """
    truncated = data[: max(0, int(len(data) * injection.keep_fraction))]
    if injection.action == "torn":
        tmp.write_bytes(truncated)
        os.replace(tmp, path)
    elif injection.action in ("enospc", "crash"):
        tmp.write_bytes(truncated)
    injection.raise_now()


def atomic_write_bytes(
    path: Path,
    data: bytes,
    *,
    site: str | None = None,
    fsync: bool = False,
    retries: RetryPolicy | None = None,
) -> None:
    """Write ``data`` to ``path`` via temp sibling + atomic rename."""
    path = Path(path)

    def write_once() -> None:
        tmp = tmp_sibling(path)
        injection = faults.fire(site)
        if injection is not None:
            _inject_atomic(injection, path, tmp, data)
        tmp.write_bytes(data)
        if fsync:
            _fsync_file_and_dir(tmp)
        os.replace(tmp, path)

    if retries is None:
        write_once()
    else:
        with_retries(write_once, policy=retries, seed_key=str(path))


def atomic_write_text(
    path: Path,
    text: str,
    *,
    site: str | None = None,
    fsync: bool = False,
    retries: RetryPolicy | None = None,
) -> None:
    atomic_write_bytes(
        Path(path), text.encode("utf-8"), site=site, fsync=fsync, retries=retries
    )


def fsync_append(path: Path, data: bytes, *, site: str | None = None) -> None:
    """Append ``data`` to ``path`` and fsync before returning.

    The journal-append discipline: a record is only *recorded* once it
    is on disk.  A ``torn`` injection fsyncs a truncated prefix of the
    record (the classic torn tail a digest-chained replay must detect);
    ``enospc`` appends nothing.
    """
    injection = faults.fire(site)
    with open(path, "ab") as handle:
        if injection is not None:
            if injection.action in ("torn", "crash"):
                handle.write(data[: max(0, int(len(data) * injection.keep_fraction))])
                handle.flush()
                os.fsync(handle.fileno())
            injection.raise_now()
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def exclusive_create(path: Path, *, site: str | None = None) -> int:
    """``O_CREAT | O_EXCL`` claim; returns the open fd.

    ``FileExistsError`` (the claim race) propagates untouched — it is an
    answer, not a failure.  A ``torn`` injection leaves a zero-byte
    claim file behind (the crash-after-create case a status scan must
    survive) before raising.
    """
    injection = faults.fire(site)
    if injection is not None:
        if injection.action == "torn":
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        injection.raise_now()
    return os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)


def write_text_with_faults(path: Path, text: str, *, site: str | None = None) -> None:
    """A plain (non-atomic) guarded write, for writers that rename later.

    A ``torn`` injection persists a truncated payload at ``path`` itself
    before raising.
    """
    data = text.encode("utf-8")
    injection = faults.fire(site)
    if injection is not None:
        if injection.action in ("torn", "enospc", "crash"):
            Path(path).write_bytes(data[: max(0, int(len(data) * injection.keep_fraction))])
        injection.raise_now()
    Path(path).write_bytes(data)


def guarded_os_call(
    operation: Callable[[], T],
    *,
    site: str | None = None,
    seed_key: str = "",
    retries: RetryPolicy | None = DEFAULT_RETRY,
) -> T:
    """Run a small OS call (utime, unlink, …) under failpoints + retry.

    Injections fire on every attempt, so a ``once``-armed ENOSPC is
    absorbed by the retry loop — exactly the transient-tolerance path —
    while ``always``-armed faults exhaust the budget and surface.
    """

    def attempt() -> T:
        injection = faults.fire(site)
        if injection is not None:
            injection.raise_now()
        return operation()

    if retries is None:
        return attempt()
    return with_retries(attempt, policy=retries, seed_key=seed_key)


__all__ = [
    "DEFAULT_RETRY",
    "FaultInjected",
    "NON_TRANSIENT_OSERRORS",
    "RetryPolicy",
    "atomic_write_bytes",
    "atomic_write_text",
    "exclusive_create",
    "fsync_append",
    "guarded_os_call",
    "is_transient",
    "tmp_sibling",
    "with_retries",
    "write_text_with_faults",
]
