"""A dependency-free SVG renderer for the headline speedup figure.

Renders the report's headline artifact — per-program model vs best mean
speedup over -O3 (the data behind Figure 6) — as a paired-deviation bar
chart: bars grow away from the 1.0x (-O3) baseline, so a model slowdown
reads as a leftward bar instead of a truncated-axis illusion.

The output is a pure function of the protocol result: no timestamps, no
environment, floats formatted with fixed precision — so the SVG from a
killed-and-resumed protocol run is byte-identical to a single-shot one
and its fingerprint can be pinned by tests.

Colors are a validated two-slot categorical pair (blue for the model,
orange for the Best upper bound) on a light surface; series identity is
carried by the legend and direct value labels, never by color alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Validated palette (light surface): series colors pass CVD-separation,
# normal-vision, and 3:1 contrast checks against SURFACE.
SURFACE = "#fcfcfb"
MODEL_COLOR = "#2a78d6"
BEST_COLOR = "#eb6834"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3de"
BASELINE = "#a3a29b"

_MARGIN_LEFT = 118
_MARGIN_RIGHT = 64
_MARGIN_TOP = 84
_MARGIN_BOTTOM = 40
_PLOT_WIDTH = 520
_BAR_HEIGHT = 10
_BAR_GAP = 2  # surface gap between the paired bars
_ROW_HEIGHT = 2 * _BAR_HEIGHT + _BAR_GAP + 12


@dataclass(frozen=True)
class _Row:
    label: str
    model: float
    best: float


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic output)."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _axis_bounds(rows: list[_Row]) -> tuple[float, float]:
    """Tick-aligned bounds covering every bar and the 1.0 baseline."""
    values = [1.0]
    for row in rows:
        values.extend((row.model, row.best))
    step = 0.25
    low = math.floor(min(values) / step) * step
    high = math.ceil(max(values) / step) * step
    if high - 1.0 < step:
        high = 1.0 + step
    if 1.0 - low < 0.0:
        low = 1.0
    return low, high


def headline_svg(data, protocol) -> str:
    """The headline figure as a standalone SVG document (a ``str``).

    ``protocol`` must hold the ``base`` variant's folds (the same
    requirement as the markdown headline artifact).
    """
    import numpy as np

    if "base" not in protocol.results:
        raise ValueError(
            "the SVG headline figure needs the protocol's 'base' variant folds"
        )
    base = protocol.results["base"]
    by_program = base.by_program()
    rows = [
        _Row(
            label=name,
            model=float(np.mean([o.speedup for o in by_program[name]])),
            best=float(np.mean([o.best_speedup for o in by_program[name]])),
        )
        for name in data.training.program_names
    ]
    rows.append(
        _Row(label="AVERAGE", model=base.mean_speedup(), best=base.mean_best_speedup())
    )

    low, high = _axis_bounds(rows)
    span = high - low
    height = _MARGIN_TOP + len(rows) * _ROW_HEIGHT + _MARGIN_BOTTOM
    width = _MARGIN_LEFT + _PLOT_WIDTH + _MARGIN_RIGHT

    def x_of(value: float) -> float:
        return _MARGIN_LEFT + (value - low) / span * _PLOT_WIDTH

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{_MARGIN_LEFT}" y="28" font-size="15" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">Speedup over -O3: model prediction vs Best '
        "(iterative upper bound)</text>",
        f'<text x="{_MARGIN_LEFT}" y="46" font-size="11" '
        f'fill="{TEXT_SECONDARY}">mean over the machine space; '
        f"model {base.mean_speedup():.3f}x vs best {base.mean_best_speedup():.3f}x "
        f"({base.fraction_of_best():.1%} of the iterative gain, "
        f"correlation {base.correlation_with_best():.3f})</text>",
    ]

    # Legend: swatch + label per series (identity never color-alone — the
    # per-bar value labels restate which bar is which by position).
    legend_y = 58
    parts.append(
        f'<rect x="{_MARGIN_LEFT}" y="{legend_y}" width="10" height="10" '
        f'rx="2" fill="{MODEL_COLOR}"/>'
        f'<text x="{_MARGIN_LEFT + 14}" y="{legend_y + 9}" font-size="11" '
        f'fill="{TEXT_SECONDARY}">model (one profiling run)</text>'
    )
    legend_x2 = _MARGIN_LEFT + 190
    parts.append(
        f'<rect x="{legend_x2}" y="{legend_y}" width="10" height="10" '
        f'rx="2" fill="{BEST_COLOR}"/>'
        f'<text x="{legend_x2 + 14}" y="{legend_y + 9}" font-size="11" '
        f'fill="{TEXT_SECONDARY}">Best (iterative search)</text>'
    )

    # Gridlines + tick labels every 0.25x.
    plot_top = _MARGIN_TOP - 6
    plot_bottom = _MARGIN_TOP + len(rows) * _ROW_HEIGHT
    tick = low
    while tick <= high + 1e-9:
        x = x_of(tick)
        is_baseline = abs(tick - 1.0) < 1e-9
        color = BASELINE if is_baseline else GRID
        stroke_width = 1.5 if is_baseline else 1
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{plot_top}" x2="{_fmt(x)}" '
            f'y2="{plot_bottom}" stroke="{color}" stroke-width="{stroke_width}"/>'
        )
        label = f"{tick:.2f}x" + (" (-O3)" if is_baseline else "")
        parts.append(
            f'<text x="{_fmt(x)}" y="{plot_bottom + 16}" font-size="10" '
            f'text-anchor="middle" fill="{TEXT_SECONDARY}">{label}</text>'
        )
        tick += 0.25

    # Paired deviation bars, one row per program.
    x_base = x_of(1.0)
    for index, row in enumerate(rows):
        y = _MARGIN_TOP + index * _ROW_HEIGHT
        weight = "600" if row.label == "AVERAGE" else "400"
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + _BAR_HEIGHT + 4}" '
            f'font-size="11" text-anchor="end" font-weight="{weight}" '
            f'fill="{TEXT_PRIMARY}">{row.label}</text>'
        )
        for offset, (value, color) in enumerate(
            ((row.model, MODEL_COLOR), (row.best, BEST_COLOR))
        ):
            bar_y = y + offset * (_BAR_HEIGHT + _BAR_GAP)
            x_value = x_of(value)
            x0, x1 = sorted((x_base, x_value))
            bar_width = max(x1 - x0, 0.5)
            parts.append(
                f'<rect x="{_fmt(x0)}" y="{bar_y}" width="{_fmt(bar_width)}" '
                f'height="{_BAR_HEIGHT}" rx="2" fill="{color}"/>'
            )
            anchor = "start" if x_value >= x_base else "end"
            label_x = x_value + 4 if x_value >= x_base else x_value - 4
            parts.append(
                f'<text x="{_fmt(label_x)}" y="{bar_y + _BAR_HEIGHT - 1}" '
                f'font-size="10" text-anchor="{anchor}" '
                f'fill="{TEXT_SECONDARY}">{value:.3f}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts) + "\n"
