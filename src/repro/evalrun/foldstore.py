"""The fold-level result store: append-only, digest-verified, resumable.

Same shard design as :mod:`repro.store.store`, scaled down to protocol
folds: one JSON shard per (variant, held-out program) fold under::

    protocol-<scale>-<fingerprint>/
        manifest.json            # protocol identity: training fingerprint,
                                 # variants, programs, machine count
        folds/
            <variant>--<program>.json

Each shard carries its own content digest and the protocol fingerprint,
is written atomically (temp file + rename) and never rewritten, so a
killed protocol run resumes by skipping every fold whose digest checks
out — and a resumed run assembles to results bit-identical to a
single-shot run.  With ``root=None`` the store keeps folds in memory:
same API, nothing on disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, NamedTuple, Sequence

from repro.evalrun.variants import VariantSpec
from repro.ioutil import DEFAULT_RETRY, atomic_write_text

#: Manifest/shard schema version; bump on incompatible layout changes.
FOLD_FORMAT = 1


class FoldStoreError(RuntimeError):
    """A fold store is unusable: wrong protocol, version, or corrupt."""


class FoldKey(NamedTuple):
    """Grid coordinates of one fold: predictor variant × held-out program."""

    variant: str
    program: str

    def stem(self) -> str:
        return f"{self.variant}--{self.program}"


@dataclass(frozen=True)
class FoldRow:
    """One (held-out program, machine) leave-one-out outcome, value-level.

    The machine is stored by grid index — the manifest pins the machine
    list through the training fingerprint — and the predicted setting by
    its per-dimension value indices, so a row round-trips through JSON
    exactly.
    """

    machine: int
    setting: tuple[int, ...]
    predicted_runtime: float
    o3_runtime: float
    best_runtime: float

    def payload(self) -> dict:
        return {
            "machine": self.machine,
            "setting": list(self.setting),
            "predicted_runtime": self.predicted_runtime,
            "o3_runtime": self.o3_runtime,
            "best_runtime": self.best_runtime,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FoldRow":
        return cls(
            machine=int(payload["machine"]),
            setting=tuple(int(i) for i in payload["setting"]),
            predicted_runtime=float(payload["predicted_runtime"]),
            o3_runtime=float(payload["o3_runtime"]),
            best_runtime=float(payload["best_runtime"]),
        )


@dataclass(frozen=True)
class FoldRecord:
    """One completed fold: every machine's outcome for one (variant, program)."""

    key: FoldKey
    rows: tuple[FoldRow, ...]

    def payload(self) -> dict:
        return {
            "variant": self.key.variant,
            "program": self.key.program,
            "rows": [row.payload() for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FoldRecord":
        return cls(
            key=FoldKey(str(payload["variant"]), str(payload["program"])),
            rows=tuple(
                FoldRow.from_payload(row) for row in payload["rows"]
            ),
        )


def fold_fingerprint(record: FoldRecord) -> str:
    """Content digest of one fold (canonical JSON, bit-exact floats).

    JSON serialises floats as their shortest round-tripping repr, so two
    records with bit-identical values — and only those — share a digest.
    """
    canonical = json.dumps(
        record.payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class FoldStoreStatus:
    """Progress snapshot of one fold store."""

    root: str
    protocol_fingerprint: str
    total_folds: int
    completed_folds: int
    per_variant: dict[str, tuple[int, int]]  # variant -> (done, total)

    @property
    def complete(self) -> bool:
        return self.completed_folds == self.total_folds

    @property
    def fraction(self) -> float:
        if self.total_folds == 0:
            return 1.0
        return self.completed_folds / self.total_folds

    def render(self) -> str:
        lines = [
            f"protocol store {self.root}",
            f"  fingerprint {self.protocol_fingerprint}: "
            f"{self.completed_folds}/{self.total_folds} folds complete "
            f"({self.fraction:.0%})",
        ]
        pending = [
            f"{variant} {done}/{total}"
            for variant, (done, total) in self.per_variant.items()
            if done < total
        ]
        if pending:
            lines.append(f"  pending: {', '.join(pending)}")
        else:
            lines.append("  protocol complete — ready to render")
        return "\n".join(lines)


class FoldStore:
    """Checkpointed fold results for one protocol grid.

    Completed folds are never rewritten; concurrent writers of the same
    fold race benignly (identical bytes, atomic rename).  ``grid`` is the
    full fold axis — every (variant, program) pair of the protocol — and
    resumability is simply ``pending_keys`` = grid minus verified shards.
    """

    MANIFEST_NAME = "manifest.json"
    FOLD_DIR = "folds"

    def __init__(
        self,
        fingerprint: str,
        variants: Sequence[VariantSpec],
        programs: Sequence[str],
        root: str | Path | None = None,
        metadata: dict | None = None,
    ):
        self.protocol_fingerprint = fingerprint
        self.variants = list(variants)
        self.programs = list(programs)
        self.metadata = dict(metadata or {})
        self.root = Path(root) if root is not None else None
        self._memory: dict[FoldKey, FoldRecord] = {}
        self._known_complete: set[FoldKey] = set()
        #: Digests of verified shards; filled by the has_fold scan so
        #: fingerprint() never has to re-read shard files.
        self._known_digests: dict[FoldKey, str] = {}
        if self.root is not None:
            manifest = self._read_manifest()
            if manifest is None:
                self._write_manifest()
            elif manifest["protocol_fingerprint"] != fingerprint:
                raise FoldStoreError(
                    f"store at {self.root} holds a different protocol "
                    f"({manifest['protocol_fingerprint']} != {fingerprint})"
                )

    # ------------------------------------------------------------- manifest
    def _read_manifest(self) -> dict | None:
        path = self.root / self.MANIFEST_NAME
        if not path.exists():
            return None
        manifest = json.loads(path.read_text())
        if manifest.get("format") != FOLD_FORMAT:
            raise FoldStoreError(
                f"store at {self.root} uses format "
                f"{manifest.get('format')!r}, expected {FOLD_FORMAT}"
            )
        return manifest

    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / self.FOLD_DIR).mkdir(exist_ok=True)
        manifest = {
            "format": FOLD_FORMAT,
            "protocol_fingerprint": self.protocol_fingerprint,
            "variants": [variant.describe() for variant in self.variants],
            "programs": self.programs,
            "metadata": self.metadata,
        }
        atomic_write_text(
            self.root / self.MANIFEST_NAME,
            json.dumps(manifest, indent=1),
            site="fold.manifest",
            fsync=True,
        )

    # ----------------------------------------------------------------- grid
    def fold_keys(
        self, variants: Sequence[str] | None = None
    ) -> Iterator[FoldKey]:
        """Fold coordinates, variant-major in declaration order.

        ``variants`` restricts the walk to a subset of variant keys (the
        ``--only`` path, where unrequested ablations are never computed).
        """
        wanted = None if variants is None else set(variants)
        for variant in self.variants:
            if wanted is not None and variant.key not in wanted:
                continue
            for program in self.programs:
                yield FoldKey(variant.key, program)

    @property
    def n_folds(self) -> int:
        return len(self.variants) * len(self.programs)

    # --------------------------------------------------------------- shards
    def _fold_path(self, key: FoldKey) -> Path:
        return self.root / self.FOLD_DIR / f"{key.stem()}.json"

    def has_fold(self, key: FoldKey) -> bool:
        if self.root is None:
            return key in self._memory
        if key in self._known_complete:
            return True
        path = self._fold_path(key)
        if not path.exists():
            return False
        # Any unreadable, truncated, schema-malformed, or digest-broken
        # shard is simply pending: the fold recomputes rather than the
        # resume crashing on a half-written or foreign file.
        try:
            shard = json.loads(path.read_text())
            if shard.get("protocol_fingerprint") != self.protocol_fingerprint:
                return False
            record = FoldRecord.from_payload(shard["record"])
        except (
            OSError,
            json.JSONDecodeError,
            AttributeError,  # top-level JSON is not even an object
            KeyError,
            TypeError,
            ValueError,
        ):
            return False
        digest = fold_fingerprint(record)
        if digest != shard.get("fingerprint"):
            return False
        self._known_complete.add(key)
        self._known_digests[key] = digest
        return True

    def completed_keys(
        self, variants: Sequence[str] | None = None
    ) -> list[FoldKey]:
        return [key for key in self.fold_keys(variants) if self.has_fold(key)]

    def pending_keys(
        self, variants: Sequence[str] | None = None
    ) -> list[FoldKey]:
        return [
            key for key in self.fold_keys(variants) if not self.has_fold(key)
        ]

    def is_complete(self, variants: Sequence[str] | None = None) -> bool:
        return not self.pending_keys(variants)

    def write_fold(self, record: FoldRecord) -> None:
        """Checkpoint one computed fold (atomic; never rewrites)."""
        key = record.key
        if key not in set(self.fold_keys()):
            raise FoldStoreError(f"fold {key.stem()} not in this protocol grid")
        if self.has_fold(key):
            return  # append-only: first complete write wins
        if self.root is None:
            self._memory[key] = record
            return
        digest = fold_fingerprint(record)
        shard = {
            "format": FOLD_FORMAT,
            "protocol_fingerprint": self.protocol_fingerprint,
            "fingerprint": digest,
            "record": record.payload(),
        }
        atomic_write_text(
            self._fold_path(key),
            json.dumps(shard),
            site="fold.shard",
            fsync=True,
            retries=DEFAULT_RETRY,
        )
        self._known_complete.add(key)
        self._known_digests[key] = digest

    def read_fold(self, key: FoldKey, verify: bool = True) -> FoldRecord:
        """Load one fold, verifying its content digest by default."""
        if self.root is None:
            try:
                return self._memory[key]
            except KeyError:
                raise FoldStoreError(f"fold {key.stem()} not in store") from None
        path = self._fold_path(key)
        if not path.exists():
            raise FoldStoreError(f"fold {key.stem()} not in store")
        try:
            shard = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise FoldStoreError(
                f"fold {key.stem()} is torn or corrupt ({error}); "
                f"quarantine with fsck and resume"
            ) from error
        if not isinstance(shard, dict):
            raise FoldStoreError(f"fold {key.stem()} is corrupt: not an object")
        if shard.get("protocol_fingerprint") != self.protocol_fingerprint:
            raise FoldStoreError(
                f"fold {key.stem()} belongs to a different protocol"
            )
        record = FoldRecord.from_payload(shard["record"])
        if verify and fold_fingerprint(record) != shard.get("fingerprint"):
            raise FoldStoreError(
                f"fold {key.stem()} is corrupt: digest mismatch"
            )
        return record

    def fingerprint(self, variants: Sequence[str] | None = None) -> str:
        """Content digest over every (requested) fold, in grid order.

        Per-fold digests come from the verification cache the has_fold
        scan already filled (folds are immutable once written), so this
        never re-reads shard files.
        """
        digest = hashlib.sha256()
        digest.update(self.protocol_fingerprint.encode())
        for key in self.fold_keys(variants):
            if not self.has_fold(key):
                raise FoldStoreError(
                    f"cannot fingerprint: fold {key.stem()} missing"
                )
            fold_digest = self._known_digests.get(key)
            if fold_digest is None:  # memory store, or a pre-warmed cache
                fold_digest = fold_fingerprint(self.read_fold(key))
                self._known_digests[key] = fold_digest
            digest.update(fold_digest.encode())
        return digest.hexdigest()[:16]

    # --------------------------------------------------------------- status
    def status(self) -> FoldStoreStatus:
        per_variant: dict[str, tuple[int, int]] = {}
        completed = 0
        for variant in self.variants:
            done = sum(
                1
                for program in self.programs
                if self.has_fold(FoldKey(variant.key, program))
            )
            per_variant[variant.key] = (done, len(self.programs))
            completed += done
        return FoldStoreStatus(
            root=str(self.root) if self.root is not None else "<memory>",
            protocol_fingerprint=self.protocol_fingerprint,
            total_folds=self.n_folds,
            completed_folds=completed,
            per_variant=per_variant,
        )


