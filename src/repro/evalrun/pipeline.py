"""The resumable protocol pipeline: fold grid → checkpointed results.

An :class:`EvaluationPipeline` walks the (variant × held-out program)
fold grid of a :class:`~repro.evalrun.foldstore.FoldStore`, computes
every pending fold, and checkpoints each one the moment it completes.
Kill it anywhere — signal, crash, ``max_folds`` cap — and the next run
picks up exactly where it left off, never re-simulating a fold already
on disk.

Every fold is a pure function of (training matrix, variant, program):
the predictor is fitted on the full matrix, exclusion of the held-out
program and machine happens at query time (exact for the memory-based
model, see :mod:`repro.core.crossval`), and predicted settings are
priced through the :class:`~repro.evalrun.oracle.RuntimeOracle` — grid
settings straight from the store, synthesised settings through the
memoised compile-once fallback.  The assembled protocol is therefore
bit-identical whichever executor, interruption pattern, or fold order
produced it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Program
from repro.core.crossval import CrossValResult, PairOutcome
from repro.core.training import TrainingSet
from repro.evalrun.foldstore import FoldKey, FoldRecord, FoldRow, FoldStore
from repro.evalrun.oracle import RuntimeOracle
from repro.evalrun.variants import VariantSpec, make_predictor
from repro.parallel import (
    CLUSTER,
    RUNNER_EXECUTORS,
    resolve_jobs,
    resolve_strategy,
    run_batch_completed,
)
from repro.sim.counters import PerfCounters


def compute_fold(
    training: TrainingSet,
    variant: VariantSpec,
    program: str,
    oracle: RuntimeOracle,
    predictor,
) -> FoldRecord:
    """One leave-one-out fold: the held-out program on every machine.

    Deterministic in its inputs alone — the contract that makes folds
    checkpointable and the assembled protocol independent of executor
    and interruption pattern.
    """
    p = oracle.program_index(program)
    code_features = (
        training.code_features[p, :]
        if training.code_features is not None
        else None
    )
    machines = list(training.machines)
    counters_row = [
        PerfCounters(*training.counters[p, m, :]) for m in range(len(machines))
    ]
    if hasattr(predictor, "predict_many"):
        # One ranking-kernel pass per fold; duck-typed predictors (the
        # joint-vote ablation) keep the scalar loop.
        predicted_row = predictor.predict_many(
            counters_row,
            machines,
            exclude_programs=[program] * len(machines),
            exclude_machines=machines,
            code_features=[code_features] * len(machines),
        )
    else:
        predicted_row = [
            predictor.predict(
                counters,
                machine,
                exclude_program=program,
                exclude_machine=machine,
                code_features=code_features,
            )
            for counters, machine in zip(counters_row, machines)
        ]
    rows = []
    for m, machine in enumerate(training.machines):
        predicted = predicted_row[m]
        rows.append(
            FoldRow(
                machine=m,
                setting=predicted.as_indices(),
                predicted_runtime=oracle.runtime(program, predicted, machine),
                o3_runtime=float(training.o3_runtimes[p, m]),
                best_runtime=training.best_runtime(p, m),
            )
        )
    return FoldRecord(key=FoldKey(variant.key, program), rows=tuple(rows))


@dataclass
class PipelineRunStats:
    """What one :meth:`EvaluationPipeline.run` call actually did."""

    folds_computed: int = 0
    folds_skipped: int = 0  # already checkpointed before the call
    simulation_calls: int = 0  # out-of-grid fallback simulations
    store_hits: int = 0  # runtimes answered from the training matrix


@dataclass
class ProtocolResult:
    """The assembled protocol: one :class:`CrossValResult` per variant."""

    variants: list[VariantSpec]
    results: dict[str, CrossValResult]
    protocol_fingerprint: str
    fold_fingerprint: str
    metadata: dict = field(default_factory=dict)

    @property
    def base(self) -> CrossValResult:
        return self.results["base"]

    def result(self, variant_key: str) -> CrossValResult:
        try:
            return self.results[variant_key]
        except KeyError:
            raise KeyError(
                f"variant {variant_key!r} was not part of this protocol run"
            ) from None


# ---------------------------------------------------------- process workers
#: Per-process state for pool workers: the training payload, a memoised
#: oracle, and one fitted predictor per variant.  Shipped once through the
#: pool initializer instead of being pickled into every fold item.
_WORKER_STATE: dict = {}


def _init_protocol_worker(
    training: TrainingSet,
    programs: list[Program],
    variants: list[VariantSpec],
    vectorize: bool = True,
) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE["training"] = training
    _WORKER_STATE["oracle"] = RuntimeOracle(training, programs, vectorize=vectorize)
    _WORKER_STATE["variants"] = {variant.key: variant for variant in variants}
    _WORKER_STATE["predictors"] = {}


def _compute_fold_task(item: tuple[str, str]) -> tuple[FoldRecord, int, int]:
    """Picklable pool entry point; returns (record, sims, store hits)."""
    variant_key, program = item
    training = _WORKER_STATE["training"]
    oracle: RuntimeOracle = _WORKER_STATE["oracle"]
    variant = _WORKER_STATE["variants"][variant_key]
    predictor = _WORKER_STATE["predictors"].get(variant_key)
    if predictor is None:
        predictor = make_predictor(variant, training).fit(training)
        _WORKER_STATE["predictors"][variant_key] = predictor
    sims_before = oracle.simulation_calls
    hits_before = oracle.store_hits
    record = compute_fold(training, variant, program, oracle, predictor)
    return (
        record,
        oracle.simulation_calls - sims_before,
        oracle.store_hits - hits_before,
    )


class EvaluationPipeline:
    """Drives a fold store from partial to complete, checkpointing each fold.

    Args:
        training: the assembled experiment matrix the protocol evaluates.
        programs: :class:`Program` objects for the matrix's programs
            (only the oracle's out-of-grid fallback compiles them).
        store: the (possibly partially filled) fold store to complete.
        jobs: worker count (1 = serial, negative = all cores).
        executor: ``auto``, ``serial``, ``thread``, ``process``, or
            ``cluster`` — the last claims folds through the shared
            lease table of :mod:`repro.cluster`, so any number of
            concurrent pipeline processes (this host or peers on a
            shared filesystem) drain the same fold store together.
        compiler: memoising compiler shared by serial/thread fallback
            compilations; process workers build their own.
        vectorize: batched oracle fallbacks ride the bit-identical
            vector kernel (default) or the scalar reference.
        lease_ttl: for ``cluster`` only — seconds without a heartbeat
            before this store's leases count as stale and reclaimable.
    """

    def __init__(
        self,
        training: TrainingSet,
        programs: Sequence[Program] | Mapping[str, Program],
        store: FoldStore,
        jobs: int | None = 1,
        executor: str = "auto",
        compiler=None,
        vectorize: bool = True,
        lease_ttl: float | None = None,
    ):
        if executor not in RUNNER_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {RUNNER_EXECUTORS}"
            )
        self.training = training
        if isinstance(programs, Mapping):
            self.programs = list(programs.values())
        else:
            self.programs = list(programs)
        self.store = store
        self.jobs = resolve_jobs(jobs)
        self.executor = executor
        self.vectorize = vectorize
        self.lease_ttl = lease_ttl
        self.oracle = RuntimeOracle(
            training, self.programs, compiler=compiler, vectorize=vectorize
        )
        self._variants = {variant.key: variant for variant in store.variants}
        self._predictors: dict[str, object] = {}
        self._fit_lock = threading.Lock()

    # ------------------------------------------------------------------ run
    def run(
        self,
        variants: Sequence[str] | None = None,
        max_folds: int | None = None,
        progress: Callable[[str], None] | None = None,
        on_fold: Callable[[FoldKey, int, int], None] | None = None,
    ) -> PipelineRunStats:
        """Compute up to ``max_folds`` pending folds of the requested variants.

        Each fold is checkpointed to the store as it completes, so the
        call can be killed or capped anywhere and re-entered later;
        folds already checkpointed are skipped without any simulation.

        ``on_fold(key, completed, total)`` fires right after each fold's
        checkpoint lands (``completed`` counts previously checkpointed
        folds too) — the structured sibling of the free-text ``progress``
        hook, which the prediction service turns into live NDJSON events.
        """
        requested = list(self.store.fold_keys(variants))
        pending = [key for key in requested if not self.store.has_fold(key)]
        skipped = len(requested) - len(pending)
        if max_folds is not None:
            pending = pending[: max(max_folds, 0)]
        stats = PipelineRunStats(folds_skipped=skipped)
        if not pending:
            return stats
        if self.executor == CLUSTER:
            return self._run_cluster(
                variants, max_folds, skipped, len(requested), progress, on_fold
            )

        workers, strategy = resolve_strategy(
            self.jobs, self.executor, len(pending)
        )
        # With one effective worker the pool layer runs serially anyway;
        # route through the local path so the process initializer never
        # executes in (and pins the training payload into) this process.
        if strategy == "process" and workers > 1:
            function = _compute_fold_task
            items = [(key.variant, key.program) for key in pending]
            initializer = _init_protocol_worker
            initargs = (
                self.training,
                self.programs,
                self.store.variants,
                self.vectorize,
            )
        else:
            function = self._compute_fold_local
            items = list(pending)
            initializer = None
            initargs = ()

        total = len(requested)
        done = 0
        for index, (record, sims, hits) in run_batch_completed(
            function,
            items,
            jobs=self.jobs,
            executor=strategy,
            initializer=initializer,
            initargs=initargs,
        ):
            self.store.write_fold(record)
            done += 1
            stats.folds_computed += 1
            stats.simulation_calls += sims
            stats.store_hits += hits
            if on_fold is not None:
                on_fold(pending[index], skipped + done, total)
            if progress is not None:
                progress(
                    f"fold {pending[index].stem()} done "
                    f"({skipped + done}/{total})"
                )
        return stats

    def run_to_completion(
        self,
        variants: Sequence[str] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> ProtocolResult:
        """Finish every pending fold and assemble the protocol result."""
        self.run(variants=variants, progress=progress)
        return self.assemble(variants=variants)

    # ------------------------------------------------------------ internals
    def _run_cluster(
        self,
        variants: Sequence[str] | None,
        max_folds: int | None,
        skipped: int,
        total: int,
        progress: Callable[[str], None] | None,
        on_fold: Callable[[FoldKey, int, int], None] | None,
    ) -> PipelineRunStats:
        """One cluster worker's share of the protocol: claim, compute,
        checkpoint folds through the shared lease table.  Run any number
        of these concurrently against the same fold store root."""
        from repro.cluster import ClusterWorker, FoldQueue
        from repro.cluster.lease import DEFAULT_LEASE_TTL

        queue = FoldQueue(self, variants)
        stats = PipelineRunStats(folds_skipped=skipped)

        def on_unit(unit: str, unit_stats: dict) -> None:
            stats.folds_computed += 1
            stats.simulation_calls += int(
                unit_stats.get("simulation_calls", 0)
            )
            stats.store_hits += int(unit_stats.get("store_hits", 0))
            if on_fold is not None:
                completed = total - len(
                    self.store.pending_keys(queue.variants)
                )
                on_fold(queue._keys[unit], completed, total)

        ClusterWorker(
            queue,
            lease_ttl=(
                self.lease_ttl
                if self.lease_ttl is not None
                else DEFAULT_LEASE_TTL
            ),
            max_units=max_folds,
            progress=progress,
            on_unit=on_unit,
        ).run()
        return stats

    def _predictor_for(self, variant_key: str):
        with self._fit_lock:
            predictor = self._predictors.get(variant_key)
            if predictor is None:
                variant = self._variants[variant_key]
                predictor = make_predictor(variant, self.training).fit(
                    self.training
                )
                self._predictors[variant_key] = predictor
        return predictor

    def _compute_fold_local(
        self, key: FoldKey
    ) -> tuple[FoldRecord, int, int]:
        """Serial/thread work item: shares the pipeline's oracle and
        fitted predictors (fold results are identical to process workers',
        which rebuild both — all of it is deterministic)."""
        predictor = self._predictor_for(key.variant)
        sims_before = self.oracle.simulation_calls
        hits_before = self.oracle.store_hits
        record = compute_fold(
            self.training, self._variants[key.variant], key.program,
            self.oracle, predictor,
        )
        return (
            record,
            self.oracle.simulation_calls - sims_before,
            self.oracle.store_hits - hits_before,
        )

    # ------------------------------------------------------------- assembly
    def assemble(
        self, variants: Sequence[str] | None = None
    ) -> ProtocolResult:
        """Concatenate checkpointed folds into per-variant results.

        Outcomes are placed in grid order (variant-major, then program,
        then machine) whatever order the folds completed in, so the
        result — like the store fingerprint — is order-independent.
        """
        return assemble_protocol(self.store, self.training, variants=variants)


def assemble_protocol(
    store: FoldStore,
    training: TrainingSet,
    variants: Sequence[str] | None = None,
) -> ProtocolResult:
    """Build a :class:`ProtocolResult` from a store's checkpointed folds."""
    wanted = (
        [variant for variant in store.variants if variant.key in set(variants)]
        if variants is not None
        else list(store.variants)
    )
    results: dict[str, CrossValResult] = {}
    for variant in wanted:
        outcomes = []
        for program in store.programs:
            record = store.read_fold(FoldKey(variant.key, program))
            for row in record.rows:
                outcomes.append(
                    PairOutcome(
                        program=program,
                        machine=training.machines[row.machine],
                        predicted=FlagSetting.from_indices(row.setting),
                        predicted_runtime=row.predicted_runtime,
                        o3_runtime=row.o3_runtime,
                        best_runtime=row.best_runtime,
                    )
                )
        results[variant.key] = CrossValResult(outcomes=outcomes)
    return ProtocolResult(
        variants=wanted,
        results=results,
        protocol_fingerprint=store.protocol_fingerprint,
        fold_fingerprint=store.fingerprint(
            [variant.key for variant in wanted]
        ),
        metadata=dict(store.metadata),
    )
