"""Render the complete paper artifact from checkpointed protocol output.

One registry maps every artifact of the paper's evaluation — figures,
tables, headline numbers, ablations — to the protocol variants it needs
and a builder that renders it.  The figure/table builders are the
existing :mod:`repro.experiments` reproductions, fed the pipeline's
checkpointed cross-validation instead of recomputing it; the ablation
tables are assembled directly from the protocol's variant results.

Everything rendered here is a pure function of the training matrix and
the checkpointed folds: no timestamps, no environment — so a report from
a killed-and-resumed run is byte-identical to a single-shot one, and the
per-artifact fingerprints can be pinned by golden tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.evalrun.pipeline import ProtocolResult
from repro.evalrun.variants import (
    BETAS,
    FEATURE_MODES,
    KNN_KS,
    QUANTILES,
)
from repro.core.predictor import DEFAULT_BETA, DEFAULT_K, DEFAULT_QUANTILE

#: Report schema version (covers the markdown layout and JSON payload).
REPORT_FORMAT = 1


@dataclass(frozen=True)
class ArtifactSpec:
    """One entry of the paper artifact: what it needs and how to build it."""

    name: str
    description: str
    #: protocol variant keys whose folds must be checkpointed first;
    #: empty for artifacts derived from the training matrix alone.
    variants: tuple[str, ...]
    #: (data, protocol) -> result object with ``render()``.
    build: Callable


def _ablation_rows(protocol: ProtocolResult, entries) -> list:
    from repro.experiments.ablations import AblationRow

    rows = []
    for variant_key, label in entries:
        result = protocol.result(variant_key)
        rows.append(
            AblationRow(
                label=label,
                mean_speedup=result.mean_speedup(),
                fraction_of_best=result.fraction_of_best(),
                correlation=result.correlation_with_best(),
            )
        )
    return rows


def _knn_entries():
    return [
        (
            "base" if k == DEFAULT_K else f"k-{k}",
            f"K = {k}" + ("  (paper)" if k == DEFAULT_K else ""),
        )
        for k in KNN_KS
    ]


def _beta_entries():
    return [
        (
            "base" if beta == DEFAULT_BETA else f"beta-{beta:g}",
            f"beta = {beta:g}" + ("  (paper)" if beta == DEFAULT_BETA else ""),
        )
        for beta in BETAS
    ]


def _quantile_entries():
    return [
        (
            "base" if quantile == DEFAULT_QUANTILE else f"quantile-{quantile:g}",
            f"top {quantile:.0%}"
            + ("  (paper)" if quantile == DEFAULT_QUANTILE else ""),
        )
        for quantile in QUANTILES
    ]


def _feature_entries(with_code: bool):
    entries = []
    for mode in FEATURE_MODES:
        if mode == "with_code" and not with_code:
            continue
        key = "base" if mode == "both" else f"features-{mode}"
        suffix = "  (paper)" if mode == "both" else ""
        suffix = "  (§9 extension)" if mode == "with_code" else suffix
        entries.append((key, mode + suffix))
    return entries


def _ablation(title: str, entries_for):
    def build(data, protocol: ProtocolResult):
        from repro.experiments.ablations import AblationResult

        with_code = data.training.code_features is not None
        entries = entries_for(with_code)
        return AblationResult(
            title=title, rows=_ablation_rows(protocol, entries)
        )

    return build


def _base(build_with_crossval: Callable):
    def build(data, protocol: ProtocolResult):
        return build_with_crossval(data, protocol.base)

    return build


def _data_only(builder: Callable):
    return lambda data, protocol: builder(data)


def _static(builder: Callable):
    return lambda data, protocol: builder()


def _artifact_registry() -> dict[str, ArtifactSpec]:
    from repro.experiments import figures, tables

    def spec(name, description, variants, build):
        return ArtifactSpec(name, description, tuple(variants), build)

    base = ("base",)
    knn = ("base",) + tuple(f"k-{k}" for k in KNN_KS if k != DEFAULT_K)
    beta = ("base",) + tuple(
        f"beta-{b:g}" for b in BETAS if b != DEFAULT_BETA
    )
    quantile = ("base",) + tuple(
        f"quantile-{q:g}" for q in QUANTILES if q != DEFAULT_QUANTILE
    )
    features = ("base",) + tuple(
        f"features-{mode}" for mode in FEATURE_MODES if mode != "both"
    )
    return {
        spec.name: spec
        for spec in (
            spec("table1", "the 11 performance counters", (), _data_only(tables.table1)),
            spec("table2", "the microarchitecture space", (), _static(tables.table2)),
            spec("fig1", "best passes per program/machine", (), _data_only(figures.figure1)),
            spec("fig3", "the optimisation space census", (), _static(figures.figure3)),
            spec("fig4", "best speedup available per program", (), _data_only(figures.figure4)),
            spec("fig5", "best vs predicted speedup surfaces", base, _base(figures.figure5)),
            spec("fig6", "per-program model vs best speedup", base, _base(figures.figure6)),
            spec("fig7", "per-machine model vs best speedup", base, _base(figures.figure7)),
            spec("fig8", "MI(optimisation; speedup) Hinton diagram", (), _data_only(figures.figure8)),
            spec("fig9", "MI(feature; best value) Hinton diagram", (), _data_only(figures.figure9)),
            spec("headline", "the paper's headline numbers", base, _base(tables.headline)),
            spec("iterations", "search evaluations to match the model", base, _base(tables.iterations_to_match)),
            spec("ablate-k", "KNN neighbourhood-size sweep", knn,
                 _ablation("Ablation: KNN neighbourhood size", lambda wc: _knn_entries())),
            spec("ablate-beta", "softmax sharpness sweep", beta,
                 _ablation("Ablation: softmax sharpness beta", lambda wc: _beta_entries())),
            spec("ablate-quantile", "good-settings quantile sweep", quantile,
                 _ablation("Ablation: good-settings quantile", lambda wc: _quantile_entries())),
            spec("ablate-features", "feature-source sweep", features,
                 _ablation("Ablation: feature sources", _feature_entries)),
            spec("ablate-iid", "IID factorisation vs joint voting", ("base", "joint"),
                 _ablation("Ablation: factorised (IID) vs dependence-aware prediction",
                           lambda wc: [("base", "IID mode  (paper)"), ("joint", "joint vote")])),
        )
    }


ARTIFACTS: dict[str, ArtifactSpec] = _artifact_registry()

#: Everything the `repro report` command renders by default (the full
#: paper artifact; fig10's extended-space re-run needs a second dataset
#: and stays behind the dedicated `fig10` experiment command).
DEFAULT_ARTIFACTS: tuple[str, ...] = tuple(ARTIFACTS)


def resolve_artifacts(only: str | Sequence[str] | None) -> list[str]:
    """Validate an ``--only`` selection into registry order.

    Accepts the registry names plus the paper's spellings
    (``figure5`` → ``fig5``); ``None`` means the full artifact.
    """
    if only is None:
        return list(DEFAULT_ARTIFACTS)
    if isinstance(only, str):
        only = [part for part in only.split(",") if part.strip()]
    requested = set()
    for name in only:
        name = name.strip().lower()
        if name.startswith("figure"):
            name = "fig" + name[len("figure"):]
        if name not in ARTIFACTS:
            raise ValueError(
                f"unknown artifact {name!r}; choose from {', '.join(ARTIFACTS)}"
            )
        requested.add(name)
    return [name for name in ARTIFACTS if name in requested]


def variants_for_artifacts(names: Sequence[str], with_code: bool = True) -> list[str]:
    """The protocol variant keys a set of artifacts needs, in grid order.

    Artifacts built from the training matrix alone contribute nothing,
    so a ``--only fig4,table2`` report runs zero folds.
    """
    needed = set()
    for name in names:
        needed.update(ARTIFACTS[name].variants)
    if not with_code:
        needed.discard("features-with_code")
    from repro.evalrun.variants import protocol_variants

    return [
        variant.key
        for variant in protocol_variants(with_code=with_code)
        if variant.key in needed
    ]


#: Renderable report formats; ``svg`` is the headline figure and needs
#: the protocol's ``base`` variant folds.
REPORT_FORMATS = ("md", "json", "svg")


@dataclass
class ProtocolReport:
    """The rendered paper artifact: markdown + JSON (+ optional SVG).

    ``svg`` is populated when ``render_report`` was asked for the
    ``"svg"`` format; it is a sibling artifact with its own fingerprint
    and never enters :attr:`fingerprint`, so the golden markdown/JSON
    pins are unaffected by figure-file rendering.
    """

    scale: str
    artifacts: list[str]
    markdown: str
    payload: dict
    artifact_fingerprints: dict[str, str] = field(default_factory=dict)
    protocol: ProtocolResult | None = None
    svg: str | None = None

    def json_text(self) -> str:
        """Deterministic JSON serialisation of the payload."""
        return json.dumps(self.payload, indent=1, sort_keys=True) + "\n"

    @property
    def fingerprint(self) -> str:
        """Digest of the whole report (markdown + JSON bytes)."""
        digest = hashlib.sha256()
        digest.update(self.markdown.encode())
        digest.update(self.json_text().encode())
        return digest.hexdigest()[:16]

    @property
    def svg_fingerprint(self) -> str | None:
        """Digest of the rendered SVG figure (``None`` when not rendered)."""
        if self.svg is None:
            return None
        return _render_fingerprint(self.svg)


def _render_fingerprint(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def render_report(
    data,
    protocol: ProtocolResult,
    only: str | Sequence[str] | None = None,
    formats: Sequence[str] = ("md", "json"),
) -> ProtocolReport:
    """Render the requested artifacts from checkpointed protocol output.

    ``protocol`` must hold every variant the selection needs (the
    pipeline's ``variants_for_artifacts`` set); artifacts that need no
    folds render from the training matrix alone.

    ``formats`` selects the output representations: markdown and JSON
    are always built (the report fingerprint is defined over them);
    adding ``"svg"`` renders the headline speedup figure, which needs
    the ``base`` variant's folds.
    """
    unknown = [name for name in formats if name not in REPORT_FORMATS]
    if unknown:
        raise ValueError(
            f"unknown report formats {unknown}; choose from {REPORT_FORMATS}"
        )
    names = resolve_artifacts(only)
    available = set(protocol.results)
    scale = data.scale
    sections = []
    fingerprints: dict[str, str] = {}
    payload_artifacts: dict[str, dict] = {}
    for name in names:
        spec = ARTIFACTS[name]
        missing = [key for key in spec.variants if key not in available]
        if name == "ablate-features" and data.training.code_features is None:
            missing = [key for key in missing if key != "features-with_code"]
        if missing:
            raise ValueError(
                f"artifact {name!r} needs protocol variants {missing} "
                "that were not run"
            )
        rendered = spec.build(data, protocol).render()
        fingerprints[name] = _render_fingerprint(rendered)
        sections.append(
            f"## {name} — {spec.description}\n\n```\n{rendered}\n```\n"
        )
        payload_artifacts[name] = {
            "description": spec.description,
            "fingerprint": fingerprints[name],
            "render": rendered,
        }

    base = protocol.results.get("base")
    header = [
        f"# Paper protocol report — scale `{scale.name}`",
        "",
        f"- dataset: {len(scale.programs)} programs × {scale.n_machines} "
        f"machines × {scale.n_settings} settings",
        f"- training fingerprint: `{data.training.fingerprint()}`",
        f"- protocol fingerprint: `{protocol.protocol_fingerprint}`",
        f"- fold fingerprint: `{protocol.fold_fingerprint}`",
    ]
    if base is not None:
        header.append(
            f"- headline: model {base.mean_speedup():.3f}x vs best "
            f"{base.mean_best_speedup():.3f}x over -O3 "
            f"({base.fraction_of_best():.1%} of the iterative gain, "
            f"correlation {base.correlation_with_best():.3f})"
        )
    header.append("")
    markdown = "\n".join(header) + "\n" + "\n".join(sections)

    payload = {
        "format": REPORT_FORMAT,
        "scale": scale.name,
        "grid": {
            "programs": list(scale.programs),
            "n_machines": scale.n_machines,
            "n_settings": scale.n_settings,
            "extended": scale.extended,
        },
        "fingerprints": {
            "training": data.training.fingerprint(),
            "protocol": protocol.protocol_fingerprint,
            "folds": protocol.fold_fingerprint,
        },
        "headline": (
            {
                "mean_model_speedup": base.mean_speedup(),
                "mean_best_speedup": base.mean_best_speedup(),
                "fraction_of_best": base.fraction_of_best(),
                "correlation": base.correlation_with_best(),
            }
            if base is not None
            else None
        ),
        "artifacts": payload_artifacts,
    }
    svg = None
    if "svg" in formats:
        from repro.evalrun.svg import headline_svg

        svg = headline_svg(data, protocol)

    return ProtocolReport(
        scale=scale.name,
        artifacts=names,
        markdown=markdown,
        payload=payload,
        artifact_fingerprints=fingerprints,
        protocol=protocol,
        svg=svg,
    )
