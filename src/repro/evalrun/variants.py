"""The predictor-variant axis of the protocol grid.

The paper evaluates one model (K = 7, β = 1, top-5 % good set, (c, d)
features, IID factorisation) and argues its design choices are
insensitive; the ablation sweeps of :mod:`repro.experiments.ablations`
measure those claims by re-running leave-one-out with one choice varied.
Each distinct predictor configuration is one :class:`VariantSpec` here,
and the sweep rows that coincide with the paper's defaults all map to
the single ``base`` variant, so the pipeline never computes the same
fold twice under two names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.predictor import (
    DEFAULT_BETA,
    DEFAULT_K,
    DEFAULT_QUANTILE,
    OptimisationPredictor,
)
from repro.core.training import TrainingSet

#: Sweep values, matching the defaults of :mod:`repro.experiments.ablations`.
KNN_KS: tuple[int, ...] = (1, 3, 5, 7, 11, 15)
BETAS: tuple[float, ...] = (0.25, 1.0, 4.0, 16.0)
QUANTILES: tuple[float, ...] = (0.01, 0.05, 0.10, 0.25)
FEATURE_MODES: tuple[str, ...] = ("both", "counters", "descriptors", "with_code")


@dataclass(frozen=True)
class VariantSpec:
    """One predictor configuration of the protocol grid.

    ``key`` is the stable identity used in fold filenames and manifests;
    ``params`` is a value-level description sufficient to rebuild the
    predictor, so the manifest alone pins the variant.
    """

    key: str
    kind: str  # "paper" | "knn" | "beta" | "quantile" | "features" | "joint"
    label: str
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def param(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> dict:
        """Manifest entry: everything needed to reproduce the variant."""
        return {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "params": [[name, value] for name, value in self.params],
        }


def _knn_variant(k: int) -> VariantSpec:
    return VariantSpec(
        key=f"k-{k}", kind="knn", label=f"K = {k}", params=(("k", k),)
    )


def _beta_variant(beta: float) -> VariantSpec:
    return VariantSpec(
        key=f"beta-{beta:g}",
        kind="beta",
        label=f"beta = {beta:g}",
        params=(("beta", beta),),
    )


def _quantile_variant(quantile: float) -> VariantSpec:
    return VariantSpec(
        key=f"quantile-{quantile:g}",
        kind="quantile",
        label=f"top {quantile:.0%}",
        params=(("quantile", quantile),),
    )


def _features_variant(mode: str) -> VariantSpec:
    return VariantSpec(
        key=f"features-{mode}",
        kind="features",
        label=mode,
        params=(("feature_mode", mode),),
    )


BASE_VARIANT = VariantSpec(key="base", kind="paper", label="paper model")
JOINT_VARIANT = VariantSpec(key="joint", kind="joint", label="joint vote")


def protocol_variants(with_code: bool = True) -> list[VariantSpec]:
    """Every variant of the full protocol, ``base`` first, deduplicated.

    Sweep points equal to the paper's defaults (K = 7, β = 1, top 5 %,
    ``both`` features, IID mode) all resolve to ``base``.
    """
    variants: list[VariantSpec] = [BASE_VARIANT]
    variants.extend(_knn_variant(k) for k in KNN_KS if k != DEFAULT_K)
    variants.extend(_beta_variant(b) for b in BETAS if b != DEFAULT_BETA)
    variants.extend(
        _quantile_variant(q) for q in QUANTILES if q != DEFAULT_QUANTILE
    )
    for mode in FEATURE_MODES:
        if mode == "both":
            continue  # the paper's feature pair == base
        if mode == "with_code" and not with_code:
            continue
        variants.append(_features_variant(mode))
    variants.append(JOINT_VARIANT)
    return variants


def variant_by_key(key: str, with_code: bool = True) -> VariantSpec:
    for variant in protocol_variants(with_code=with_code):
        if variant.key == key:
            return variant
    raise KeyError(f"unknown protocol variant {key!r}")


def make_predictor(variant: VariantSpec, training: TrainingSet):
    """Build (unfitted) the predictor a variant describes."""
    extended = training.extended
    if variant.kind == "joint":
        from repro.experiments.ablations import JointVotePredictor

        return JointVotePredictor(extended=extended)
    return OptimisationPredictor(
        k=int(variant.param("k", DEFAULT_K)),
        beta=float(variant.param("beta", DEFAULT_BETA)),
        quantile=float(variant.param("quantile", DEFAULT_QUANTILE)),
        feature_mode=str(variant.param("feature_mode", "both")),
        extended=extended,
    )


def protocol_fingerprint(
    training: TrainingSet, variants: list[VariantSpec]
) -> str:
    """Identity of one protocol: the data plus every variant definition.

    Any change to the training matrix (and therefore to the grid that
    produced it) or to the variant set starts a fresh fold store rather
    than resuming a stale one.
    """
    digest = hashlib.sha256()
    digest.update(training.fingerprint().encode())
    for variant in variants:
        digest.update(repr(variant).encode())
    return digest.hexdigest()[:16]
