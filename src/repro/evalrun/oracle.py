"""The store-backed runtime oracle.

Cross-validation needs the runtime of (program, predicted setting,
machine) triples.  The training matrix assembled from the experiment
store already holds the runtime of *every* grid setting on every
machine, so the oracle answers those lookups without touching the
compiler or simulator at all; only settings the model synthesised
outside the sampled grid fall back to compile-and-simulate — and that
fallback is memoised compile-once/simulate-once, shared across every
fold that asks.

The oracle also guards fold evaluation against silently swapping in a
different binary: every compiled binary is checked to carry exactly the
requested program and canonical setting before its simulation is
trusted.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.analytic import simulate_analytic
from repro.sim.vector import BinarySignature, simulate_many


class OracleError(RuntimeError):
    """Fold evaluation was handed the wrong binary or an unknown pair."""


class RuntimeOracle:
    """Runtimes for (program, setting, machine), precomputed-first.

    Args:
        training: the assembled experiment-store matrix; its
            ``runtimes[p, s, m]`` grid answers every in-grid lookup.
        programs: :class:`Program` objects for the training programs
            (needed only for the out-of-grid compile fallback).
        compiler: memoising compiler for the fallback; a private one is
            created when omitted.
        vectorize: price batched fallbacks through the bit-identical
            :func:`~repro.sim.vector.simulate_many` kernel (default) or
            one scalar simulation per pair.

    Thread-safe: serial and thread executors may share one instance;
    concurrent duplicate work is benign (identical deterministic values)
    and the counters are lock-guarded.
    """

    def __init__(
        self,
        training: TrainingSet,
        programs: Sequence[Program] | Mapping[str, Program],
        compiler: Compiler | None = None,
        vectorize: bool = True,
    ):
        self.training = training
        self.vectorize = vectorize
        if isinstance(programs, Mapping):
            self._programs = dict(programs)
        else:
            self._programs = {program.name: program for program in programs}
        self.compiler = compiler if compiler is not None else Compiler()
        self._program_index = {
            name: index for index, name in enumerate(training.program_names)
        }
        self._machine_index = {
            machine: index for index, machine in enumerate(training.machines)
        }
        self._setting_index = {
            setting.canonical(): index
            for index, setting in enumerate(training.settings)
        }
        #: (program, canonical setting, machine index) -> seconds, for
        #: out-of-grid settings only (in-grid lookups read the matrix).
        self._fallback_runtimes: dict[tuple[str, FlagSetting, int], float] = {}
        self._lock = threading.Lock()
        self.simulation_calls = 0
        self.store_hits = 0

    # ------------------------------------------------------------ indexing
    def program_index(self, name: str) -> int:
        try:
            return self._program_index[name]
        except KeyError:
            raise OracleError(f"unknown program {name!r}") from None

    def machine_index(self, machine: MicroArch) -> int:
        try:
            return self._machine_index[machine]
        except KeyError:
            raise OracleError(f"machine not in the training grid: {machine}") from None

    # ------------------------------------------------------------- lookups
    def o3_runtime(self, program: str, machine: MicroArch) -> float:
        p = self.program_index(program)
        m = self.machine_index(machine)
        return float(self.training.o3_runtimes[p, m])

    def best_runtime(self, program: str, machine: MicroArch) -> float:
        p = self.program_index(program)
        m = self.machine_index(machine)
        return self.training.best_runtime(p, m)

    def runtime(
        self, program: str, setting: FlagSetting, machine: MicroArch
    ) -> float:
        """Seconds for one triple: grid lookup first, simulate only if new."""
        p = self.program_index(program)
        m = self.machine_index(machine)
        canonical = setting.canonical()
        s = self._setting_index.get(canonical)
        if s is not None:
            with self._lock:
                self.store_hits += 1
            return float(self.training.runtimes[p, s, m])

        key = (program, canonical, m)
        cached = self._fallback_runtimes.get(key)
        if cached is not None:
            return cached
        binary = self._compile_checked(program, canonical)
        seconds = simulate_analytic(binary, machine).seconds
        with self._lock:
            self.simulation_calls += 1
            self._fallback_runtimes[key] = seconds
        return seconds

    def runtime_many(
        self,
        program: str,
        settings: Sequence[FlagSetting],
        machines: Sequence[MicroArch],
    ) -> list[float]:
        """Seconds for ``(program, settings[i], machines[i])`` triples.

        The batched form of :meth:`runtime`: in-grid settings still read
        straight from the training matrix, but all out-of-grid fallback
        pairs of one setting are compiled once and priced in a single
        :func:`~repro.sim.vector.simulate_many` pass instead of one
        scalar simulation per machine.  Results, memoisation keys, and
        the ``store_hits``/``simulation_calls`` counters are exactly
        what the equivalent sequence of :meth:`runtime` calls produces
        (the vector kernel is bit-identical to the scalar model).
        """
        if len(settings) != len(machines):
            raise ValueError("settings and machines must pair up")
        p = self.program_index(program)
        machine_indices = [self.machine_index(machine) for machine in machines]
        canonicals = [setting.canonical() for setting in settings]

        answers: list[float | None] = [None] * len(settings)
        #: canonical -> [(position, machine index)] still needing a fallback.
        pending: dict[FlagSetting, list[tuple[int, int]]] = {}
        store_hits = 0
        for position, (canonical, m) in enumerate(zip(canonicals, machine_indices)):
            s = self._setting_index.get(canonical)
            if s is not None:
                store_hits += 1
                answers[position] = float(self.training.runtimes[p, s, m])
                continue
            cached = self._fallback_runtimes.get((program, canonical, m))
            if cached is not None:
                answers[position] = cached
            else:
                pending.setdefault(canonical, []).append((position, m))
        if store_hits:
            with self._lock:
                self.store_hits += store_hits

        for canonical, places in pending.items():
            binary = self._compile_checked(program, canonical)
            # A setting may pair with the same machine twice; simulate
            # each distinct machine once, exactly like memoised
            # per-triple calls would.
            distinct = sorted({m for _, m in places})
            if self.vectorize:
                results = simulate_many(
                    [BinarySignature.from_binary(binary)],
                    [self.training.machines[m] for m in distinct],
                )
                seconds_by_machine = {
                    m: float(results.seconds[0, i])
                    for i, m in enumerate(distinct)
                }
            else:
                seconds_by_machine = {
                    m: simulate_analytic(
                        binary, self.training.machines[m]
                    ).seconds
                    for m in distinct
                }
            with self._lock:
                self.simulation_calls += len(distinct)
                for m, seconds in seconds_by_machine.items():
                    self._fallback_runtimes[(program, canonical, m)] = seconds
            for position, m in places:
                answers[position] = seconds_by_machine[m]
        return answers

    # ------------------------------------------------------------ fallback
    def _compile_checked(self, program: str, canonical: FlagSetting):
        """Compile through the memoising compiler, verifying identity.

        The returned binary must be *the* binary of (program, setting):
        a cache or executor bug that swapped in another program's binary,
        or one compiled under different flags, would silently corrupt
        every downstream paper number, so it is checked here instead of
        trusted.
        """
        source = self._programs.get(program)
        if source is None:
            raise OracleError(f"no Program object for {program!r}")
        binary = self.compiler.compile(source, canonical)
        if binary.program_name != program:
            raise OracleError(
                f"binary swap: asked for {program!r}, "
                f"got {binary.program_name!r}"
            )
        recorded = binary.setting.canonical() if binary.setting is not None else None
        if recorded != canonical:
            raise OracleError(
                f"binary swap: {program!r} binary was compiled under a "
                "different flag setting than requested"
            )
        return binary
