"""repro.evalrun — the resumable paper-protocol evaluation pipeline.

The paper's evaluation is a grid of independent *fold* tasks: one
leave-one-out fold per (predictor variant, held-out program), where the
variants are the paper's model plus every ablation of its design
choices.  An :class:`EvaluationPipeline` executes that grid over the
serial/thread/process executors of :mod:`repro.parallel`, checkpoints
every completed fold into a :class:`FoldStore` (append-only,
digest-verified shards, same design as :mod:`repro.store`), and
assembles the result into the complete paper artifact — figures, tables,
headline numbers and ablations — rendered as markdown + JSON by
:mod:`repro.evalrun.report`.

The invariant mirrored from the experiment store: however the protocol
ran — any executor, killed and resumed, capped with ``max_folds`` — the
assembled report is byte-identical, and folds already checkpointed are
never re-simulated.
"""

from repro.evalrun.foldstore import (
    FOLD_FORMAT,
    FoldKey,
    FoldRecord,
    FoldRow,
    FoldStore,
    FoldStoreError,
    FoldStoreStatus,
    fold_fingerprint,
)
from repro.evalrun.oracle import OracleError, RuntimeOracle
from repro.evalrun.pipeline import (
    EvaluationPipeline,
    PipelineRunStats,
    ProtocolResult,
    compute_fold,
)
from repro.evalrun.report import (
    ARTIFACTS,
    DEFAULT_ARTIFACTS,
    ProtocolReport,
    render_report,
    resolve_artifacts,
    variants_for_artifacts,
)
from repro.evalrun.variants import (
    VariantSpec,
    make_predictor,
    protocol_fingerprint,
    protocol_variants,
)

__all__ = [
    "ARTIFACTS",
    "DEFAULT_ARTIFACTS",
    "EvaluationPipeline",
    "FOLD_FORMAT",
    "FoldKey",
    "FoldRecord",
    "FoldRow",
    "FoldStore",
    "FoldStoreError",
    "FoldStoreStatus",
    "OracleError",
    "PipelineRunStats",
    "ProtocolReport",
    "ProtocolResult",
    "RuntimeOracle",
    "VariantSpec",
    "compute_fold",
    "fold_fingerprint",
    "make_predictor",
    "protocol_fingerprint",
    "protocol_variants",
    "render_report",
    "resolve_artifacts",
    "variants_for_artifacts",
]
