"""The compiler optimisation space of the paper's Figure 3.

The space has 39 dimensions: 30 boolean pass toggles plus 9 multi-valued
parameters, exactly the gcc 4.2 flags and params the paper varies (they are
also the row labels of the paper's Figures 8 and 9).  Some dimensions are
*gated*: a sub-flag such as ``fgcse_sm`` only has an effect when its parent
``fgcse`` is enabled, mirroring gcc's behaviour.  Gating matters when
counting distinct optimisations (the paper's "642 million" on/off combos and
"1.69e17" full space) and when canonicalising settings.

A point in the space is a :class:`FlagSetting` — an immutable mapping from
dimension name to value.  The reference point :func:`o3_setting` models
gcc 4.2's ``-O3``: everything O3 enables is on at default parameter values;
``funroll_loops`` and the non-default gcse sub-flags are off, as in gcc.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence


@dataclass(frozen=True)
class FlagSpec:
    """One dimension of the optimisation space.

    Attributes:
        name: gcc-style flag or parameter name.
        values: allowed values, in ascending "aggressiveness" order.
        o3: the value gcc's -O3 would use.
        parent: name of the boolean flag gating this dimension, if any.
    """

    name: str
    values: tuple
    o3: object
    parent: str | None = None

    def __post_init__(self) -> None:
        if self.o3 not in self.values:
            raise ValueError(f"{self.name}: O3 value {self.o3!r} not in values")

    @property
    def is_boolean(self) -> bool:
        return self.values == (False, True)

    @property
    def cardinality(self) -> int:
        return len(self.values)


def _flag(name: str, o3: bool, parent: str | None = None) -> FlagSpec:
    return FlagSpec(name=name, values=(False, True), o3=o3, parent=parent)


#: The 39 dimensions, in the order of the paper's Figure 8 y-axis (bottom-up).
FLAG_SPECS: tuple[FlagSpec, ...] = (
    _flag("fthread_jumps", o3=True),
    _flag("fcrossjumping", o3=True),
    _flag("foptimize_sibling_calls", o3=True),
    _flag("fcse_follow_jumps", o3=True),
    _flag("fcse_skip_blocks", o3=True),
    _flag("fexpensive_optimizations", o3=True),
    _flag("fstrength_reduce", o3=True),
    _flag("fre_run_cse_after_loop", o3=True),
    _flag("frerun_loop_opt", o3=True),
    _flag("fcaller_saves", o3=True),
    _flag("fpeephole2", o3=True),
    _flag("fregmove", o3=True),
    _flag("freorder_blocks", o3=True),
    _flag("falign_functions", o3=True),
    _flag("falign_jumps", o3=True),
    _flag("falign_loops", o3=True),
    _flag("falign_labels", o3=True),
    _flag("ftree_vrp", o3=True),
    _flag("ftree_pre", o3=True),
    _flag("funswitch_loops", o3=True),
    _flag("fgcse", o3=True),
    # gcc spells the load-motion flag negatively: -fno-gcse-lm disables the
    # (default on) load motion.  True here means "load motion disabled".
    _flag("fno_gcse_lm", o3=False, parent="fgcse"),
    _flag("fgcse_sm", o3=False, parent="fgcse"),
    _flag("fgcse_las", o3=False, parent="fgcse"),
    _flag("fgcse_after_reload", o3=True, parent="fgcse"),
    FlagSpec(
        "param_max_gcse_passes", values=(1, 2, 3, 4), o3=1, parent="fgcse"
    ),
    _flag("fschedule_insns", o3=True),
    # Negative sub-flags again: True disables the sub-behaviour.
    _flag("fno_sched_interblock", o3=False, parent="fschedule_insns"),
    _flag("fno_sched_spec", o3=False, parent="fschedule_insns"),
    _flag("finline_functions", o3=True),
    FlagSpec(
        "param_max_inline_insns_auto",
        values=(30, 60, 90, 180, 360, 720),
        o3=90,
        parent="finline_functions",
    ),
    FlagSpec(
        "param_large_function_insns",
        values=(675, 1350, 2700, 5400),
        o3=2700,
        parent="finline_functions",
    ),
    FlagSpec(
        "param_large_function_growth",
        values=(25, 50, 100, 200),
        o3=100,
        parent="finline_functions",
    ),
    FlagSpec(
        "param_large_unit_insns",
        values=(5000, 10000, 20000, 40000),
        o3=10000,
        parent="finline_functions",
    ),
    FlagSpec(
        "param_inline_unit_growth",
        values=(25, 50, 100, 200),
        o3=50,
        parent="finline_functions",
    ),
    FlagSpec(
        "param_inline_call_cost",
        values=(4, 8, 16, 32),
        o3=16,
        parent="finline_functions",
    ),
    _flag("funroll_loops", o3=False),
    FlagSpec(
        "param_max_unroll_times",
        values=(2, 4, 8, 16),
        o3=8,
        parent="funroll_loops",
    ),
    FlagSpec(
        "param_max_unrolled_insns",
        values=(50, 100, 200, 400),
        o3=200,
        parent="funroll_loops",
    ),
)

FLAG_NAMES: tuple[str, ...] = tuple(spec.name for spec in FLAG_SPECS)
_SPEC_BY_NAME: dict[str, FlagSpec] = {spec.name: spec for spec in FLAG_SPECS}


class FlagSetting(Mapping):
    """An immutable, hashable point in the optimisation space.

    Instances behave like a read-only mapping from flag name to value and
    can be used as dictionary keys (e.g. for compilation caches).
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, object]):
        missing = set(FLAG_NAMES) - set(values)
        if missing:
            raise ValueError(f"missing flags: {sorted(missing)}")
        unknown = set(values) - set(FLAG_NAMES)
        if unknown:
            raise ValueError(f"unknown flags: {sorted(unknown)}")
        for name, value in values.items():
            if value not in _SPEC_BY_NAME[name].values:
                raise ValueError(f"{name}: invalid value {value!r}")
        self._values = tuple(values[name] for name in FLAG_NAMES)
        self._hash = hash(self._values)

    # Mapping interface -----------------------------------------------------
    def __getitem__(self, name: str) -> object:
        return self._values[_INDEX_BY_NAME[name]]

    def __iter__(self) -> Iterator[str]:
        return iter(FLAG_NAMES)

    def __len__(self) -> int:
        return len(FLAG_NAMES)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlagSetting):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        enabled = [
            name
            for name, spec in _SPEC_BY_NAME.items()
            if spec.is_boolean and self[name]
        ]
        return f"FlagSetting({len(enabled)} passes on)"

    # Convenience -----------------------------------------------------------
    def enabled(self, name: str) -> bool:
        """Whether a dimension is *effectively* active (gating applied)."""
        spec = _SPEC_BY_NAME[name]
        if spec.parent is not None and not self[spec.parent]:
            return False
        return bool(self[name]) if spec.is_boolean else True

    def value(self, name: str) -> object:
        return self[name]

    def with_values(self, **overrides: object) -> "FlagSetting":
        """A copy with some dimensions replaced."""
        values = dict(zip(FLAG_NAMES, self._values))
        values.update(overrides)
        return FlagSetting(values)

    def canonical(self) -> "FlagSetting":
        """Collapse gated-off dimensions to their O3 value.

        Two settings that differ only in dimensions masked by a disabled
        parent produce identical binaries; canonicalisation makes them
        compare equal, which tightens compilation caches.
        """
        values = {}
        for spec in FLAG_SPECS:
            if spec.parent is not None and not self[spec.parent]:
                values[spec.name] = spec.o3
            else:
                values[spec.name] = self[spec.name]
        return FlagSetting(values)

    def as_indices(self) -> tuple[int, ...]:
        """Encode as per-dimension value indices (for the ML model)."""
        return tuple(
            _SPEC_BY_NAME[name].values.index(value)
            for name, value in zip(FLAG_NAMES, self._values)
        )

    @staticmethod
    def from_indices(indices: Sequence[int]) -> "FlagSetting":
        if len(indices) != len(FLAG_SPECS):
            raise ValueError("wrong number of dimensions")
        values = {
            spec.name: spec.values[index]
            for spec, index in zip(FLAG_SPECS, indices)
        }
        return FlagSetting(values)


_INDEX_BY_NAME = {name: index for index, name in enumerate(FLAG_NAMES)}


class FlagSpace:
    """The full optimisation space: enumeration sizes and uniform sampling."""

    def __init__(self, specs: Sequence[FlagSpec] = FLAG_SPECS):
        self.specs = tuple(specs)
        self._by_name = {spec.name: spec for spec in self.specs}

    def __len__(self) -> int:
        return len(self.specs)

    def spec(self, name: str) -> FlagSpec:
        return self._by_name[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    def cardinalities(self) -> tuple[int, ...]:
        return tuple(spec.cardinality for spec in self.specs)

    def raw_size(self) -> int:
        """Cartesian-product size, ignoring gating (the paper's 1.69e17)."""
        size = 1
        for spec in self.specs:
            size *= spec.cardinality
        return size

    def raw_boolean_size(self) -> int:
        """On/off-only cartesian size (the paper's '642 million' figure
        counts pass toggles only, i.e. boolean dimensions)."""
        size = 1
        for spec in self.specs:
            if spec.is_boolean:
                size *= 2
        return size

    def distinct_size(self, booleans_only: bool = False) -> int:
        """Number of *behaviourally distinct* settings, honouring gating.

        A child dimension contributes choices only when its parent is on, so
        the count is a product over parent groups of
        ``(1 + children_product)`` rather than a plain cartesian product.
        """
        children: dict[str, list[FlagSpec]] = {}
        top_level: list[FlagSpec] = []
        for spec in self.specs:
            if spec.parent is None:
                top_level.append(spec)
            else:
                children.setdefault(spec.parent, []).append(spec)

        def dim_card(spec: FlagSpec) -> int:
            if booleans_only and not spec.is_boolean:
                return 1
            return spec.cardinality

        size = 1
        for spec in top_level:
            if spec.name in children:
                sub = 1
                for child in children[spec.name]:
                    sub *= dim_card(child)
                # parent off (1 behaviour) or on (sub behaviours)
                size *= 1 + sub
            else:
                size *= dim_card(spec)
        return size

    def sample(self, rng: random.Random) -> FlagSetting:
        """Draw one setting uniformly at random (per dimension)."""
        values = {spec.name: rng.choice(spec.values) for spec in self.specs}
        return FlagSetting(values)

    def sample_many(self, count: int, seed: int) -> list[FlagSetting]:
        """Draw ``count`` distinct settings deterministically from ``seed``.

        This is the paper's §4.3 protocol: iterative compilation evaluates
        1000 uniform-random points of the space.
        """
        return self.sample_distinct(count, random.Random(seed))

    def sample_distinct(
        self, count: int, rng: random.Random
    ) -> list[FlagSetting]:
        """Draw ``count`` distinct settings from an existing RNG stream.

        Consumes exactly the draws :meth:`sample_many` would for the
        same stream state, so a search strategy threading one seeded
        ``rng`` through its whole run reproduces the legacy seed-fresh
        behaviour bit for bit.
        """
        seen: set[FlagSetting] = set()
        settings: list[FlagSetting] = []
        # The space is astronomically larger than any request, so rejection
        # sampling terminates almost immediately.
        while len(settings) < count:
            setting = self.sample(rng)
            if setting not in seen:
                seen.add(setting)
                settings.append(setting)
        return settings

    def neighbours(self, setting: FlagSetting) -> Iterator[FlagSetting]:
        """All settings at Hamming distance one (for hill climbing)."""
        for spec in self.specs:
            for value in spec.values:
                if value != setting[spec.name]:
                    yield setting.with_values(**{spec.name: value})


def o3_setting() -> FlagSetting:
    """gcc 4.2's -O3: the paper's baseline that all speedups are relative to."""
    return FlagSetting({spec.name: spec.o3 for spec in FLAG_SPECS})


def o0_setting() -> FlagSetting:
    """Everything off, parameters at their least aggressive values."""
    values = {}
    for spec in FLAG_SPECS:
        values[spec.name] = False if spec.is_boolean else spec.values[0]
    return FlagSetting(values)


DEFAULT_SPACE = FlagSpace()
