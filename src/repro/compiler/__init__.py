"""The optimisation-space substrate: a from-scratch mini optimising compiler.

Public surface:

* :class:`Compiler` — (program, flag setting) → :class:`CompiledBinary`;
* :class:`FlagSpace` / :class:`FlagSetting` — the 39-dimensional optimisation
  space of the paper's Figure 3, with :func:`o3_setting` as the baseline;
* the IR types in :mod:`repro.compiler.ir` for program construction.
"""

from repro.compiler.binary import CompiledBinary, LoopSummary, RegionAccess, finalize
from repro.compiler.flags import (
    DEFAULT_SPACE,
    FLAG_NAMES,
    FLAG_SPECS,
    FlagSetting,
    FlagSpace,
    FlagSpec,
    o0_setting,
    o3_setting,
)
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
)
from repro.compiler.pipeline import Compiler, default_pass_order

__all__ = [
    "BasicBlock",
    "CompiledBinary",
    "Compiler",
    "DEFAULT_SPACE",
    "DataRegion",
    "FLAG_NAMES",
    "FLAG_SPECS",
    "FlagSetting",
    "FlagSpace",
    "FlagSpec",
    "Function",
    "Instruction",
    "Loop",
    "LoopSummary",
    "Opcode",
    "Program",
    "RegionAccess",
    "default_pass_order",
    "finalize",
    "o0_setting",
    "o3_setting",
]
