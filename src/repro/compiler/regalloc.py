"""Register allocation with a spill model (and the two allocation flags).

The XScale exposes ~11 allocatable general-purpose registers once the
stack/frame/link registers are reserved.  For each block, the maximum
simultaneous live values (from the *final, post-scheduling* dependence
intervals, plus a baseline for loop-carried values) determines how many
values spill; every spilled value costs a store/reload pair of stack
accesses — code bytes, issue slots and D-cache traffic.

Flags folded into allocation policy, as in gcc:

* ``-fregmove`` coalesces register moves, relieving one unit of pressure;
* ``-fcaller-saves`` allocates live-across-call values into caller-saved
  registers with targeted saves; without it every call conservatively
  saves/restores one register pair per call site.

The notorious interaction the paper highlights in §5.4 emerges here
mechanically: aggressive scheduling stretches live ranges → pressure rises →
spill code grows the binary → small instruction caches suffer.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    DataRegion,
    Instruction,
    Opcode,
    Program,
    TAG_SPILL,
)
from repro.compiler.passes.base import Pass, PassStats, insert_instructions
from repro.compiler.passes.schedule import block_pressure

#: General-purpose registers available to the allocator.
ALLOCATABLE_REGISTERS = 11

#: Upper bound on spilled values per block (beyond this the allocator would
#: rematerialise instead; also keeps pathological blocks bounded).
MAX_SPILLS_PER_BLOCK = 6

STACK_REGION = "stack"


class RegisterAllocationPass(Pass):
    """Always-on register allocation; flags modulate the policy."""

    name = "regalloc"

    def enabled(self, flags: FlagSetting) -> bool:
        return True

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        if STACK_REGION not in program.regions:
            program.regions[STACK_REGION] = DataRegion(
                STACK_REGION, size_bytes=4096, kind="stack"
            )
        regmove = bool(flags["fregmove"])
        caller_saves = bool(flags["fcaller_saves"])

        for function in program.functions.values():
            for block in function.blocks.values():
                if not block.instructions:
                    continue
                spilled = self._spill_count(block, regmove, caller_saves)
                if spilled == 0:
                    continue
                self._insert_spills(function.name, block, spilled)
                stats["regalloc.spilled_values"] += spilled

    @staticmethod
    def _spill_count(block, regmove: bool, caller_saves: bool) -> int:
        pressure = block_pressure(block)
        if regmove:
            pressure -= 1
        calls = sum(
            1 for insn in block.instructions if insn.opcode is Opcode.CALL
        )
        available = ALLOCATABLE_REGISTERS
        spilled = max(0, pressure - available)
        if calls:
            if caller_saves:
                # Targeted saves cost one extra live register overall.
                spilled = max(0, pressure + 1 - available)
            else:
                # Blunt save/restore of one live pair around every call.
                spilled += calls
        return min(spilled, MAX_SPILLS_PER_BLOCK)

    @staticmethod
    def _insert_spills(function_name: str, block, spilled: int) -> None:
        """Insert a store near the top third and a reload near the bottom
        third for each spilled value, spacing crossing dependences apart."""
        stores = []
        reloads = []
        for slot in range(spilled):
            slot_key = f"spill:{function_name}:{block.label}:{slot}"
            stores.append(
                Instruction(
                    opcode=Opcode.STORE,
                    expr=slot_key,
                    region=STACK_REGION,
                    stride=0,
                    tags=frozenset({TAG_SPILL}),
                )
            )
            reloads.append(
                Instruction(
                    opcode=Opcode.LOAD,
                    expr=slot_key,
                    region=STACK_REGION,
                    stride=0,
                    tags=frozenset({TAG_SPILL}),
                )
            )
        length = len(block.instructions)
        reload_position = max((2 * length) // 3, 1)
        insert_instructions(block, reload_position, reloads)
        store_position = min(length // 3, reload_position)
        insert_instructions(block, store_position, stores)
