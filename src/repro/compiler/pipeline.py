"""The pass manager: a flag setting drives an ordered pass schedule.

The order follows gcc 4.2's RTL pipeline closely enough that the documented
pass interactions hold: inlining before the scalar cleanups, loop passes
before unrolling, the post-loop CSE rerun after unrolling, scheduling before
register allocation (the -fschedule-insns/spill interaction of the paper's
§5.4), post-reload GCSE after allocation, and layout passes last.
"""

from __future__ import annotations

from repro.compiler.binary import CompiledBinary, finalize
from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.compiler.ir import Program
from repro.compiler.passes.align import AlignPass
from repro.compiler.passes.base import Pass, PassStats
from repro.compiler.passes.cse import CsePass, RerunCsePass
from repro.compiler.passes.gcse import GcseAfterReloadPass, GcsePass
from repro.compiler.passes.inline import InlineFunctionsPass
from repro.compiler.passes.jumps import CrossJumpPass, ThreadJumpsPass
from repro.compiler.passes.loopopt import (
    LoopInvariantMotionPass,
    RerunLoopOptPass,
    StrengthReducePass,
    UnswitchLoopsPass,
)
from repro.compiler.passes.misc import PeepholePass, SiblingCallPass
from repro.compiler.passes.reorder import ReorderBlocksPass
from repro.compiler.passes.schedule import ScheduleInsnsPass
from repro.compiler.passes.tree import TreePrePass, TreeVrpPass
from repro.compiler.passes.unroll import UnrollLoopsPass
from repro.compiler.regalloc import RegisterAllocationPass


def default_pass_order() -> list[Pass]:
    """The gcc-4.2-like pass schedule used for every compilation."""
    return [
        TreeVrpPass(),
        TreePrePass(),
        InlineFunctionsPass(),
        SiblingCallPass(),
        ThreadJumpsPass(),
        CsePass(),
        GcsePass(),
        LoopInvariantMotionPass(),
        RerunLoopOptPass(),
        UnswitchLoopsPass(),
        StrengthReducePass(),
        UnrollLoopsPass(),
        RerunCsePass(),
        ScheduleInsnsPass(),
        RegisterAllocationPass(),
        GcseAfterReloadPass(),
        PeepholePass(),
        CrossJumpPass(),
        ReorderBlocksPass(),
        AlignPass(),
    ]


class Compiler:
    """The optimising compiler: (program, flag setting) → compiled binary.

    Compilations are memoised on ``(program name, canonical setting)``; two
    settings that differ only in dimensions masked by a disabled parent flag
    share one compilation, exactly as they would share one gcc invocation's
    behaviour.
    """

    def __init__(self, space: FlagSpace = DEFAULT_SPACE, cache: bool = True):
        self.space = space
        self._cache_enabled = cache
        self._cache: dict[tuple[str, FlagSetting], CompiledBinary] = {}
        self._passes = default_pass_order()

    def compile(self, program: Program, setting: FlagSetting) -> CompiledBinary:
        """Run the pass pipeline over a fresh copy of ``program``."""
        canonical = setting.canonical()
        key = (program.name, canonical)
        if self._cache_enabled:
            # Single atomic read (not check-then-index) so a concurrent
            # clear_cache() can only cause a recompile, never a KeyError.
            cached = self._cache.get(key)
            if cached is not None:
                return cached

        working = program.clone()
        stats = PassStats()
        for optimisation in self._passes:
            optimisation.apply(working, canonical, stats)
        working.validate()
        binary = finalize(working, setting, stats)
        if self._cache_enabled:
            self._cache[key] = binary
        return binary

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    def cache_info(self) -> dict[str, int]:
        return {"entries": len(self._cache)}

    def clear_cache(self) -> None:
        self._cache.clear()
