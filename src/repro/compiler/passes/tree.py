"""Tree-level (SSA) optimisations: value-range propagation and PRE.

gcc's ``-ftree-vrp`` removes dominated range checks and ``-ftree-pre``
removes partially redundant expressions.  The program generator marks which
instructions are provably removable by each analysis; the passes perform the
removal.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import TAG_PARTIAL_REDUNDANT, TAG_RANGE_CHECK, Program
from repro.compiler.passes.base import Pass, PassStats, remove_tagged


class TreeVrpPass(Pass):
    """``-ftree-vrp``: delete range checks proven redundant by value ranges."""

    name = "tree_vrp"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["ftree_vrp"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                stats["tree_vrp.removed"] += remove_tagged(block, TAG_RANGE_CHECK)


class TreePrePass(Pass):
    """``-ftree-pre``: delete partially redundant expressions."""

    name = "tree_pre"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["ftree_pre"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                stats["tree_pre.removed"] += remove_tagged(
                    block, TAG_PARTIAL_REDUNDANT
                )
