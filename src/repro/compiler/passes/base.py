"""Shared machinery for optimisation passes.

Passes mutate a working copy of the program IR.  The two fiddly operations —
deleting and inserting instructions while keeping dependence distances
consistent — live here so each pass stays small and every pass preserves the
IR invariants the same way.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import BasicBlock, Instruction, Program


class PassStats(Counter):
    """Per-compilation event counters, e.g. ``stats["gcse.removed"] += 1``.

    Used by tests to assert that a pass actually did something, and surfaced
    on the compiled binary for analysis.
    """


class Pass:
    """An optimisation pass gated by one or more flags."""

    #: Human-readable pass name, used as the stats prefix.
    name: str = "pass"

    def enabled(self, flags: FlagSetting) -> bool:
        raise NotImplementedError

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        raise NotImplementedError

    def apply(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        """Run the pass if its flags enable it."""
        if self.enabled(flags):
            self.run(program, flags, stats)
            stats[f"{self.name}.ran"] += 1


def delete_instructions(block: BasicBlock, indices: Iterable[int]) -> int:
    """Remove the instructions at ``indices``, remapping dependence edges.

    Consumers of a deleted instruction lose that edge (the value is provided
    by the original, far-away computation, so no stall arises).  Edges that
    merely *cross* a deleted instruction shrink by the number of deletions
    between producer and consumer — deleting code genuinely packs dependent
    instructions closer together.

    Returns the number of instructions removed.
    """
    doomed = set(indices)
    if not doomed:
        return 0
    old_instructions = block.instructions
    old_to_new: dict[int, int] = {}
    kept: list[tuple[int, Instruction]] = []
    for old_index, insn in enumerate(old_instructions):
        if old_index not in doomed:
            old_to_new[old_index] = len(kept)
            kept.append((old_index, insn))

    new_instructions: list[Instruction] = []
    for new_index, (old_index, insn) in enumerate(kept):
        if insn.deps:
            new_deps: list[tuple[int, str]] = []
            for distance, kind in insn.deps:
                producer = old_index - distance
                if producer < 0:
                    # Cross-block producer: preserve the reach beyond the
                    # block start.
                    new_deps.append((new_index - producer, kind))
                elif producer in doomed:
                    continue
                else:
                    new_deps.append((new_index - old_to_new[producer], kind))
            insn.deps = tuple(new_deps)
        new_instructions.append(insn)
    removed = len(old_instructions) - len(new_instructions)
    block.instructions = new_instructions
    return removed


def insert_instructions(
    block: BasicBlock, position: int, new_insns: Sequence[Instruction]
) -> None:
    """Insert instructions at ``position``, stretching crossing dependences.

    An edge whose producer sits before the insertion point and whose consumer
    after it grows by the number of inserted instructions — inserted code
    spaces dependent instructions apart, exactly as in a real binary.
    """
    count = len(new_insns)
    if count == 0:
        return
    for old_index in range(position, len(block.instructions)):
        insn = block.instructions[old_index]
        if not insn.deps:
            continue
        new_deps = []
        for distance, kind in insn.deps:
            producer = old_index - distance
            if producer < position:
                new_deps.append((distance + count, kind))
            else:
                new_deps.append((distance, kind))
        insn.deps = tuple(new_deps)
    block.instructions[position:position] = list(new_insns)


def remove_tagged(
    block: BasicBlock, tag: str, predicate=None
) -> int:
    """Delete all instructions in ``block`` carrying ``tag``.

    ``predicate`` optionally restricts which tagged instructions die.
    Returns the number removed.
    """
    doomed = [
        index
        for index, insn in enumerate(block.instructions)
        if insn.has_tag(tag) and (predicate is None or predicate(insn))
    ]
    return delete_instructions(block, doomed)


def loop_preheader(function, loop) -> BasicBlock | None:
    """The unique block outside ``loop`` that falls into its header.

    The program generator guarantees every loop has one; return ``None``
    defensively if a transformed CFG lost it.
    """
    for label in function.layout:
        if label in loop.blocks:
            continue
        block = function.blocks[label]
        if loop.header in block.successors:
            return block
    return None
