"""Instruction scheduling (``-fschedule-insns`` and its two sub-flags).

The scheduler is a classic critical-path list scheduler over each block's
dependence DAG.  Reordering stretches producer→consumer distances, which is
exactly what removes load-use and multiply-use stalls on the in-order
XScale pipeline — and it lengthens live ranges, which is exactly what
raises register pressure and triggers spill code.  Both effects are
measured, not asserted: stalls are recomputed from the final instruction
order at simulation time, and pressure from the final live intervals at
register-allocation time.

Sub-flags:

* interblock scheduling (default on; ``-fno-sched-interblock`` disables it)
  first merges pure fall-through, same-frequency block chains inside a loop
  into a single scheduling region, widening the window — this is also what
  lets the scheduler interleave the copies an unroller just created;
* speculative scheduling (default on; ``-fno-sched-spec`` disables it)
  permits loads to move above stores to *other* regions; without it every
  store is a barrier for every later load.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    DEFAULT_LATENCY,
    Opcode,
    Program,
    BasicBlock,
    Function,
)
from repro.compiler.passes.base import Pass, PassStats


#: Values live across a block (loop-carried variables, globals) that occupy
#: registers regardless of the block's internal schedule.
BASELINE_LIVE = 4

#: Scheduling-region size cap; gcc bounds its regions similarly.
MAX_REGION_INSNS = 96


def merge_fallthrough_chains(
    function: Function, stats: PassStats, region_cap: int = MAX_REGION_INSNS
) -> None:
    """Merge pure fall-through same-frequency chains into single blocks.

    A block is absorbed into its layout predecessor when the predecessor has
    no terminator, exactly one successor (the block), identical execution
    count, the block has no other predecessors, is not a loop header, and
    both live in the same innermost loop.
    """
    predecessor_count: dict[str, int] = {label: 0 for label in function.blocks}
    for block in function.blocks.values():
        for successor in block.successors:
            if successor in predecessor_count:
                predecessor_count[successor] += 1

    merged = True
    while merged:
        merged = False
        for position in range(len(function.layout) - 1):
            first_label = function.layout[position]
            second_label = function.layout[position + 1]
            first = function.blocks[first_label]
            second = function.blocks[second_label]
            if first.terminator is not None:
                continue
            if first.successors != [second_label]:
                continue
            if predecessor_count.get(second_label, 0) != 1:
                continue
            if second.is_loop_header:
                continue
            if abs(first.exec_count - second.exec_count) > 1e-6 * max(
                first.exec_count, 1.0
            ):
                continue
            first_loop = function.loop_of_block(first_label)
            second_loop = function.loop_of_block(second_label)
            if (first_loop.header if first_loop else None) != (
                second_loop.header if second_loop else None
            ):
                continue
            if len(first.instructions) + len(second.instructions) > region_cap:
                continue
            # Merge: concatenation preserves all dependence distances,
            # including the cross-block ones that become intra-block.
            first.instructions.extend(second.instructions)
            first.successors = list(second.successors)
            first.taken_prob = second.taken_prob
            first.predictability = second.predictability
            first.invariant_branch = second.invariant_branch
            del function.blocks[second_label]
            function.layout.remove(second_label)
            for loop in function.loops:
                if second_label in loop.blocks:
                    loop.blocks.remove(second_label)
            predecessor_count[second_label] = 0
            stats["schedule.blocks_merged"] += 1
            merged = True
            break


def _dependence_edges(
    block: BasicBlock, allow_speculation: bool
) -> list[list[int]]:
    """Predecessor lists for the block's scheduling DAG.

    Edges come from explicit value dependences plus memory-ordering
    constraints: stores are ordered with other stores and loads of the same
    region; without speculative scheduling, stores bar *all* later loads.
    """
    instructions = block.instructions
    count = len(instructions)
    predecessors: list[list[int]] = [[] for _ in range(count)]
    for index, insn in enumerate(instructions):
        for distance, _ in insn.deps:
            producer = index - distance
            if 0 <= producer < count:
                predecessors[index].append(producer)

    last_store_by_region: dict[str, int] = {}
    last_store_any = -1
    for index, insn in enumerate(instructions):
        if insn.opcode is Opcode.STORE:
            previous = last_store_by_region.get(insn.region, -1)
            if previous >= 0:
                predecessors[index].append(previous)
            last_store_by_region[insn.region] = index
            last_store_any = index
        elif insn.opcode is Opcode.LOAD:
            if allow_speculation:
                previous = last_store_by_region.get(insn.region, -1)
            else:
                previous = last_store_any
            if previous >= 0:
                predecessors[index].append(previous)
    return predecessors


def _latency_of(insn) -> int:
    return DEFAULT_LATENCY[insn.opcode.category]


def list_schedule(block: BasicBlock, allow_speculation: bool) -> bool:
    """Reorder the block body to maximise producer→consumer spacing.

    The terminator (if any) stays last; CALL instructions are barriers that
    partition the block into independently scheduled segments.  Returns
    whether any instruction moved.
    """
    body, terminator = block.body_and_terminator()
    if len(body) < 3:
        return False

    segments: list[tuple[int, int]] = []
    start = 0
    for index, insn in enumerate(body):
        if insn.opcode is Opcode.CALL:
            if index > start:
                segments.append((start, index))
            start = index + 1
    if len(body) > start:
        segments.append((start, len(body)))

    predecessors = _dependence_edges(block, allow_speculation)
    new_order: list[int] = []
    moved = False
    cursor = 0
    for seg_start, seg_end in segments:
        while cursor < seg_start:
            new_order.append(cursor)
            cursor += 1
        order = _schedule_segment(block, predecessors, seg_start, seg_end)
        if order != list(range(seg_start, seg_end)):
            moved = True
        new_order.extend(order)
        cursor = seg_end
    while cursor < len(body):
        new_order.append(cursor)
        cursor += 1

    if not moved:
        return False
    _apply_order(block, new_order, terminator is not None)
    return True


def _schedule_segment(
    block: BasicBlock,
    predecessors: list[list[int]],
    seg_start: int,
    seg_end: int,
) -> list[int]:
    """Stall-aware critical-path list scheduling of one segment.

    At each slot, prefer an instruction whose operands are already available
    (no stall at the current position), breaking ties by critical-path
    height then original position; if every ready instruction would stall,
    take the one available soonest.  This interleaves independent chains,
    stretching producer→consumer distances — the whole point of scheduling
    on an in-order pipeline.
    """
    instructions = block.instructions
    indices = range(seg_start, seg_end)
    successors: dict[int, list[int]] = {index: [] for index in indices}
    indegree: dict[int, int] = {index: 0 for index in indices}
    for index in indices:
        for producer in predecessors[index]:
            if seg_start <= producer < seg_end:
                successors[producer].append(index)
                indegree[index] += 1

    # Critical path (height) of each node, in cycles.
    height: dict[int, int] = {}
    for index in reversed(indices):
        latency = _latency_of(instructions[index])
        height[index] = latency + max(
            (height[consumer] for consumer in successors[index]), default=0
        )

    ready = {index for index in indices if indegree[index] == 0}
    ready_time: dict[int, int] = {index: 0 for index in ready}
    order: list[int] = []
    remaining = dict(indegree)
    slot = 0
    while ready:
        pool = list(ready)
        # Instructions already available compare equal on effective time, so
        # the critical path decides among them; otherwise the soonest wins.
        pool.sort(
            key=lambda index: (max(ready_time[index], slot), -height[index], index)
        )
        chosen = pool[0]
        ready.remove(chosen)
        order.append(chosen)
        finish = slot + _latency_of(instructions[chosen])
        for consumer in successors[chosen]:
            ready_time[consumer] = max(ready_time.get(consumer, 0), finish)
            remaining[consumer] -= 1
            if remaining[consumer] == 0:
                ready.add(consumer)
        slot += 1
    return order


def _apply_order(block: BasicBlock, new_order: list[int], has_terminator: bool) -> None:
    """Materialise the permutation, rewriting dependence distances."""
    old_instructions = block.instructions
    body_len = len(new_order)
    position_of: dict[int, int] = {
        old_index: new_index for new_index, old_index in enumerate(new_order)
    }
    if has_terminator:
        terminator_old = len(old_instructions) - 1
        position_of[terminator_old] = body_len
        new_order = new_order + [terminator_old]

    reordered = [old_instructions[old_index] for old_index in new_order]
    for new_index, insn in enumerate(reordered):
        if not insn.deps:
            continue
        old_index = new_order[new_index]
        new_deps = []
        for distance, kind in insn.deps:
            producer = old_index - distance
            if producer < 0:
                # Virtual (cross-block) producer keeps its reach before the
                # block start.
                new_deps.append((new_index - producer, kind))
            else:
                new_position = position_of.get(producer)
                if new_position is None or new_position >= new_index:
                    # Should not happen (precedence respected); drop safely.
                    continue
                new_deps.append((new_index - new_position, kind))
        insn.deps = tuple(new_deps)
    block.instructions = reordered


def block_pressure(block: BasicBlock) -> int:
    """Maximum simultaneous live values implied by the dependence edges.

    Each in-block producer is live from its own position to its last
    consumer.  ``BASELINE_LIVE`` covers loop-carried values and globals that
    no in-block edge describes.
    """
    last_use: dict[int, int] = {}
    for index, insn in enumerate(block.instructions):
        for distance, _ in insn.deps:
            producer = index - distance
            if producer >= 0:
                last_use[producer] = max(last_use.get(producer, producer), index)
    events: list[tuple[int, int]] = []
    for producer, last in last_use.items():
        events.append((producer, +1))
        events.append((last, -1))
    events.sort()
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak + BASELINE_LIVE


class ScheduleInsnsPass(Pass):
    """``-fschedule-insns`` with interblock and speculative sub-flags."""

    name = "schedule"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fschedule_insns"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        interblock = not flags["fno_sched_interblock"]
        allow_speculation = not flags["fno_sched_spec"]
        region_cap = (
            MAX_REGION_INSNS if flags["fexpensive_optimizations"] else MAX_REGION_INSNS // 2
        )
        for function in program.functions.values():
            if interblock:
                merge_fallthrough_chains(function, stats, region_cap)
            for block in function.blocks.values():
                if len(block.instructions) < 3 or block.exec_count <= 0:
                    continue
                if list_schedule(block, allow_speculation):
                    stats["schedule.blocks_scheduled"] += 1
