"""Small late passes: peephole2 and sibling-call optimisation.

(``-fcaller-saves`` and ``-fregmove`` act inside the register allocator —
see :mod:`repro.compiler.regalloc` — since both are register-assignment
policies rather than standalone rewrites.)
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Opcode, Program, TAG_PEEPHOLE, TAG_SIBLING
from repro.compiler.passes.base import Pass, PassStats, delete_instructions, remove_tagged


class PeepholePass(Pass):
    """``-fpeephole2``: delete the redundant move/compare patterns the
    generator marked as peephole-removable."""

    name = "peephole"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fpeephole2"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                stats["peephole.removed"] += remove_tagged(block, TAG_PEEPHOLE)


class SiblingCallPass(Pass):
    """``-foptimize-sibling-calls``: tail call + RET → direct jump.

    A tagged CALL immediately followed by a RET becomes a JMP to the callee
    and the RET disappears: one fewer dynamic instruction and one fewer
    return-predictor event per execution.
    """

    name = "sibcall"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["foptimize_sibling_calls"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                for index, insn in enumerate(block.instructions):
                    if (
                        insn.opcode is Opcode.CALL
                        and insn.has_tag(TAG_SIBLING)
                        and index + 1 < len(block.instructions)
                        and block.instructions[index + 1].opcode is Opcode.RET
                    ):
                        delete_instructions(block, [index + 1])
                        insn.opcode = Opcode.JMP
                        stats["sibcall.converted"] += 1
                        break
