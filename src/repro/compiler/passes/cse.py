"""Local common-subexpression elimination (gcc's RTL ``cse`` pass).

CSE walks each block tracking the expressions already computed; a later
instruction recomputing an available expression (marked
``TAG_LOCAL_REDUNDANT`` by the generator) is deleted.

Two flags widen the availability scope exactly as in gcc:

* ``-fcse-follow-jumps`` propagates the available set across an
  unconditional fall-through edge (a block whose single successor is the
  next block in layout);
* ``-fcse-skip-blocks`` additionally propagates it over one intervening
  conditional diamond (availability from the block *before* the previous
  one when the previous block is a side arm).

``-frerun-cse-after-loop`` runs the same elimination again after the loop
optimisers and the unroller, catching the duplicate expressions that
unrolling introduces.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import TAG_LOCAL_REDUNDANT, Function, Program
from repro.compiler.passes.base import Pass, PassStats, delete_instructions


def _eliminate_in_function(
    function: Function,
    follow_jumps: bool,
    skip_blocks: bool,
) -> int:
    """One CSE sweep over ``function``; returns instructions removed.

    Availability-in per block:

    * base CSE: empty — each block is analysed in isolation;
    * ``follow_jumps``: inherited along single-successor fall-through
      chains (the previous block in layout whose only successor this is);
    * ``skip_blocks``: full forward availability dataflow — the
      intersection of all predecessors' available sets, which carries
      expressions around diamond side-blocks.  Layout order is a
      topological order of the forward CFG (the generator guarantees it
      and the structural passes preserve it), so one pass converges; back
      edges are treated optimistically, which is sound here because
      redundancy tags assert semantic redundancy.
    """
    removed = 0
    available_out: dict[str, set[str]] = {}
    predecessors: dict[str, list[str]] = {label: [] for label in function.layout}
    if skip_blocks:
        for label in function.layout:
            for successor in function.blocks[label].successors:
                if successor in predecessors:
                    predecessors[successor].append(label)

    layout = function.layout
    for position, label in enumerate(layout):
        block = function.blocks[label]
        available: set[str] = set()
        if skip_blocks:
            seen_sets = [
                available_out[pred]
                for pred in predecessors[label]
                if pred in available_out
            ]
            if seen_sets:
                available = set.intersection(*seen_sets)
        if follow_jumps and position > 0 and not available:
            previous = function.blocks[layout[position - 1]]
            if previous.successors == [label]:
                available |= available_out[previous.label]

        doomed: list[int] = []
        for index, insn in enumerate(block.instructions):
            if (
                insn.has_tag(TAG_LOCAL_REDUNDANT)
                and insn.expr is not None
                and insn.expr in available
            ):
                doomed.append(index)
            elif insn.expr is not None:
                available.add(insn.expr)
        removed += delete_instructions(block, doomed)
        available_out[label] = available
    return removed


class CsePass(Pass):
    """The first CSE run (always on at O1+; scope widened by two flags)."""

    name = "cse"

    def enabled(self, flags: FlagSetting) -> bool:
        # gcc runs CSE at every optimisation level the paper considers; the
        # *scope* flags are what the optimisation space varies.
        return True

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        follow = bool(flags["fcse_follow_jumps"])
        skip = bool(flags["fcse_skip_blocks"])
        for function in program.functions.values():
            stats["cse.removed"] += _eliminate_in_function(function, follow, skip)


class RerunCsePass(Pass):
    """``-frerun-cse-after-loop``: clean up after unrolling/loop opts."""

    name = "rerun_cse"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fre_run_cse_after_loop"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        follow = bool(flags["fcse_follow_jumps"])
        skip = bool(flags["fcse_skip_blocks"])
        for function in program.functions.values():
            stats["rerun_cse.removed"] += _eliminate_in_function(
                function, follow, skip
            )
