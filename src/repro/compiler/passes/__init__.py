"""Optimisation passes, one module per flag family of the paper's Figure 3."""

from repro.compiler.passes.align import AlignPass
from repro.compiler.passes.base import Pass, PassStats
from repro.compiler.passes.cse import CsePass, RerunCsePass
from repro.compiler.passes.gcse import GcseAfterReloadPass, GcsePass
from repro.compiler.passes.inline import InlineFunctionsPass
from repro.compiler.passes.jumps import CrossJumpPass, ThreadJumpsPass
from repro.compiler.passes.loopopt import (
    LoopInvariantMotionPass,
    RerunLoopOptPass,
    StrengthReducePass,
    UnswitchLoopsPass,
)
from repro.compiler.passes.misc import PeepholePass, SiblingCallPass
from repro.compiler.passes.reorder import ReorderBlocksPass
from repro.compiler.passes.schedule import ScheduleInsnsPass
from repro.compiler.passes.tree import TreePrePass, TreeVrpPass
from repro.compiler.passes.unroll import UnrollLoopsPass

__all__ = [
    "AlignPass",
    "CrossJumpPass",
    "CsePass",
    "GcseAfterReloadPass",
    "GcsePass",
    "InlineFunctionsPass",
    "LoopInvariantMotionPass",
    "Pass",
    "PassStats",
    "PeepholePass",
    "ReorderBlocksPass",
    "RerunCsePass",
    "RerunLoopOptPass",
    "ScheduleInsnsPass",
    "SiblingCallPass",
    "StrengthReducePass",
    "ThreadJumpsPass",
    "TreePrePass",
    "TreeVrpPass",
    "UnrollLoopsPass",
    "UnswitchLoopsPass",
]
