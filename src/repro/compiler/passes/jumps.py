"""Jump optimisations: jump threading and cross-jumping.

* ``-fthread-jumps`` collapses jump-to-jump trampolines: a block containing
  only an unconditional JMP (tagged by the generator) is deleted and its
  predecessors retargeted, saving a dynamic jump plus a taken-branch bubble
  per execution and a little code.
* ``-fcrossjumping`` merges duplicated tail blocks (identical code sequences
  reached from different predecessors, sharing a successor): one copy is
  kept — the hottest — and the rest are deleted with their predecessors
  redirected.  Static code shrinks; the redirected control transfers become
  taken branches, so the flag trades a few dynamic bubbles for instruction
  cache footprint — which is why it pays off on small caches.
"""

from __future__ import annotations

from collections import defaultdict

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    Opcode,
    Program,
    TAG_JUMP_CHAIN,
    TAG_MERGEABLE_TAIL,
    Function,
)
from repro.compiler.passes.base import Pass, PassStats


def _retarget(function: Function, old_label: str, new_label: str) -> None:
    for block in function.blocks.values():
        block.successors = [
            new_label if successor == old_label else successor
            for successor in block.successors
        ]


def _delete_block(function: Function, label: str) -> None:
    del function.blocks[label]
    function.layout.remove(label)
    for loop in function.loops:
        if label in loop.blocks:
            loop.blocks.remove(label)


class ThreadJumpsPass(Pass):
    """``-fthread-jumps``: remove jump-to-jump trampolines."""

    name = "thread_jumps"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fthread_jumps"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for label in list(function.layout):
                block = function.blocks.get(label)
                if block is None or label == function.layout[0]:
                    continue
                if (
                    len(block.instructions) == 1
                    and block.instructions[0].opcode is Opcode.JMP
                    and block.instructions[0].has_tag(TAG_JUMP_CHAIN)
                    and len(block.successors) == 1
                ):
                    target = block.successors[0]
                    if target == label:
                        continue
                    _retarget(function, label, target)
                    _delete_block(function, label)
                    stats["thread_jumps.removed"] += 1


class CrossJumpPass(Pass):
    """``-fcrossjumping``: merge duplicated tail blocks."""

    name = "crossjump"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fcrossjumping"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        # Without -fexpensive-optimizations gcc's crossjumping makes a
        # single, shallower pass; model that as requiring larger groups.
        min_group = 2 if flags["fexpensive_optimizations"] else 3
        for function in program.functions.values():
            groups: dict[str, list[str]] = defaultdict(list)
            for label in function.layout:
                block = function.blocks[label]
                group_keys = {
                    insn.expr
                    for insn in block.instructions
                    if insn.has_tag(TAG_MERGEABLE_TAIL) and insn.expr is not None
                }
                if len(group_keys) == 1:
                    groups[group_keys.pop()].append(label)
            for labels in groups.values():
                if len(labels) < min_group:
                    continue
                self._merge_group(function, labels, stats)

    def _merge_group(
        self, function: Function, labels: list[str], stats: PassStats
    ) -> None:
        blocks = [function.blocks[label] for label in labels]
        keeper = max(blocks, key=lambda block: (block.exec_count, block.label))
        for block in blocks:
            if block is keeper:
                continue
            keeper.exec_count += block.exec_count
            self._mark_taken_edges(function, block.label)
            _retarget(function, block.label, keeper.label)
            _delete_block(function, block.label)
            stats["crossjump.blocks_merged"] += 1
            stats["crossjump.insns_removed"] += len(block.instructions)

    @staticmethod
    def _mark_taken_edges(function: Function, doomed_label: str) -> None:
        """Predecessors that fell through into the doomed copy now jump."""
        position = function.layout.index(doomed_label)
        if position == 0:
            return
        previous = function.blocks[function.layout[position - 1]]
        if doomed_label in previous.successors and previous.terminator is not None:
            # The fall-through edge becomes a taken edge to the keeper.
            previous.taken_prob = max(previous.taken_prob, 0.95)
