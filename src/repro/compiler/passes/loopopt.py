"""Loop optimisations: invariant code motion, unswitching, strength reduction.

* Loop-invariant *ALU* motion runs unconditionally (gcc's first ``loop``
  pass is on at every level the paper considers); ``-frerun-loop-opt``
  performs a second sweep which catches the chained invariants (chain
  depth 2) the first sweep exposes.
* ``-funswitch-loops`` duplicates a loop whose body tests a loop-invariant
  condition: the hot version drops the per-iteration branch, at the cost of
  doubling the loop's code — the classic code-size/branch trade-off that
  small instruction caches punish.
* ``-fstrength-reduce`` rewrites induction-variable multiplies into adds,
  changing both the latency feeding dependent instructions and the MAC/ALU
  instruction mix.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    Instruction,
    Opcode,
    Program,
    TAG_INDUCTION,
    TAG_INVARIANT,
    Function,
    Loop,
    fresh_label,
)
from repro.compiler.passes.base import (
    Pass,
    PassStats,
    delete_instructions,
    insert_instructions,
    loop_preheader,
)


def _hoist_invariant_alu(
    function: Function, max_chain: int, stats: PassStats
) -> None:
    """Move invariant non-memory instructions to their loop preheader."""
    for loop in sorted(function.loops, key=lambda candidate: -candidate.depth):
        preheader = loop_preheader(function, loop)
        if preheader is None:
            continue
        for label in loop.blocks:
            block = function.blocks[label]
            movable = [
                (index, insn)
                for index, insn in enumerate(block.instructions)
                if insn.has_tag(TAG_INVARIANT)
                and not insn.opcode.is_memory
                and not insn.opcode.is_branch
                and insn.chain <= max_chain
            ]
            if not movable:
                continue
            delete_instructions(block, [index for index, _ in movable])
            hoisted = []
            for _, insn in movable:
                clone = insn.clone()
                clone.deps = ()
                clone.tags = clone.tags - {TAG_INVARIANT}
                hoisted.append(clone)
            position = len(preheader.instructions)
            if preheader.terminator is not None:
                position -= 1
            insert_instructions(preheader, position, hoisted)
            stats["loop.invariants_hoisted"] += len(hoisted)


class LoopInvariantMotionPass(Pass):
    """The always-on first invariant-motion sweep (chain depth 1)."""

    name = "loop_im"

    def enabled(self, flags: FlagSetting) -> bool:
        return True

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            _hoist_invariant_alu(function, max_chain=1, stats=stats)


class RerunLoopOptPass(Pass):
    """``-frerun-loop-opt``: the second sweep (chain depth 2)."""

    name = "rerun_loop_opt"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["frerun_loop_opt"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            _hoist_invariant_alu(function, max_chain=2, stats=stats)


class UnswitchLoopsPass(Pass):
    """``-funswitch-loops``: hoist invariant conditionals out of loops."""

    name = "unswitch"

    #: Do not unswitch loops whose body exceeds this size (gcc has the same
    #: kind of guard via --param max-unswitch-insns, which bounds the
    #: duplicated region similarly once inlining has grown the body).
    MAX_BODY_INSNS = 1400

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["funswitch_loops"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            # Snapshot: unswitching extends the loop list's block sets.
            for loop in list(function.loops):
                self._unswitch(function, loop, stats)

    def _unswitch(self, function: Function, loop: Loop, stats: PassStats) -> None:
        candidates = [
            label
            for label in loop.blocks
            if function.blocks[label].invariant_branch
            and function.blocks[label].terminator is not None
            and function.blocks[label].terminator.opcode is Opcode.BR
        ]
        if not candidates:
            return
        body_insns = sum(
            len(function.blocks[label].instructions) for label in loop.blocks
        )
        if body_insns > self.MAX_BODY_INSNS:
            return
        preheader = loop_preheader(function, loop)
        if preheader is None:
            return

        # Clone the whole loop body as the cold specialisation.  The clone
        # never executes under the profiled input (the invariant condition
        # takes one arm) but occupies code space adjacent to the hot loop.
        clone_map = {
            label: fresh_label(function.blocks, f"{label}.us") for label in loop.blocks
        }
        insert_at = max(function.layout.index(label) for label in loop.blocks) + 1
        for label in loop.blocks:
            clone = function.blocks[label].clone(clone_map[label])
            clone.exec_count = 0.0
            clone.successors = [
                clone_map.get(successor, successor) for successor in clone.successors
            ]
            function.blocks[clone.label] = clone
            function.layout.insert(insert_at, clone.label)
            insert_at += 1

        # The hot version loses the invariant branch: it becomes a
        # fall-through to its hot (first) successor.
        for label in candidates:
            block = function.blocks[label]
            terminator_index = len(block.instructions) - 1
            hot_successor = block.successors[0]
            delete_instructions(block, [terminator_index])
            block.successors = [hot_successor]
            block.taken_prob = 0.0
            block.invariant_branch = False
            stats["unswitch.branches_removed"] += 1

        # One switching test+branch executes per loop entry, in the
        # preheader.  If the preheader falls through, the branch becomes its
        # terminator with the cold clone as the (never-) taken target; if it
        # already has a terminator, only the comparison is added.
        test = Instruction(opcode=Opcode.CMP)
        if preheader.terminator is None:
            branch = Instruction(opcode=Opcode.BR)
            insert_instructions(
                preheader, len(preheader.instructions), [test, branch]
            )
            preheader.successors = [loop.header, clone_map[loop.header]]
            preheader.taken_prob = 0.0
        else:
            insert_instructions(
                preheader, len(preheader.instructions) - 1, [test]
            )

        # The clone belongs to the loop region for footprint purposes.
        loop.blocks.extend(clone_map.values())
        stats["unswitch.loops"] += 1


class StrengthReducePass(Pass):
    """``-fstrength-reduce``: induction-variable MUL → ADD."""

    name = "strength_reduce"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fstrength_reduce"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                for index, insn in enumerate(block.instructions):
                    if insn.opcode is Opcode.MUL and insn.has_tag(TAG_INDUCTION):
                        insn.opcode = Opcode.ADD
                        insn.latency = 1
                        self._retag_consumers(block, index)
                        stats["strength_reduce.converted"] += 1

    @staticmethod
    def _retag_consumers(block, producer_index: int) -> None:
        """Consumers saw a 3-cycle 'mac' producer; it is now a 1-cycle ALU."""
        for consumer_index in range(
            producer_index + 1, len(block.instructions)
        ):
            insn = block.instructions[consumer_index]
            if not insn.deps:
                continue
            insn.deps = tuple(
                (
                    (distance, "alu")
                    if consumer_index - distance == producer_index and kind == "mac"
                    else (distance, kind)
                )
                for distance, kind in insn.deps
            )
