"""Code alignment (``-falign-functions/-loops/-jumps/-labels``).

Alignment inserts padding so that fetch-critical code starts on a cache-line
or fetch-group boundary.  Padding costs code bytes (instruction-cache
footprint — significant on the small caches of the embedded space) and buys
a cheaper redirect: the simulator charges a smaller taken-branch bubble for
branches to aligned targets.

This pass runs last, after block reordering, because padding depends on the
final layout offsets.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Opcode, Program, Function
from repro.compiler.passes.base import Pass, PassStats

FUNCTION_ALIGN = 32
LOOP_ALIGN = 16
JUMP_ALIGN = 8
LABEL_ALIGN = 8


class AlignPass(Pass):
    """All four ``-falign-*`` flags, applied in one layout walk."""

    name = "align"

    def enabled(self, flags: FlagSetting) -> bool:
        return any(
            flags[name]
            for name in (
                "falign_functions",
                "falign_loops",
                "falign_jumps",
                "falign_labels",
            )
        )

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        align_functions = bool(flags["falign_functions"])
        align_loops = bool(flags["falign_loops"])
        align_jumps = bool(flags["falign_jumps"])
        align_labels = bool(flags["falign_labels"])

        offset = 0
        for function in program.functions.values():
            branch_targets = self._branch_targets(function)
            loop_headers = {loop.header for loop in function.loops}
            for position, label in enumerate(function.layout):
                block = function.blocks[label]
                block.pad_bytes = 0
                block.aligned = False

                alignment = 0
                if align_labels:
                    alignment = LABEL_ALIGN
                if align_jumps and label in branch_targets:
                    alignment = max(alignment, JUMP_ALIGN)
                if align_loops and label in loop_headers:
                    alignment = max(alignment, LOOP_ALIGN)
                if align_functions and position == 0:
                    alignment = max(alignment, FUNCTION_ALIGN)

                if alignment:
                    padding = (alignment - offset % alignment) % alignment
                    block.pad_bytes = padding
                    block.aligned = True
                    stats["align.pad_bytes"] += padding
                offset += block.size_bytes

    @staticmethod
    def _branch_targets(function: Function) -> set[str]:
        """Labels reached by a *taken* edge of some conditional branch."""
        targets: set[str] = set()
        for block in function.blocks.values():
            terminator = block.terminator
            if terminator is None:
                continue
            if terminator.opcode is Opcode.BR and len(block.successors) > 1:
                targets.update(block.successors[1:])
            elif terminator.opcode is Opcode.JMP and block.successors:
                targets.add(block.successors[0])
        return targets
