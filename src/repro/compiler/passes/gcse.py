"""Global common-subexpression elimination and its sub-passes.

This module implements gcc's ``-fgcse`` family:

* the core global elimination (availability tracked across blocks);
* load motion (on by default, disabled by ``-fno-gcse-lm``): loop-invariant
  loads are hoisted to the loop preheader;
* store motion (``-fgcse-sm``): loop-invariant stores are sunk to the loop
  exit;
* load-after-store elimination (``-fgcse-las``): loads forwarded from a
  preceding store to the same location are deleted;
* ``--param max-gcse-passes``: repeated sweeps discover *chained*
  redundancies (an expression only exposed as redundant once an earlier
  sweep removed its producer's duplicate) — instructions carry a ``chain``
  depth and sweep ``p`` may remove depths ≤ ``p``.  Without
  ``-fexpensive-optimizations`` only one sweep runs, as in gcc;
* ``-fgcse-after-reload``: a post-register-allocation cleanup that deletes
  redundant spill reloads.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    Opcode,
    Program,
    TAG_AFTER_STORE,
    TAG_GLOBAL_REDUNDANT,
    TAG_INVARIANT,
    TAG_INVARIANT_STORE,
    TAG_SPILL,
    Function,
    Loop,
)
from repro.compiler.passes.base import (
    Pass,
    PassStats,
    delete_instructions,
    insert_instructions,
    loop_preheader,
)


def _global_sweeps(function: Function, max_depth: int) -> int:
    """Remove globally redundant instructions with chain depth ≤ max_depth.

    Availability is approximated by layout order, which the generator
    guarantees to be a topological order of the acyclic part of the CFG —
    an expression computed in an earlier block dominates later recomputation
    sites for tagged instructions.
    """
    removed = 0
    available: set[str] = set()
    for label in function.layout:
        block = function.blocks[label]
        doomed: list[int] = []
        for index, insn in enumerate(block.instructions):
            if (
                insn.has_tag(TAG_GLOBAL_REDUNDANT)
                and insn.expr is not None
                and insn.expr in available
                and insn.chain <= max_depth
            ):
                doomed.append(index)
            elif insn.expr is not None:
                available.add(insn.expr)
        removed += delete_instructions(block, doomed)
    return removed


def _hoistable_loads(function: Function, loop: Loop) -> list[tuple[str, int]]:
    """(block label, index) of loop-invariant loads in ``loop``'s body."""
    found = []
    for label in loop.blocks:
        block = function.blocks[label]
        for index, insn in enumerate(block.instructions):
            if (
                insn.opcode is Opcode.LOAD
                and insn.has_tag(TAG_INVARIANT)
                and insn.stride == 0
            ):
                found.append((label, index))
    return found


def _sinkable_stores(function: Function, loop: Loop) -> list[tuple[str, int]]:
    found = []
    for label in loop.blocks:
        block = function.blocks[label]
        for index, insn in enumerate(block.instructions):
            if insn.opcode is Opcode.STORE and insn.has_tag(TAG_INVARIANT_STORE):
                found.append((label, index))
    return found


def _loop_exit(function: Function, loop: Loop):
    """First block outside the loop reached from inside it."""
    member = set(loop.blocks)
    for label in loop.blocks:
        for successor in function.blocks[label].successors:
            if successor not in member:
                return function.blocks[successor]
    return None


class GcsePass(Pass):
    """``-fgcse`` with its load/store-motion and LAS sub-flags."""

    name = "gcse"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fgcse"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        max_passes = int(flags["param_max_gcse_passes"])
        if not flags["fexpensive_optimizations"]:
            max_passes = 1
        load_motion = not flags["fno_gcse_lm"]
        store_motion = bool(flags["fgcse_sm"])
        las = bool(flags["fgcse_las"])

        for function in program.functions.values():
            for sweep in range(1, max_passes + 1):
                removed = _global_sweeps(function, sweep)
                stats["gcse.removed"] += removed
                if removed == 0 and sweep > 1:
                    break

            if las:
                for block in function.blocks.values():
                    doomed = [
                        index
                        for index, insn in enumerate(block.instructions)
                        if insn.opcode is Opcode.LOAD and insn.has_tag(TAG_AFTER_STORE)
                    ]
                    stats["gcse.las_removed"] += delete_instructions(block, doomed)

            # Innermost loops first so a load hoisted from a nested loop can
            # in principle be seen by an outer sweep; each hoist moves the
            # access from `iterations` executions to `entries` executions.
            loops = sorted(function.loops, key=lambda loop: -loop.depth)
            for loop in loops:
                if load_motion:
                    self._hoist(function, loop, stats)
                if store_motion:
                    self._sink(function, loop, stats)

    def _hoist(self, function: Function, loop: Loop, stats: PassStats) -> None:
        preheader = loop_preheader(function, loop)
        if preheader is None:
            return
        for label, index in reversed(_hoistable_loads(function, loop)):
            block = function.blocks[label]
            insn = block.instructions[index]
            delete_instructions(block, [index])
            hoisted = insn.clone()
            hoisted.deps = ()  # operands are invariant, available long before
            position = len(preheader.instructions)
            if preheader.terminator is not None:
                position -= 1
            insert_instructions(preheader, position, [hoisted])
            stats["gcse.loads_hoisted"] += 1

    def _sink(self, function: Function, loop: Loop, stats: PassStats) -> None:
        exit_block = _loop_exit(function, loop)
        if exit_block is None:
            return
        for label, index in reversed(_sinkable_stores(function, loop)):
            block = function.blocks[label]
            insn = block.instructions[index]
            delete_instructions(block, [index])
            sunk = insn.clone()
            sunk.deps = ()
            insert_instructions(exit_block, 0, [sunk])
            stats["gcse.stores_sunk"] += 1


class GcseAfterReloadPass(Pass):
    """``-fgcse-after-reload``: delete redundant spill reloads post-RA.

    After register allocation some reloads are redundant because the spilled
    value is still live in a call-clobbered or temporarily free register.
    gcc's post-reload GCSE catches roughly the easy half of them; here every
    second reload per block (deterministically, by position) is removable.
    """

    name = "gcse_after_reload"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["fgcse"]) and bool(flags["fgcse_after_reload"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            for block in function.blocks.values():
                reload_indices = [
                    index
                    for index, insn in enumerate(block.instructions)
                    if insn.opcode is Opcode.LOAD and insn.has_tag(TAG_SPILL)
                ]
                doomed = reload_indices[1::2]
                stats["gcse.reloads_removed"] += delete_instructions(block, doomed)
