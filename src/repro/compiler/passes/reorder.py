"""Basic-block reordering (``-freorder-blocks``).

The pass lays out each function as hot fall-through chains, the classic
Pettis–Hansen bottom-up approach simplified to greedy chain following:

* starting from the entry block, repeatedly place the unplaced successor
  with the highest incoming edge frequency;
* cold leftovers (never-executed clones, error paths) are appended at the
  end, pulling them out of the hot loops' cache span;
* a conditional branch whose *taken* target gets placed as the fall-through
  has its polarity flipped (``taken_prob`` inverts);
* an unconditional JMP whose target ends up immediately after its block is
  deleted; conversely a block whose old fall-through successor moved away
  gains an explicit JMP.

The measurable effects: fewer taken branches (fetch bubbles and BTB
pressure) and a tighter hot-loop footprint — with the cost of extra jumps on
cold paths.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Instruction, Opcode, Program, Function
from repro.compiler.passes.base import Pass, PassStats, delete_instructions, insert_instructions


def _edge_frequency(block, successor_label: str) -> float:
    """Approximate dynamic frequency of the edge block → successor."""
    if not block.successors:
        return 0.0
    if len(block.successors) == 1:
        return block.exec_count
    if successor_label == block.successors[0]:
        return block.exec_count * (1.0 - block.taken_prob)
    return block.exec_count * block.taken_prob


class ReorderBlocksPass(Pass):
    """``-freorder-blocks``: hot-path-first code layout."""

    name = "reorder"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["freorder_blocks"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        for function in program.functions.values():
            self._reorder_function(function, stats)

    def _reorder_function(self, function: Function, stats: PassStats) -> None:
        if len(function.layout) < 3:
            return
        entry = function.layout[0]
        placed: list[str] = []
        unplaced = set(function.layout)

        current = entry
        while True:
            placed.append(current)
            unplaced.discard(current)
            block = function.blocks[current]
            candidates = [
                successor for successor in block.successors if successor in unplaced
            ]
            if candidates:
                current = max(
                    candidates,
                    key=lambda label: (_edge_frequency(block, label), label),
                )
                continue
            # Chain ended: restart from the hottest unplaced block.
            if not unplaced:
                break
            current = max(
                unplaced,
                key=lambda label: (function.blocks[label].exec_count, label),
            )

        if placed == function.layout:
            return
        function.layout = placed
        self._fix_terminators(function, stats)
        stats["reorder.functions"] += 1

    def _fix_terminators(self, function: Function, stats: PassStats) -> None:
        layout = function.layout
        next_of = {
            label: layout[position + 1] if position + 1 < len(layout) else None
            for position, label in enumerate(layout)
        }
        for label in layout:
            block = function.blocks[label]
            following = next_of[label]
            terminator = block.terminator

            if terminator is not None and terminator.opcode is Opcode.BR:
                if len(block.successors) == 2:
                    fallthrough, target = block.successors
                    if target == following:
                        # Flip polarity: the old taken target now falls
                        # through and the old fall-through is branched to.
                        block.successors = [target, fallthrough]
                        block.taken_prob = 1.0 - block.taken_prob
                        stats["reorder.branches_flipped"] += 1
                    elif fallthrough != following:
                        # Neither successor follows: an explicit jump to the
                        # old fall-through is required after the branch.
                        jump = Instruction(opcode=Opcode.JMP)
                        insert_instructions(
                            block, len(block.instructions), [jump]
                        )
                        stats["reorder.jumps_added"] += 1
            elif terminator is not None and terminator.opcode is Opcode.JMP:
                if block.successors and block.successors[0] == following:
                    delete_instructions(block, [len(block.instructions) - 1])
                    block.taken_prob = 0.0
                    stats["reorder.jumps_removed"] += 1
            elif terminator is None and block.successors:
                if block.successors[0] != following and following is not None:
                    jump = Instruction(opcode=Opcode.JMP)
                    insert_instructions(block, len(block.instructions), [jump])
                    block.taken_prob = 1.0
                    stats["reorder.jumps_added"] += 1
