"""Function inlining (``-finline-functions`` and its six parameters).

Inlining a call site splits the calling block around the CALL, clones the
callee's body between the two halves, elides the callee's prologue/epilogue
and RET, and scales the execution profile: the cloned blocks inherit the
call site's frequency while the out-of-line callee keeps the remainder.  A
callee whose every dynamic and static call disappears is dropped from the
binary entirely, as a linker would.

The decision heuristics mirror gcc 4.2's:

* callees no larger than ``--param inline-call-cost`` are always inlined
  (the call overhead dominates the body);
* otherwise the callee must fit ``--param max-inline-insns-auto``;
* the caller may not grow past
  ``max(large-function-insns, original_size × (1 + large-function-growth%))``;
* the whole unit may not grow past
  ``max(large-unit-insns, original_unit × (1 + inline-unit-growth%))``.

Only leaf functions (no loops, no calls) marked ``inline_candidate`` are
considered, which is what gcc's auto-inlining overwhelmingly picks.  The
performance trade-off is the paper's central one: inlining into a hot loop
removes call/return overhead and widens the scheduling window, but grows the
loop's code footprint — disastrous on small instruction caches.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    BasicBlock,
    Opcode,
    Program,
    TAG_EPILOGUE,
    TAG_PROLOGUE,
    Function,
    fresh_label,
)
from repro.compiler.passes.base import Pass, PassStats, remove_tagged


class InlineFunctionsPass(Pass):
    """``-finline-functions`` with the paper's six inlining parameters."""

    name = "inline"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["finline_functions"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        call_cost = int(flags["param_inline_call_cost"])
        max_auto = int(flags["param_max_inline_insns_auto"])
        large_fn = int(flags["param_large_function_insns"])
        fn_growth = int(flags["param_large_function_growth"])
        large_unit = int(flags["param_large_unit_insns"])
        unit_growth = int(flags["param_inline_unit_growth"])

        unit_size = program.size_insns
        unit_cap = max(large_unit, int(unit_size * (1 + unit_growth / 100)))

        for name in sorted(program.functions):
            caller = program.functions.get(name)
            if caller is None:
                continue
            original_size = caller.size_insns
            caller_cap = max(large_fn, int(original_size * (1 + fn_growth / 100)))
            for site in list(caller.call_sites()):
                block_label, _, call = site
                callee = program.functions.get(call.callee)
                if callee is None or not self._inlinable(caller, callee):
                    continue
                callee_size = callee.size_insns
                if callee_size > call_cost and callee_size > max_auto:
                    continue
                if caller.size_insns + callee_size > caller_cap:
                    stats["inline.blocked_function_growth"] += 1
                    continue
                if program.size_insns + callee_size > unit_cap:
                    stats["inline.blocked_unit_growth"] += 1
                    continue
                # Re-locate the call: earlier inlines may have moved it.
                located = self._locate_call(caller, call)
                if located is None:
                    continue
                self._inline_site(program, caller, located[0], located[1], stats)

        self._drop_dead_callees(program, stats)

    @staticmethod
    def _inlinable(caller: Function, callee: Function) -> bool:
        if not callee.inline_candidate or callee.name == caller.name:
            return False
        if callee.loops:
            return False
        return all(
            insn.opcode is not Opcode.CALL
            for block in callee.blocks.values()
            for insn in block.instructions
        )

    @staticmethod
    def _locate_call(caller: Function, call) -> tuple[str, int] | None:
        for label in caller.layout:
            block = caller.blocks[label]
            for index, insn in enumerate(block.instructions):
                if insn is call:
                    return label, index
        return None

    def _inline_site(
        self,
        program: Program,
        caller: Function,
        block_label: str,
        call_index: int,
        stats: PassStats,
    ) -> None:
        block = caller.blocks[block_label]
        callee = program.functions[block.instructions[call_index].callee]
        site_count = block.exec_count
        ratio = 0.0
        if callee.entry_count > 0:
            ratio = min(site_count / callee.entry_count, 1.0)

        # --- split the calling block around the CALL -----------------------
        continuation_label = fresh_label(caller.blocks, f"{block_label}.cont")
        post_insns = block.instructions[call_index + 1 :]
        inlined_insns = sum(
            len(b.instructions) for b in callee.blocks.values()
        )
        continuation = BasicBlock(
            label=continuation_label,
            instructions=post_insns,
            successors=block.successors,
            exec_count=block.exec_count,
            taken_prob=block.taken_prob,
            predictability=block.predictability,
            invariant_branch=block.invariant_branch,
        )
        # Values flowing from the first half to the second now cross the
        # whole inlined body instead of a single CALL instruction.
        self._stretch_crossing_deps(continuation, call_index, inlined_insns - 1)
        block.instructions = block.instructions[:call_index]
        block.taken_prob = 0.0
        block.invariant_branch = False

        # --- clone the callee body -----------------------------------------
        clone_map = {
            label: fresh_label(
                set(caller.blocks) | {continuation_label},
                f"{block_label}.in.{label}",
            )
            for label in callee.layout
        }
        clones: list[BasicBlock] = []
        for label in callee.layout:
            clone = callee.blocks[label].clone(clone_map[label])
            clone.exec_count = callee.blocks[label].exec_count * ratio
            clone.is_loop_header = False
            clone.successors = [
                clone_map.get(successor, successor) for successor in clone.successors
            ]
            remove_tagged(clone, TAG_PROLOGUE)
            remove_tagged(clone, TAG_EPILOGUE)
            self._rewrite_returns(clone, continuation_label)
            clones.append(clone)

        # --- wire it together ------------------------------------------------
        entry_clone = clones[0].label
        block.successors = [entry_clone]
        insert_at = caller.layout.index(block_label) + 1
        for clone in clones:
            caller.blocks[clone.label] = clone
            caller.layout.insert(insert_at, clone.label)
            insert_at += 1
        caller.blocks[continuation_label] = continuation
        caller.layout.insert(insert_at, continuation_label)

        # Every loop enclosing the call site absorbs the inlined body.
        new_labels = [clone.label for clone in clones] + [continuation_label]
        for loop in caller.loops:
            if block_label in loop.blocks:
                loop.blocks.extend(new_labels)

        # --- profile bookkeeping ---------------------------------------------
        remaining = 1.0 - ratio
        for callee_block in callee.blocks.values():
            callee_block.exec_count *= remaining
        callee.entry_count = max(callee.entry_count - site_count, 0.0)
        stats["inline.sites"] += 1
        stats["inline.insns_added"] += sum(len(c.instructions) for c in clones)

    @staticmethod
    def _stretch_crossing_deps(
        continuation: BasicBlock, call_index: int, growth: int
    ) -> None:
        """Deps reaching back past the old CALL stretch by the body length."""
        if growth <= 0:
            return
        for new_index, insn in enumerate(continuation.instructions):
            if not insn.deps:
                continue
            old_index = new_index + call_index + 1
            new_deps = []
            for distance, kind in insn.deps:
                producer = old_index - distance
                if producer <= call_index:
                    new_deps.append((distance + growth, kind))
                else:
                    new_deps.append((distance, kind))
            insn.deps = tuple(new_deps)

    @staticmethod
    def _rewrite_returns(clone: BasicBlock, continuation_label: str) -> None:
        doomed = [
            index
            for index, insn in enumerate(clone.instructions)
            if insn.opcode is Opcode.RET
        ]
        if doomed:
            from repro.compiler.passes.base import delete_instructions

            delete_instructions(clone, doomed)
            clone.successors = [continuation_label]
            clone.taken_prob = 0.0
        elif not clone.successors:
            clone.successors = [continuation_label]

    @staticmethod
    def _drop_dead_callees(program: Program, stats: PassStats) -> None:
        """Remove callees with no surviving static call and no executions."""
        static_callees = {
            insn.callee
            for function in program.functions.values()
            for block in function.blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.CALL
        }
        for name in list(program.functions):
            function = program.functions[name]
            if (
                name != program.entry
                and name not in static_callees
                and function.inline_candidate
                and function.entry_count <= 1e-9
            ):
                del program.functions[name]
                stats["inline.functions_dropped"] += 1
