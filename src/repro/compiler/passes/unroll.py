"""Loop unrolling (``-funroll-loops`` and its two parameters).

Unrolling an innermost loop by factor ``u`` clones the loop body ``u - 1``
times, chains the copies by fall-through, and keeps a single back-edge test
in the last copy.  The effects are exactly the real ones:

* the per-iteration exit branch executes ``u`` times less often — branch
  and BTB pressure drop;
* the loop's code footprint grows by a factor of ``u`` — instruction-cache
  pressure rises, which is why small-I-cache microarchitectures dislike it;
* copies are independent when the loop carries no serial dependence, giving
  the (interblock) scheduler a wider window; a loop-carried dependence adds
  an explicit serialising edge between consecutive copies, so unrolling a
  pointer-chase or hash loop buys little ILP;
* invariant recomputations in the clones are tagged locally redundant, so a
  following ``-frerun-cse-after-loop`` can clean them up — the classic
  unroll/re-CSE interaction.

The unroll factor is ``min(max_unroll_times, max_unrolled_insns // body,
trip_count)``, mirroring gcc's two ``--param`` knobs.  Programs whose hot
loops are already unrolled in the source (e.g. rijndael) present large
bodies and small trip counts, so the factor collapses to 1 and the pass
correctly does nothing.
"""

from __future__ import annotations

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    Opcode,
    Program,
    TAG_INVARIANT,
    TAG_LOCAL_REDUNDANT,
    Function,
    Loop,
    fresh_label,
)
from repro.compiler.passes.base import Pass, PassStats, delete_instructions


def unroll_factor(
    body_insns: int, trip_count: float, max_times: int, max_insns: int
) -> int:
    """The factor gcc's heuristics would pick for this loop."""
    if body_insns <= 0:
        return 1
    by_size = max_insns // body_insns
    factor = min(max_times, by_size, int(trip_count))
    return max(factor, 1)


class UnrollLoopsPass(Pass):
    """``-funroll-loops`` with ``max-unroll-times``/``max-unrolled-insns``."""

    name = "unroll"

    def enabled(self, flags: FlagSetting) -> bool:
        return bool(flags["funroll_loops"])

    def run(self, program: Program, flags: FlagSetting, stats: PassStats) -> None:
        max_times = int(flags["param_max_unroll_times"])
        max_insns = int(flags["param_max_unrolled_insns"])
        for function in program.functions.values():
            for loop in function.innermost_loops():
                self._unroll(function, loop, max_times, max_insns, stats)

    def _unroll(
        self,
        function: Function,
        loop: Loop,
        max_times: int,
        max_insns: int,
        stats: PassStats,
    ) -> None:
        body_labels = [label for label in function.layout if label in set(loop.blocks)]
        body_insns = sum(
            len(function.blocks[label].instructions) for label in body_labels
        )
        factor = unroll_factor(body_insns, loop.trip_count, max_times, max_insns)
        if factor < 2:
            return

        latch_label = self._find_latch(function, loop)
        if latch_label is None or latch_label != body_labels[-1]:
            # Only bottom-tested loops whose latch is the last body block in
            # layout are unrolled (the generator emits exactly this shape).
            return

        serial_kind = self._carried_kind(loop)
        control_labels = {body_labels[0], latch_label}
        # Snapshot pristine templates before any mutation: later copies must
        # not inherit the back-edge deletions applied to earlier ones.
        templates = {label: function.blocks[label].clone() for label in body_labels}

        insert_at = function.layout.index(latch_label) + 1
        previous_latch = latch_label
        for copy in range(1, factor):
            clone_map = {
                label: fresh_label(function.blocks, f"{label}.u{copy}")
                for label in body_labels
            }
            for label in body_labels:
                clone = templates[label].clone(clone_map[label])
                clone.is_loop_header = False
                # Internal edges go to this copy's blocks; the back edge to
                # the header stays on the original (it either dies when the
                # next copy is chained in, or survives as the single
                # remaining loop branch in the last copy).
                clone.successors = [
                    successor
                    if successor == loop.header
                    else clone_map.get(successor, successor)
                    for successor in clone.successors
                ]
                if serial_kind is not None and clone.instructions:
                    first = clone.instructions[0]
                    first.deps = first.deps + ((1, serial_kind),)
                for insn in clone.instructions:
                    if insn.expr is None or insn.opcode.is_memory:
                        continue
                    if insn.has_tag(TAG_INVARIANT) or label in control_labels:
                        # Replicated loop control (induction updates, exit
                        # comparisons) and invariant recomputations are
                        # redundant across copies; a following CSE rerun
                        # folds them — gcc fuses induction increments the
                        # same way when it unrolls counted loops.
                        insn.tags = insn.tags | {TAG_LOCAL_REDUNDANT}
                function.blocks[clone.label] = clone
                function.layout.insert(insert_at, clone.label)
                insert_at += 1
                loop.blocks.append(clone.label)

            # The previous copy's latch no longer loops back: its exit test
            # is deleted (the trip count is known to cover all copies) and
            # it falls through into this copy's first block.
            previous = function.blocks[previous_latch]
            terminator_index = len(previous.instructions) - 1
            if (
                previous.terminator is not None
                and previous.terminator.opcode in (Opcode.BR, Opcode.JMP)
            ):
                delete_instructions(previous, [terminator_index])
                previous.successors = [clone_map[body_labels[0]]]
                previous.taken_prob = 0.0
                stats["unroll.branches_removed"] += 1
            previous_latch = clone_map[latch_label]

        # Profile: the same dynamic work is spread over `factor` copies and
        # the loop now iterates `factor` times less often.
        for label in loop.blocks:
            function.blocks[label].exec_count /= factor
        loop.trip_count = max(loop.trip_count / factor, 1.0)
        stats["unroll.loops"] += 1
        stats["unroll.factor_total"] += factor

    @staticmethod
    def _find_latch(function: Function, loop: Loop) -> str | None:
        for label in loop.blocks:
            if loop.header in function.blocks[label].successors:
                return label
        return None

    @staticmethod
    def _carried_kind(loop: Loop) -> str | None:
        """Dependence kind expressing the loop-carried serial chain."""
        latency = loop.carried_dep_latency
        if latency <= 0:
            return None
        if latency >= 3:
            return "load"  # pointer chase: next iteration needs the load
        if latency == 2:
            return "mac"
        return "alu"
