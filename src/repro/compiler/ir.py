"""Intermediate representation for the mini optimising compiler.

The IR is a conventional three-address representation structured as
programs → functions → basic blocks → instructions, with an explicit loop
forest and an explicit dynamic execution profile.  It is deliberately rich
enough that every optimisation flag of the paper's Figure 3 corresponds to a
genuine code transformation:

* instructions carry *value keys* (``expr``) so the CSE/GCSE family can
  discover and delete recomputations;
* memory instructions carry a data *region* and a per-iteration *stride* so
  the cache model sees real access streams and load/store motion is
  meaningful;
* instructions carry intra-block dependence edges (``deps``, as distances to
  producer instructions) and producer latencies, so instruction scheduling is
  a real list-scheduling problem and its register-pressure cost is measurable;
* blocks carry execution counts (the profile), branch behaviour, and layout
  order matters — block reordering and alignment change the binary.

Dynamic execution counts are represented as floats; a "run" of a program is
fully described by the profile, which the simulator consumes.  The IR is
deterministic and owns no randomness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


class Opcode(enum.Enum):
    """Machine-level operation classes of the XScale-style target.

    The categories mirror the functional units tracked by the paper's
    performance counters (Table 1): ALU, MAC (multiply-accumulate) and the
    barrel shifter, plus memory and control flow.
    """

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    MOV = "mov"
    MUL = "mul"
    MAC = "mac"
    SHL = "shl"
    SHR = "shr"
    LOAD = "load"
    STORE = "store"
    BR = "br"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    NOP = "nop"

    @property
    def category(self) -> str:
        """Functional-unit category: alu, mac, shift, load, store or ctrl."""
        return _CATEGORY[self]

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_branch(self) -> bool:
        """Control transfers that consult the branch predictor / BTB."""
        return self in (Opcode.BR, Opcode.JMP, Opcode.CALL, Opcode.RET)

    @property
    def register_reads(self) -> int:
        """Register-file read ports consumed, for the regfile counter."""
        return _REG_READS[self]


_CATEGORY = {
    Opcode.ADD: "alu",
    Opcode.SUB: "alu",
    Opcode.AND: "alu",
    Opcode.OR: "alu",
    Opcode.XOR: "alu",
    Opcode.CMP: "alu",
    Opcode.MOV: "alu",
    Opcode.MUL: "mac",
    Opcode.MAC: "mac",
    Opcode.SHL: "shift",
    Opcode.SHR: "shift",
    Opcode.LOAD: "load",
    Opcode.STORE: "store",
    Opcode.BR: "ctrl",
    Opcode.JMP: "ctrl",
    Opcode.CALL: "ctrl",
    Opcode.RET: "ctrl",
    Opcode.NOP: "ctrl",
}

_REG_READS = {
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.CMP: 2,
    Opcode.MOV: 1,
    Opcode.MUL: 2,
    Opcode.MAC: 3,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.LOAD: 1,
    Opcode.STORE: 2,
    Opcode.BR: 1,
    Opcode.JMP: 0,
    Opcode.CALL: 0,
    Opcode.RET: 0,
    Opcode.NOP: 0,
}

#: Default producer latencies in cycles (dcache-hit latency for loads is
#: machine dependent and substituted by the simulator; 3 is the XScale value).
DEFAULT_LATENCY = {
    "alu": 1,
    "shift": 1,
    "mac": 3,
    "load": 3,
    "store": 1,
    "ctrl": 1,
}

#: Dependence-edge producer kinds; ``load`` edges resolve to the machine's
#: D-cache hit latency at simulation time, the rest are fixed.
DEP_KINDS = ("alu", "mac", "shift", "load", "carried")

#: Fixed instruction width of the target ISA in bytes (ARM/XScale).
INSTRUCTION_BYTES = 4


# Semantic tags attached by the program generator and honoured by passes.
TAG_LOCAL_REDUNDANT = "local_redundant"  # removable by CSE within a block
TAG_GLOBAL_REDUNDANT = "global_redundant"  # removable by GCSE across blocks
TAG_PARTIAL_REDUNDANT = "partial_redundant"  # removable by tree-PRE
TAG_RANGE_CHECK = "range_check"  # removable by tree-VRP
TAG_INVARIANT = "invariant"  # loop-invariant load/ALU, hoistable
TAG_INVARIANT_STORE = "invariant_store"  # sinkable by store motion
TAG_AFTER_STORE = "after_store"  # load forwarded from a prior store (LAS)
TAG_INDUCTION = "induction"  # MUL reducible to ADD by strength reduction
TAG_PEEPHOLE = "peephole"  # removable by peephole2
TAG_JUMP_CHAIN = "jump_chain"  # JMP-to-JMP removable by jump threading
TAG_MERGEABLE_TAIL = "mergeable_tail"  # identical tail, crossjump candidate
TAG_SIBLING = "sibling"  # tail call, sibling-call candidate
TAG_SPILL = "spill"  # inserted by the register allocator
TAG_PROLOGUE = "prologue"  # frame setup, elided when inlined
TAG_EPILOGUE = "epilogue"  # frame teardown, elided when inlined

ALL_TAGS = frozenset(
    {
        TAG_LOCAL_REDUNDANT,
        TAG_GLOBAL_REDUNDANT,
        TAG_PARTIAL_REDUNDANT,
        TAG_RANGE_CHECK,
        TAG_INVARIANT,
        TAG_INVARIANT_STORE,
        TAG_AFTER_STORE,
        TAG_INDUCTION,
        TAG_PEEPHOLE,
        TAG_JUMP_CHAIN,
        TAG_MERGEABLE_TAIL,
        TAG_SIBLING,
        TAG_SPILL,
        TAG_PROLOGUE,
        TAG_EPILOGUE,
    }
)


@dataclass
class Instruction:
    """One IR instruction.

    Attributes:
        opcode: operation class.
        expr: value key identifying the computation.  Two instructions with
            the same non-``None`` ``expr`` compute the same value; redundancy
            elimination passes may delete the later one.
        region: name of the data region accessed (memory ops only).
        stride: bytes the access address advances per loop iteration of the
            enclosing innermost loop.  ``0`` means loop invariant.
        deps: dependence edges ``(distance, kind)``: the instruction consumes
            a value produced ``distance`` instructions earlier in the dynamic
            stream by a producer of the given kind (see ``DEP_KINDS``).
            Distances may exceed the instruction's block-local index, which
            denotes a producer in the fall-through predecessor.
        latency: producer latency in cycles of this instruction's result.
        tags: semantic markers honoured by specific passes (see TAG_*).
        callee: callee function name (CALL only).
        chain: redundancy discovery depth; a GCSE sweep removes redundant
            instructions with ``chain`` ≤ the number of passes run so far.
    """

    opcode: Opcode
    expr: str | None = None
    region: str | None = None
    stride: int = 0
    deps: tuple[tuple[int, str], ...] = ()
    latency: int = 0
    tags: frozenset[str] = frozenset()
    callee: str | None = None
    chain: int = 1

    def __post_init__(self) -> None:
        if self.latency == 0:
            self.latency = DEFAULT_LATENCY[self.opcode.category]
        if self.opcode.is_memory and self.region is None:
            raise ValueError(f"{self.opcode} requires a data region")
        if self.opcode is Opcode.CALL and self.callee is None:
            raise ValueError("CALL requires a callee")
        unknown = self.tags - ALL_TAGS
        if unknown:
            raise ValueError(f"unknown instruction tags: {sorted(unknown)}")
        for distance, kind in self.deps:
            if distance < 1:
                raise ValueError(f"dep distance must be >= 1: {distance}")
            if kind not in DEP_KINDS:
                raise ValueError(f"unknown dep kind {kind!r}")

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def clone(self) -> "Instruction":
        return replace(self)

    @property
    def size_bytes(self) -> int:
        return INSTRUCTION_BYTES


@dataclass
class BasicBlock:
    """A straight-line instruction sequence with a single entry and exit.

    ``exec_count`` is the dynamic execution count of the block from the
    program's profile; it is a float so that scaled workloads (e.g. the
    paper's 100M-instruction inputs) can be modelled without materialising
    traces.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[str] = field(default_factory=list)
    exec_count: float = 0.0
    taken_prob: float = 0.0
    predictability: float = 0.97
    invariant_branch: bool = False
    pad_bytes: int = 0
    aligned: bool = False
    is_loop_header: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ValueError(f"taken_prob out of range: {self.taken_prob}")
        if not 0.0 <= self.predictability <= 1.0:
            raise ValueError(f"predictability out of range: {self.predictability}")

    @property
    def size_bytes(self) -> int:
        """Static code bytes of the block, including alignment padding."""
        return len(self.instructions) * INSTRUCTION_BYTES + self.pad_bytes

    @property
    def terminator(self) -> Instruction | None:
        """The terminating control-flow instruction, if any."""
        if self.instructions and self.instructions[-1].opcode.is_branch:
            return self.instructions[-1]
        return None

    def body_and_terminator(self) -> tuple[list[Instruction], Instruction | None]:
        """Split the block into its straight-line body and its terminator."""
        term = self.terminator
        if term is None:
            return list(self.instructions), None
        return list(self.instructions[:-1]), term

    def clone(self, new_label: str | None = None) -> "BasicBlock":
        return BasicBlock(
            label=new_label or self.label,
            instructions=[insn.clone() for insn in self.instructions],
            successors=list(self.successors),
            exec_count=self.exec_count,
            taken_prob=self.taken_prob,
            predictability=self.predictability,
            invariant_branch=self.invariant_branch,
            pad_bytes=self.pad_bytes,
            aligned=self.aligned,
            is_loop_header=self.is_loop_header,
        )


@dataclass
class Loop:
    """A natural loop: a header plus body blocks, with profile information.

    ``trip_count`` is the average number of iterations per entry and
    ``entries`` the dynamic number of times the loop is entered, so the body
    executes ``entries * trip_count`` times.  ``carried_dep_latency`` > 0
    marks a serial loop-carried dependence (e.g. a pointer chase or a hash
    feedback), which caps the ILP that unrolling can expose.
    """

    header: str
    blocks: list[str]
    trip_count: float
    entries: float
    depth: int = 1
    parent: str | None = None
    carried_dep_latency: int = 0

    def __post_init__(self) -> None:
        if self.header not in self.blocks:
            raise ValueError(f"loop header {self.header!r} not in body blocks")
        if self.trip_count < 1.0:
            raise ValueError(f"trip_count must be >= 1: {self.trip_count}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1: {self.depth}")

    @property
    def iterations(self) -> float:
        """Total dynamic iterations of the loop."""
        return self.trip_count * self.entries


@dataclass
class DataRegion:
    """A named data object (array, table, stack frame or linked structure).

    ``kind`` drives the cache model: ``stream`` regions are accessed with
    regular strides, ``table`` regions with data-dependent indices of high
    locality, ``chase`` regions with dependent pointer dereferences, and
    ``stack`` is the spill/local area.
    """

    name: str
    size_bytes: int
    kind: str = "stream"

    VALID_KINDS = ("stream", "table", "chase", "stack")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(f"unknown region kind {self.kind!r}")
        if self.size_bytes <= 0:
            raise ValueError("region size must be positive")


@dataclass
class Function:
    """A function: ordered blocks (the order *is* the code layout), a loop
    forest over those blocks, and inlining metadata."""

    name: str
    blocks: dict[str, BasicBlock]
    layout: list[str]
    loops: list[Loop] = field(default_factory=list)
    inline_candidate: bool = False
    entry_count: float = 0.0

    def __post_init__(self) -> None:
        if set(self.layout) != set(self.blocks):
            raise ValueError(f"layout and blocks disagree in {self.name!r}")
        for loop in self.loops:
            for label in loop.blocks:
                if label not in self.blocks:
                    raise ValueError(
                        f"loop block {label!r} missing from function {self.name!r}"
                    )

    def block_list(self) -> list[BasicBlock]:
        """Blocks in layout order."""
        return [self.blocks[label] for label in self.layout]

    @property
    def size_insns(self) -> int:
        return sum(len(block.instructions) for block in self.blocks.values())

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks.values())

    @property
    def dynamic_insns(self) -> float:
        return sum(
            block.exec_count * len(block.instructions)
            for block in self.blocks.values()
        )

    def call_sites(self) -> Iterator[tuple[str, int, Instruction]]:
        """Yield ``(block_label, index, instruction)`` for every CALL."""
        for label in self.layout:
            block = self.blocks[label]
            for index, insn in enumerate(block.instructions):
                if insn.opcode is Opcode.CALL:
                    yield label, index, insn

    def innermost_loops(self) -> list[Loop]:
        headers_with_children = {
            loop.parent for loop in self.loops if loop.parent is not None
        }
        return [loop for loop in self.loops if loop.header not in headers_with_children]

    def loop_of_block(self, label: str) -> Loop | None:
        """The innermost loop containing ``label``, or ``None``."""
        best: Loop | None = None
        for loop in self.loops:
            if label in loop.blocks and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def clone(self) -> "Function":
        return Function(
            name=self.name,
            blocks={label: block.clone() for label, block in self.blocks.items()},
            layout=list(self.layout),
            loops=[replace(loop, blocks=list(loop.blocks)) for loop in self.loops],
            inline_candidate=self.inline_candidate,
            entry_count=self.entry_count,
        )


@dataclass
class Program:
    """A whole program: functions, an entry point and its data regions."""

    name: str
    functions: dict[str, Function]
    entry: str
    regions: dict[str, DataRegion] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} not defined")

    @property
    def size_insns(self) -> int:
        return sum(function.size_insns for function in self.functions.values())

    @property
    def size_bytes(self) -> int:
        return sum(function.size_bytes for function in self.functions.values())

    @property
    def dynamic_insns(self) -> float:
        return sum(function.dynamic_insns for function in self.functions.values())

    def region(self, name: str) -> DataRegion:
        return self.regions[name]

    def clone(self) -> "Program":
        return Program(
            name=self.name,
            functions={name: fn.clone() for name, fn in self.functions.items()},
            entry=self.entry,
            regions=dict(self.regions),
        )

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Verified invariants:

        * every block successor exists in the same function;
        * every CALL has a defined callee;
        * every memory instruction references a declared region.
        """
        for function in self.functions.values():
            for label in function.layout:
                block = function.blocks[label]
                for successor in block.successors:
                    if successor not in function.blocks:
                        raise ValueError(
                            f"{function.name}/{label}: unknown successor {successor!r}"
                        )
                for insn in block.instructions:
                    if insn.opcode is Opcode.CALL:
                        if insn.callee not in self.functions:
                            raise ValueError(
                                f"{function.name}/{label}: unknown callee {insn.callee!r}"
                            )
                    if insn.opcode.is_memory and insn.region not in self.regions:
                        raise ValueError(
                            f"{function.name}/{label}: unknown region {insn.region!r}"
                        )


def total_static_bytes(program: Program) -> int:
    """Static code footprint of the program in bytes."""
    return program.size_bytes


def dynamic_mix(program: Program) -> dict[str, float]:
    """Dynamic instruction counts per functional-unit category."""
    mix = {"alu": 0.0, "mac": 0.0, "shift": 0.0, "load": 0.0, "store": 0.0, "ctrl": 0.0}
    for function in program.functions.values():
        for block in function.blocks.values():
            for insn in block.instructions:
                mix[insn.opcode.category] += block.exec_count
    return mix


def iter_instructions(program: Program) -> Iterator[tuple[Function, BasicBlock, Instruction]]:
    """Iterate over every instruction with its enclosing function and block."""
    for function in program.functions.values():
        for label in function.layout:
            block = function.blocks[label]
            for insn in block.instructions:
                yield function, block, insn


def fresh_label(existing: Iterable[str], base: str) -> str:
    """Return a label derived from ``base`` not present in ``existing``."""
    taken = set(existing)
    if base not in taken:
        return base
    suffix = 1
    while f"{base}.{suffix}" in taken:
        suffix += 1
    return f"{base}.{suffix}"
