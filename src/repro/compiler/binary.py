"""The compiled artefact: everything the simulator needs, nothing it doesn't.

``finalize`` distils an optimised :class:`~repro.compiler.ir.Program` into a
:class:`CompiledBinary`: static layout (code bytes, loop spans, alignment),
the dynamic profile (instruction mix, branch behaviour, dependence-stall
histogram) and the memory-access streams per loop.  The simulator never sees
IR again — the binary is the hand-off point between compiler and
microarchitecture, mirroring the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import (
    DataRegion,
    Opcode,
    Program,
    TAG_SPILL,
)
from repro.compiler.passes.base import PassStats

#: Dependence distances beyond this never stall any supported pipeline
#: configuration; longer edges are dropped from the histogram.
MAX_PROFILED_DISTANCE = 12

#: Fraction of dynamic instructions that defines the hot-code working set.
HOT_COVERAGE = 0.95


@dataclass(frozen=True)
class RegionAccess:
    """An aggregated memory-access stream within one context (loop or flat).

    ``count`` is the total dynamic number of accesses; ``stride`` the bytes
    the address advances per loop iteration (0 = revisits one location).
    """

    region: str
    kind: str
    region_bytes: int
    stride: int
    count: float
    is_store: bool


@dataclass
class LoopSummary:
    """Per-loop facts for the cache and branch models."""

    function: str
    header: str
    depth: int
    parent: tuple[str, str] | None
    iterations: float
    entries: float
    code_bytes: int
    own_dyn_insns: float
    accesses: list[RegionAccess] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.function, self.header)

    @property
    def trip_count(self) -> float:
        """Average iterations per entry."""
        return self.iterations / max(self.entries, 1e-12)


@dataclass
class CompiledBinary:
    """A compiled program, summarised for timing simulation."""

    program_name: str
    setting: FlagSetting | None
    code_bytes: int
    hot_code_bytes: int
    dyn_insns: float
    mix: dict[str, float]
    dyn_branches: float
    dyn_taken: float
    dyn_calls: float
    branch_sites: int
    mean_predictability: float
    aligned_taken_fraction: float
    stall_profile: dict[tuple[str, int], float]
    loops: list[LoopSummary]
    flat_accesses: list[RegionAccess]
    regions: dict[str, DataRegion]
    reg_reads: float
    spill_dyn: float
    stats: PassStats

    @property
    def dyn_loads(self) -> float:
        return self.mix.get("load", 0.0)

    @property
    def dyn_stores(self) -> float:
        return self.mix.get("store", 0.0)

    @property
    def dyn_memory(self) -> float:
        return self.dyn_loads + self.dyn_stores

    def describe(self) -> str:
        """One-paragraph human summary (used by examples and the CLI)."""
        return (
            f"{self.program_name}: {self.code_bytes} code bytes "
            f"({self.hot_code_bytes} hot), {self.dyn_insns:.3g} dynamic insns, "
            f"{self.dyn_branches:.3g} branches ({self.branch_sites} sites), "
            f"{self.dyn_memory:.3g} memory ops, {len(self.loops)} loops"
        )


def finalize(
    program: Program,
    setting: FlagSetting | None,
    stats: PassStats | None = None,
) -> CompiledBinary:
    """Summarise an optimised program into a :class:`CompiledBinary`."""
    stats = stats if stats is not None else PassStats()

    mix = {"alu": 0.0, "mac": 0.0, "shift": 0.0, "load": 0.0, "store": 0.0, "ctrl": 0.0}
    stall_profile: dict[tuple[str, int], float] = {}
    dyn_branches = 0.0
    dyn_taken = 0.0
    dyn_calls = 0.0
    branch_sites = 0
    predictability_weighted = 0.0
    aligned_taken = 0.0
    reg_reads = 0.0
    spill_dyn = 0.0
    code_bytes = 0

    block_dyn: list[tuple[float, int]] = []  # (dyn insns, size bytes) per block

    for function in program.functions.values():
        for label in function.layout:
            block = function.blocks[label]
            count = block.exec_count
            code_bytes += block.size_bytes
            block_dyn.append((count * len(block.instructions), block.size_bytes))
            if count <= 0.0:
                continue

            for index, insn in enumerate(block.instructions):
                category = insn.opcode.category
                mix[category] += count
                reg_reads += count * insn.opcode.register_reads
                if insn.has_tag(TAG_SPILL):
                    spill_dyn += count
                for distance, kind in insn.deps:
                    if distance <= MAX_PROFILED_DISTANCE:
                        key = (kind, distance)
                        stall_profile[key] = stall_profile.get(key, 0.0) + count

                if insn.opcode.is_branch:
                    branch_sites += 1
                    dyn_branches += count
                    taken = _taken_fraction(block, index, insn)
                    dyn_taken += count * taken
                    predictability_weighted += count * block.predictability
                    if insn.opcode is Opcode.CALL or insn.opcode is Opcode.RET:
                        dyn_calls += count
                    aligned_taken += (
                        count
                        * taken
                        * _target_aligned(program, function, block, insn)
                    )

    dyn_insns = sum(dyn for dyn, _ in block_dyn)
    hot_code_bytes = _hot_bytes(block_dyn, dyn_insns)

    loops = _summarise_loops(program)
    flat_accesses = _flat_accesses(program)

    mean_predictability = (
        predictability_weighted / dyn_branches if dyn_branches > 0 else 1.0
    )
    aligned_taken_fraction = aligned_taken / dyn_taken if dyn_taken > 0 else 0.0

    return CompiledBinary(
        program_name=program.name,
        setting=setting,
        code_bytes=code_bytes,
        hot_code_bytes=hot_code_bytes,
        dyn_insns=dyn_insns,
        mix=mix,
        dyn_branches=dyn_branches,
        dyn_taken=dyn_taken,
        dyn_calls=dyn_calls,
        branch_sites=branch_sites,
        mean_predictability=mean_predictability,
        aligned_taken_fraction=aligned_taken_fraction,
        stall_profile=stall_profile,
        loops=loops,
        flat_accesses=flat_accesses,
        regions=dict(program.regions),
        reg_reads=reg_reads,
        spill_dyn=spill_dyn,
        stats=stats,
    )


def _taken_fraction(block, index: int, insn) -> float:
    """Probability this control transfer redirects the fetch stream."""
    if insn.opcode is Opcode.BR:
        if index == len(block.instructions) - 1:
            return block.taken_prob
        return 0.5  # mid-block conditional (rare; e.g. generated guards)
    # JMP, CALL and RET always redirect.
    return 1.0


def _target_aligned(program: Program, function, block, insn) -> float:
    """1.0 if the transfer's target block is alignment-padded."""
    if insn.opcode is Opcode.BR and len(block.successors) > 1:
        target = block.successors[1]
        return 1.0 if function.blocks[target].aligned else 0.0
    if insn.opcode is Opcode.JMP and block.successors:
        target = block.successors[0]
        if target in function.blocks:
            return 1.0 if function.blocks[target].aligned else 0.0
        return 0.0
    if insn.opcode is Opcode.CALL and insn.callee in program.functions:
        callee = program.functions[insn.callee]
        entry = callee.blocks[callee.layout[0]]
        return 1.0 if entry.aligned else 0.0
    return 0.0  # RET: return sites are not tracked


def _hot_bytes(block_dyn: list[tuple[float, int]], dyn_insns: float) -> int:
    """Bytes of the blocks covering ``HOT_COVERAGE`` of dynamic work."""
    if dyn_insns <= 0:
        return 0
    covered = 0.0
    hot = 0
    for dyn, size in sorted(block_dyn, reverse=True):
        if covered >= HOT_COVERAGE * dyn_insns:
            break
        hot += size
        covered += dyn
    return hot


def _summarise_loops(program: Program) -> list[LoopSummary]:
    summaries: list[LoopSummary] = []
    for function in program.functions.values():
        positions = {label: index for index, label in enumerate(function.layout)}
        for loop in function.loops:
            members = [label for label in loop.blocks if label in positions]
            if not members or loop.iterations <= 0:
                continue
            first = min(positions[label] for label in members)
            last = max(positions[label] for label in members)
            span_bytes = sum(
                function.blocks[function.layout[position]].size_bytes
                for position in range(first, last + 1)
            )
            own_dyn = 0.0
            accesses: dict[tuple[str, int, bool], float] = {}
            for label in members:
                block = function.blocks[label]
                inner = function.loop_of_block(label)
                if inner is not None and inner.header != loop.header:
                    continue  # nested loop accounts for its own blocks
                own_dyn += block.exec_count * len(block.instructions)
                for insn in block.instructions:
                    if insn.opcode.is_memory:
                        key = (insn.region, insn.stride, insn.opcode is Opcode.STORE)
                        accesses[key] = accesses.get(key, 0.0) + block.exec_count
            summaries.append(
                LoopSummary(
                    function=function.name,
                    header=loop.header,
                    depth=loop.depth,
                    parent=(function.name, loop.parent) if loop.parent else None,
                    iterations=loop.iterations,
                    entries=loop.entries,
                    code_bytes=span_bytes,
                    own_dyn_insns=own_dyn,
                    accesses=[
                        RegionAccess(
                            region=region,
                            kind=program.regions[region].kind,
                            region_bytes=program.regions[region].size_bytes,
                            stride=stride,
                            count=count,
                            is_store=is_store,
                        )
                        for (region, stride, is_store), count in sorted(
                            accesses.items()
                        )
                    ],
                )
            )
    return summaries


def _flat_accesses(program: Program) -> list[RegionAccess]:
    """Memory accesses executed outside any loop."""
    accesses: dict[tuple[str, int, bool], float] = {}
    for function in program.functions.values():
        for label in function.layout:
            if function.loop_of_block(label) is not None:
                continue
            block = function.blocks[label]
            if block.exec_count <= 0:
                continue
            for insn in block.instructions:
                if insn.opcode.is_memory:
                    key = (insn.region, insn.stride, insn.opcode is Opcode.STORE)
                    accesses[key] = accesses.get(key, 0.0) + block.exec_count
    return [
        RegionAccess(
            region=region,
            kind=program.regions[region].kind,
            region_bytes=program.regions[region].size_bytes,
            stride=stride,
            count=count,
            is_store=is_store,
        )
        for (region, stride, is_store), count in sorted(accesses.items())
    ]
