"""Command-line entry point: reproduce any table or figure.

Examples::

    repro-experiments headline --scale quick
    repro-experiments fig6 fig7 --scale default
    repro-experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    beta_sweep,
    feature_mode_sweep,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    iid_vs_joint,
    iterations_to_match,
    knn_k_sweep,
    load_or_build,
    preset,
    quantile_sweep,
    table1,
    table2,
)

#: experiment name -> (needs data, runner)
EXPERIMENTS = {
    "table1": (True, table1),
    "table2": (False, lambda: table2()),
    "fig1": (True, figure1),
    "fig3": (False, lambda: figure3()),
    "fig4": (True, figure4),
    "fig5": (True, figure5),
    "fig6": (True, figure6),
    "fig7": (True, figure7),
    "fig8": (True, figure8),
    "fig9": (True, figure9),
    "fig10": (True, figure10),
    "headline": (True, headline),
    "iterations": (True, iterations_to_match),
    "ablate-k": (True, knn_k_sweep),
    "ablate-beta": (True, beta_sweep),
    "ablate-quantile": (True, quantile_sweep),
    "ablate-features": (True, feature_mode_sweep),
    "ablate-iid": (True, iid_vs_joint),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Dubach et al., MICRO 2009",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiments to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="scale preset: tiny, quick, default, paper (default: quick)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    scale = preset(args.scale)
    progress = None if args.quiet else lambda message: print(f"  .. {message}")

    data = None
    if any(EXPERIMENTS[name][0] for name in names):
        started = time.time()
        if not args.quiet:
            print(
                f"building dataset [{scale.name}]: {len(scale.programs)} programs x "
                f"{scale.n_machines} machines x {scale.n_settings} settings"
            )
        data = load_or_build(scale, progress=progress)
        if not args.quiet:
            print(f"dataset ready in {time.time() - started:.1f}s\n")

    for name in names:
        needs_data, runner = EXPERIMENTS[name]
        result = runner(data) if needs_data else runner()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
