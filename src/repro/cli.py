"""Command-line entry point: reproduce any table or figure.

Examples::

    repro-experiments list
    repro-experiments headline --scale quick
    repro-experiments fig6 fig7 --scale default --jobs 4
    repro-experiments all --scale quick --cache-dir /tmp/repro-cache

    repro-experiments run --scale paper --jobs -1        # build the dataset
    repro-experiments run --scale paper --resume         # continue after a kill
    repro-experiments run --scale paper --max-shards 50  # budgeted increments
    repro-experiments status --scale paper               # shard completion

    repro-experiments report --scale quick               # the full paper artifact
    repro-experiments report --scale quick --resume      # continue after a kill
    repro-experiments report --only fig6,headline        # a subset, fewer folds

All experiments go through one :class:`repro.api.Session`, which owns the
dataset caches and fans the expensive dataset build out over ``--jobs``
workers.  Datasets are built through the sharded, resumable store of
:mod:`repro.store`: ``run`` checkpoints every completed (program,
machine-chunk) shard, ``status`` reports progress, and an interrupted
build continues with ``--resume`` instead of starting over.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.api import Session
from repro.evalrun import resolve_artifacts, variants_for_artifacts
from repro.experiments.dataset import adopt_legacy_cache, store_root
from repro.experiments import (
    beta_sweep,
    feature_mode_sweep,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    iid_vs_joint,
    iterations_to_match,
    knn_k_sweep,
    quantile_sweep,
    table1,
    table2,
)

#: experiment name -> (needs data, runner, one-line description)
EXPERIMENTS = {
    "table1": (True, table1, "the 11 hardware counters of one -O3 profile run"),
    "table2": (False, lambda: table2(), "the 288,000-point microarchitecture space"),
    "fig1": (True, figure1, "per-pass speedup spread across machines (§2 motivation)"),
    "fig3": (False, lambda: figure3(), "the 39-dimension optimisation space census"),
    "fig4": (True, figure4, "best-found speedup per program (the 'Best' upper bound)"),
    "fig5": (True, figure5, "speedup surface across the machine space"),
    "fig6": (True, figure6, "predicted vs best speedup per program (leave-one-out)"),
    "fig7": (True, figure7, "predicted vs best speedup per microarchitecture"),
    "fig8": (True, figure8, "Hinton diagram: flag vs speedup mutual information"),
    "fig9": (True, figure9, "Hinton diagram: feature vs best-flag mutual information"),
    "fig10": (True, figure10, "extended space (frequency + issue width) results"),
    "headline": (True, headline, "the paper's headline 'x% of Best' numbers"),
    "iterations": (True, iterations_to_match, "search evaluations to match the model"),
    "ablate-k": (True, knn_k_sweep, "sensitivity to the KNN neighbour count K"),
    "ablate-beta": (True, beta_sweep, "sensitivity to the softmax temperature β"),
    "ablate-quantile": (True, quantile_sweep, "sensitivity to the 'good' quantile"),
    "ablate-features": (True, feature_mode_sweep, "counters-only vs descriptors-only"),
    "ablate-iid": (True, iid_vs_joint, "IID factorisation vs joint voting"),
}


def list_experiments() -> str:
    """Render the ``list`` subcommand's experiment catalogue."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, (needs_data, _, description) in EXPERIMENTS.items():
        tag = "dataset" if needs_data else "static "
        lines.append(f"  {name:<{width}s}  [{tag}]  {description}")
    lines.append(
        "\nrun with: repro-experiments <name>... [--scale S] [--jobs N] "
        "[--cache-dir DIR], or 'all' for everything"
    )
    lines.append(
        "dataset store: repro-experiments run [--resume] [--max-shards N] "
        "[--executor E] | status"
    )
    lines.append(
        "paper artifact: repro-experiments report [--resume] [--max-folds N] "
        "[--only fig5,table2,...] [--out DIR]"
    )
    return "\n".join(lines)


def _run_store(args, parser) -> int:
    """The ``run`` subcommand: build/resume a scale's shard store."""
    if args.max_shards is not None and args.max_shards < 1:
        parser.error("--max-shards must be >= 1")
    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    # One store object for the whole command: the grid (machines plus
    # settings) is sampled once and shard sidecars are only re-scanned
    # where the answer can have changed.
    store = session.experiment_store()
    adopted = adopt_legacy_cache(session.scale, store, args.cache_dir)
    if adopted and not args.quiet:
        print(f"adopted {adopted} shards from the legacy single-file cache")
    status = store.status()
    if status.complete:
        print(f"dataset already complete ({status.total_shards} shards)")
        if not args.quiet:
            print(status.render())
        return 0
    if status.completed_shards and not args.resume:
        parser.error(
            f"store at {status.root} already holds "
            f"{status.completed_shards}/{status.total_shards} shards; "
            "pass --resume to continue the interrupted build"
        )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    started = time.time()
    done = session.build_dataset(
        max_shards=args.max_shards, progress=progress, store=store
    )
    final = store.status()
    print(
        f"computed {done} shards in {time.time() - started:.1f}s "
        f"({final.completed_shards}/{final.total_shards} complete)"
    )
    if final.complete:
        print(f"store fingerprint: {store.fingerprint()}")
    else:
        hint = f"repro-experiments run --scale {session.scale.name} --resume"
        if args.cache_dir is not None:
            # Without this the hinted command would look in the default
            # cache and silently start a fresh build.
            hint += f" --cache-dir {args.cache_dir}"
        print(f"resume with: {hint}")
    return 0


def _report(args, parser) -> int:
    """The ``report`` subcommand: run the resumable paper protocol and
    render the complete artifact as markdown + JSON."""
    if args.max_folds is not None and args.max_folds < 1:
        parser.error("--max-folds must be >= 1")
    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    data = session.dataset(progress=progress)
    store = session.protocol_store(data)
    # The resume gate judges completeness against the folds *this*
    # selection needs: a finished `--only` run re-renders freely, while
    # a partially computed selection demands an explicit --resume.
    requested = variants_for_artifacts(
        resolve_artifacts(args.only),
        with_code=data.training.code_features is not None,
    )
    pending = len(store.pending_keys(requested))
    total = len(list(store.fold_keys(requested)))
    if 0 < pending < total and not args.resume:
        parser.error(
            f"protocol store at {store.status().root} already holds "
            f"{total - pending}/{total} of the requested folds; "
            "pass --resume to continue the interrupted protocol run"
        )
    started = time.time()
    outcome = session.run_protocol(
        only=args.only,
        max_folds=args.max_folds,
        progress=progress,
        store=store,
    )
    stats = outcome.stats
    print(
        f"protocol: {stats.folds_computed} folds computed, "
        f"{stats.folds_skipped} already checkpointed, "
        f"{stats.store_hits} store hits, {stats.simulation_calls} fallback "
        f"simulations in {time.time() - started:.1f}s"
    )
    if not outcome.complete:
        print(outcome.status.render())
        # Echo back every selection-shaping flag: the hinted command must
        # resume *this* job, not a broader one into a different location.
        hint = f"repro-experiments report --scale {session.scale.name} --resume"
        if args.only is not None:
            hint += f" --only {args.only}"
        if args.out is not None:
            hint += f" --out {args.out}"
        if args.jobs != 1:
            hint += f" --jobs {args.jobs}"
        if args.executor != "auto":
            hint += f" --executor {args.executor}"
        if args.cache_dir is not None:
            hint += f" --cache-dir {args.cache_dir}"
        print(f"resume with: {hint}")
        return 0
    report = outcome.report
    out_dir = Path(args.out if args.out is not None else ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    markdown_path = out_dir / f"report-{session.scale.name}.md"
    json_path = out_dir / f"report-{session.scale.name}.json"
    markdown_path.write_text(report.markdown)
    json_path.write_text(report.json_text())
    print(
        f"rendered {len(report.artifacts)} artifacts "
        f"(report fingerprint {report.fingerprint})"
    )
    print(f"wrote {markdown_path} and {json_path}")
    return 0


def _store_status(args) -> int:
    """The ``status`` subcommand: report a scale's shard completion."""
    session = Session(args.scale, cache_dir=args.cache_dir)
    root = store_root(session.scale, args.cache_dir)
    if not root.exists():
        print(
            f"no store for scale {session.scale.name!r} at {root}\n"
            f"start one with: repro-experiments run --scale {session.scale.name}"
        )
        return 0
    print(session.dataset_status().render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Dubach et al., MICRO 2009",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiments to run: {', '.join(EXPERIMENTS)}, 'all', 'list', "
            "the dataset-store commands 'run' and 'status', or 'report' "
            "for the full resumable paper artifact"
        ),
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="scale preset: tiny, quick, default, paper (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the dataset build (negative: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "serial", "thread", "process"),
        help="batch strategy for dataset builds (default: auto)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with 'run'/'report': continue an interrupted build or protocol",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="with 'run': checkpoint at most this many shards, then stop",
    )
    parser.add_argument(
        "--max-folds",
        type=int,
        default=None,
        help="with 'report': checkpoint at most this many folds, then stop",
    )
    parser.add_argument(
        "--only",
        default=None,
        help=(
            "with 'report': comma-separated artifact subset "
            "(e.g. fig6,headline,ablate-k); unrequested folds are not run"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="with 'report': directory for report-<scale>.md/.json (default: .)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        print(list_experiments())
        return 0
    commands = {"run", "status", "list", "report"} & set(args.experiments)
    if commands and len(args.experiments) > 1:
        parser.error(
            f"{sorted(commands)} are standalone commands and cannot be "
            "combined with experiment names"
        )
    if args.experiments != ["run"] and args.max_shards is not None:
        parser.error("--max-shards only applies to the 'run' command")
    if args.experiments not in (["run"], ["report"]) and args.resume:
        parser.error("--resume only applies to the 'run' and 'report' commands")
    if args.experiments != ["report"] and (
        args.max_folds is not None or args.only is not None or args.out is not None
    ):
        parser.error("--max-folds/--only/--out only apply to the 'report' command")
    if args.experiments == ["run"]:
        return _run_store(args, parser)
    if args.experiments == ["status"]:
        return _store_status(args)
    if args.experiments == ["report"]:
        return _report(args, parser)

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    scale = session.scale
    progress = None if args.quiet else lambda message: print(f"  .. {message}")

    data = None
    if any(EXPERIMENTS[name][0] for name in names):
        started = time.time()
        if not args.quiet:
            print(
                f"building dataset [{scale.name}]: {len(scale.programs)} programs x "
                f"{scale.n_machines} machines x {scale.n_settings} settings"
            )
        data = session.dataset(progress=progress)
        if not args.quiet:
            print(f"dataset ready in {time.time() - started:.1f}s\n")

    for name in names:
        needs_data, runner, _ = EXPERIMENTS[name]
        result = runner(data) if needs_data else runner()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
