"""Command-line entry point: reproduce any table or figure.

Examples::

    repro-experiments list
    repro-experiments headline --scale quick
    repro-experiments fig6 fig7 --scale default --jobs 4
    repro-experiments all --scale quick --cache-dir /tmp/repro-cache

All experiments go through one :class:`repro.api.Session`, which owns the
dataset caches and fans the expensive dataset build out over ``--jobs``
worker processes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Session
from repro.experiments import (
    beta_sweep,
    feature_mode_sweep,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    iid_vs_joint,
    iterations_to_match,
    knn_k_sweep,
    quantile_sweep,
    table1,
    table2,
)

#: experiment name -> (needs data, runner, one-line description)
EXPERIMENTS = {
    "table1": (True, table1, "the 11 hardware counters of one -O3 profile run"),
    "table2": (False, lambda: table2(), "the 288,000-point microarchitecture space"),
    "fig1": (True, figure1, "per-pass speedup spread across machines (§2 motivation)"),
    "fig3": (False, lambda: figure3(), "the 39-dimension optimisation space census"),
    "fig4": (True, figure4, "best-found speedup per program (the 'Best' upper bound)"),
    "fig5": (True, figure5, "speedup surface across the machine space"),
    "fig6": (True, figure6, "predicted vs best speedup per program (leave-one-out)"),
    "fig7": (True, figure7, "predicted vs best speedup per microarchitecture"),
    "fig8": (True, figure8, "Hinton diagram: flag vs speedup mutual information"),
    "fig9": (True, figure9, "Hinton diagram: feature vs best-flag mutual information"),
    "fig10": (True, figure10, "extended space (frequency + issue width) results"),
    "headline": (True, headline, "the paper's headline 'x% of Best' numbers"),
    "iterations": (True, iterations_to_match, "search evaluations to match the model"),
    "ablate-k": (True, knn_k_sweep, "sensitivity to the KNN neighbour count K"),
    "ablate-beta": (True, beta_sweep, "sensitivity to the softmax temperature β"),
    "ablate-quantile": (True, quantile_sweep, "sensitivity to the 'good' quantile"),
    "ablate-features": (True, feature_mode_sweep, "counters-only vs descriptors-only"),
    "ablate-iid": (True, iid_vs_joint, "IID factorisation vs joint voting"),
}


def list_experiments() -> str:
    """Render the ``list`` subcommand's experiment catalogue."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, (needs_data, _, description) in EXPERIMENTS.items():
        tag = "dataset" if needs_data else "static "
        lines.append(f"  {name:<{width}s}  [{tag}]  {description}")
    lines.append(
        "\nrun with: repro-experiments <name>... [--scale S] [--jobs N] "
        "[--cache-dir DIR], or 'all' for everything"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Dubach et al., MICRO 2009",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiments to run: {', '.join(EXPERIMENTS)}, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="scale preset: tiny, quick, default, paper (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the dataset build (negative: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        print(list_experiments())
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    session = Session(args.scale, jobs=args.jobs, cache_dir=args.cache_dir)
    scale = session.scale
    progress = None if args.quiet else lambda message: print(f"  .. {message}")

    data = None
    if any(EXPERIMENTS[name][0] for name in names):
        started = time.time()
        if not args.quiet:
            print(
                f"building dataset [{scale.name}]: {len(scale.programs)} programs x "
                f"{scale.n_machines} machines x {scale.n_settings} settings"
            )
        data = session.dataset(progress=progress)
        if not args.quiet:
            print(f"dataset ready in {time.time() - started:.1f}s\n")

    for name in names:
        needs_data, runner, _ = EXPERIMENTS[name]
        result = runner(data) if needs_data else runner()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
