"""Command-line entry point: reproduce any table or figure, or serve it.

Examples::

    repro-experiments list
    repro-experiments headline --scale quick
    repro-experiments fig6 fig7 --scale default --jobs 4
    repro-experiments all --scale quick --cache-dir /tmp/repro-cache

    repro-experiments run --scale paper --jobs -1        # build the dataset
    repro-experiments run --scale paper --resume         # continue after a kill
    repro-experiments run --scale paper --max-shards 50  # budgeted increments
    repro-experiments status --scale paper               # shard completion

    repro-experiments report --scale quick               # the full paper artifact
    repro-experiments report --scale quick --resume      # continue after a kill
    repro-experiments report --only fig6,headline        # a subset, fewer folds

    repro-experiments train --scale quick                # fit + register + promote
    repro-experiments models                             # registry inventory
    repro-experiments models --promote 2                 # flip the served model
    repro-experiments models --rollback                  # undo the last promote
    repro-experiments serve --port 8181                  # the prediction service

All experiments go through one :class:`repro.api.Session`; its facets own
the dataset store (``session.data``), the model lifecycle and registry
(``session.models``), evaluation (``session.eval``), and the resumable
paper protocol (``session.protocol``).  ``serve`` exposes the registry's
promoted model over HTTP — ``POST /predict``, ``POST /evaluate``,
``GET /healthz``, ``GET /metrics``, and background protocol jobs whose
fold completions stream live from ``GET /jobs/<id>/events``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import (
    DEFAULT_CHANNEL,
    ModelRegistry,
    RegistryError,
    Session,
    registry_root,
)
from repro.evalrun import resolve_artifacts, variants_for_artifacts
from repro.experiments.dataset import adopt_legacy_cache, store_root
from repro.store import StoreError
from repro.experiments import (
    beta_sweep,
    feature_mode_sweep,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    iid_vs_joint,
    iterations_to_match,
    knn_k_sweep,
    quantile_sweep,
    table1,
    table2,
)

#: experiment name -> (needs data, runner, one-line description)
EXPERIMENTS = {
    "table1": (True, table1, "the 11 hardware counters of one -O3 profile run"),
    "table2": (False, lambda: table2(), "the 288,000-point microarchitecture space"),
    "fig1": (True, figure1, "per-pass speedup spread across machines (§2 motivation)"),
    "fig3": (False, lambda: figure3(), "the 39-dimension optimisation space census"),
    "fig4": (True, figure4, "best-found speedup per program (the 'Best' upper bound)"),
    "fig5": (True, figure5, "speedup surface across the machine space"),
    "fig6": (True, figure6, "predicted vs best speedup per program (leave-one-out)"),
    "fig7": (True, figure7, "predicted vs best speedup per microarchitecture"),
    "fig8": (True, figure8, "Hinton diagram: flag vs speedup mutual information"),
    "fig9": (True, figure9, "Hinton diagram: feature vs best-flag mutual information"),
    "fig10": (True, figure10, "extended space (frequency + issue width) results"),
    "headline": (True, headline, "the paper's headline 'x% of Best' numbers"),
    "iterations": (True, iterations_to_match, "search evaluations to match the model"),
    "ablate-k": (True, knn_k_sweep, "sensitivity to the KNN neighbour count K"),
    "ablate-beta": (True, beta_sweep, "sensitivity to the softmax temperature β"),
    "ablate-quantile": (True, quantile_sweep, "sensitivity to the 'good' quantile"),
    "ablate-features": (True, feature_mode_sweep, "counters-only vs descriptors-only"),
    "ablate-iid": (True, iid_vs_joint, "IID factorisation vs joint voting"),
}

#: Standalone subcommands (cannot be combined with experiment names).
COMMANDS = (
    "run",
    "status",
    "list",
    "report",
    "train",
    "models",
    "serve",
    "tournament",
    "worker",
    "fsck",
    "chaos",
)

#: The CI smoke-gate grid: small enough for every push, deterministic
#: for a fixed seed list, and chosen (with the 1% match tolerance) so
#: the §5.3 economics are visible — the model-seeded GA must match
#: best-known in strictly fewer simulations than uniform random.
SMOKE_TOURNAMENT = {
    "scale": "tiny",
    "programs": ("sha", "crc"),
    "machines": 2,
    "budget": 40,
    "seeds": 15,
    "tolerance": 0.01,
}


def list_experiments() -> str:
    """Render the ``list`` subcommand's experiment catalogue."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, (needs_data, _, description) in EXPERIMENTS.items():
        tag = "dataset" if needs_data else "static "
        lines.append(f"  {name:<{width}s}  [{tag}]  {description}")
    lines.append(
        "\nrun with: repro-experiments <name>... [--scale S] [--jobs N] "
        "[--cache-dir DIR], or 'all' for everything"
    )
    lines.append(
        "dataset store: repro-experiments run [--resume] [--max-shards N] "
        "[--executor E] | status"
    )
    lines.append(
        "paper artifact: repro-experiments report [--resume] [--max-folds N] "
        "[--only fig5,table2,...] [--out DIR]"
    )
    lines.append(
        "model registry: repro-experiments train | models "
        "[--promote N | --rollback]"
    )
    lines.append(
        "prediction service: repro-experiments serve [--host H] [--port P]"
    )
    lines.append(
        "search tournament: repro-experiments tournament [--budget N] "
        "[--seeds N] [--tolerance F] [--programs p,q] [--machines N] "
        "[--smoke] [--out DIR]"
    )
    lines.append(
        "distributed builds: repro-experiments worker [--protocol] "
        "[--workers N] [--lease-ttl S] [--max-units N] (see README)"
    )
    lines.append(
        "fault tolerance: repro-experiments fsck [--repair] [--json] | "
        "chaos [--schedules N] [--seed N] [--scenarios s,t] [--smoke] "
        "[--out DIR]"
    )
    return "\n".join(lines)


def _run_store(args, parser) -> int:
    """The ``run`` subcommand: build/resume a scale's shard store."""
    if args.max_shards is not None and args.max_shards < 1:
        parser.error("--max-shards must be >= 1")
    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    # One store object for the whole command: the grid (machines plus
    # settings) is sampled once and shard sidecars are only re-scanned
    # where the answer can have changed.
    store = session.data.store()
    adopted = adopt_legacy_cache(session.scale, store, args.cache_dir)
    if adopted and not args.quiet:
        print(f"adopted {adopted} shards from the legacy single-file cache")
    status = store.status()
    if status.complete:
        print(f"dataset already complete ({status.total_shards} shards)")
        if not args.quiet:
            print(status.render())
        return 0
    if status.completed_shards and not args.resume:
        parser.error(
            f"store at {status.root} already holds "
            f"{status.completed_shards}/{status.total_shards} shards; "
            "pass --resume to continue the interrupted build"
        )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    started = time.time()
    done = session.data.build(
        max_shards=args.max_shards,
        progress=progress,
        store=store,
        lease_ttl=args.lease_ttl,
    )
    final = store.status()
    print(
        f"computed {done} shards in {time.time() - started:.1f}s "
        f"({final.completed_shards}/{final.total_shards} complete)"
    )
    if final.complete:
        print(f"store fingerprint: {store.fingerprint()}")
    else:
        hint = f"repro-experiments run --scale {session.scale.name} --resume"
        if args.cache_dir is not None:
            # Without this the hinted command would look in the default
            # cache and silently start a fresh build.
            hint += f" --cache-dir {args.cache_dir}"
        print(f"resume with: {hint}")
    return 0


def _report(args, parser) -> int:
    """The ``report`` subcommand: run the resumable paper protocol and
    render the complete artifact as markdown + JSON + SVG."""
    if args.max_folds is not None and args.max_folds < 1:
        parser.error("--max-folds must be >= 1")
    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    data = session.data.dataset(progress=progress)
    store = session.protocol.store(data)
    # The resume gate judges completeness against the folds *this*
    # selection needs: a finished `--only` run re-renders freely, while
    # a partially computed selection demands an explicit --resume.
    requested = variants_for_artifacts(
        resolve_artifacts(args.only),
        with_code=data.training.code_features is not None,
    )
    pending = len(store.pending_keys(requested))
    total = len(list(store.fold_keys(requested)))
    if 0 < pending < total and not args.resume:
        parser.error(
            f"protocol store at {store.status().root} already holds "
            f"{total - pending}/{total} of the requested folds; "
            "pass --resume to continue the interrupted protocol run"
        )
    started = time.time()
    # The SVG headline figure needs the base variant's folds; a --only
    # selection without them still renders markdown + JSON.
    formats = ("md", "json", "svg") if "base" in requested else ("md", "json")
    outcome = session.protocol.run(
        only=args.only,
        max_folds=args.max_folds,
        progress=progress,
        store=store,
        formats=formats,
        lease_ttl=args.lease_ttl,
    )
    stats = outcome.stats
    print(
        f"protocol: {stats.folds_computed} folds computed, "
        f"{stats.folds_skipped} already checkpointed, "
        f"{stats.store_hits} store hits, {stats.simulation_calls} fallback "
        f"simulations in {time.time() - started:.1f}s"
    )
    if not outcome.complete:
        print(outcome.status.render())
        # Echo back every selection-shaping flag: the hinted command must
        # resume *this* job, not a broader one into a different location.
        hint = f"repro-experiments report --scale {session.scale.name} --resume"
        if args.only is not None:
            hint += f" --only {args.only}"
        if args.out is not None:
            hint += f" --out {args.out}"
        if args.jobs != 1:
            hint += f" --jobs {args.jobs}"
        if args.executor != "auto":
            hint += f" --executor {args.executor}"
        if args.cache_dir is not None:
            hint += f" --cache-dir {args.cache_dir}"
        print(f"resume with: {hint}")
        return 0
    report = outcome.report
    out_dir = Path(args.out if args.out is not None else ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    markdown_path = out_dir / f"report-{session.scale.name}.md"
    json_path = out_dir / f"report-{session.scale.name}.json"
    markdown_path.write_text(report.markdown)
    json_path.write_text(report.json_text())
    written = [markdown_path, json_path]
    if report.svg is not None:
        svg_path = out_dir / f"report-{session.scale.name}.svg"
        svg_path.write_text(report.svg)
        written.append(svg_path)
    print(
        f"rendered {len(report.artifacts)} artifacts "
        f"(report fingerprint {report.fingerprint})"
    )
    print(f"wrote {', '.join(str(path) for path in written)}")
    return 0


def _store_status(args) -> int:
    """The ``status`` subcommand: report a scale's shard completion.

    Never tracebacks: a missing store gets the friendly "no store yet"
    hint and an unusable one (foreign format, corrupt manifest) a
    diagnosis, both with exit code 0 — status is a read-only question.
    """
    session = Session(args.scale, cache_dir=args.cache_dir)
    root = store_root(session.scale, args.cache_dir)
    if not root.exists():
        print(
            f"no store for scale {session.scale.name!r} at {root}\n"
            f"start one with: repro-experiments run --scale {session.scale.name}"
        )
        return 0
    try:
        print(session.data.status().render())
    except (StoreError, OSError, json.JSONDecodeError) as error:
        print(
            f"store at {root} is not usable: {error}\n"
            f"delete the directory and rebuild with: "
            f"repro-experiments run --scale {session.scale.name}"
        )
        return 0
    try:
        from repro.cluster import ClusterError, DEFAULT_LEASE_TTL, store_cluster_status

        cluster = store_cluster_status(
            session.data.store(),
            args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
        )
    except (ClusterError, StoreError, OSError, json.JSONDecodeError):
        cluster = None  # cluster dir unreadable; the store view stands alone
    if cluster is not None:
        print(cluster.render())
    return 0


def _fsck(args) -> int:
    """The ``fsck`` subcommand: scrub every durable store under the cache.

    Classifies every artifact of every store (experiment shards, fold
    shards, registry versions and pointers, job journals, lease tables)
    and, with ``--repair``, quarantines or truncates the damage so the
    next resume rebuilds exactly the damaged units.  Exit code 0 when
    the cache is clean (or fully repaired), 1 while problems remain.
    """
    from repro.faults.fsck import fsck_cache

    report = fsck_cache(args.cache_dir, repair=args.repair, ttl=args.lease_ttl)
    if args.json:
        print(json.dumps(report.payload(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 0 if not report.unrepaired else 1


def _chaos(args, parser) -> int:
    """The ``chaos`` subcommand: fault schedules over real workloads.

    Drives dataset builds, protocol runs, cluster fleets, and the
    serving tier under randomized (but seed-deterministic) failpoint
    schedules, repairs with fsck, resumes, and requires every run's
    output to be byte-identical to a clean baseline.  ``--smoke`` runs
    the small CI gate; ``--out`` also writes ``BENCH_chaos.json``.
    """
    from repro.faults.chaos import SCENARIOS, run_chaos

    schedules = args.schedules
    if schedules is None:
        schedules = 2 if args.smoke else 5
    if schedules < 1:
        parser.error("--schedules must be >= 1")
    scenarios = None
    if args.scenarios is not None:
        scenarios = tuple(
            name.strip() for name in args.scenarios.split(",") if name.strip()
        )
        unknown = set(scenarios) - set(SCENARIOS)
        if unknown:
            parser.error(
                f"unknown chaos scenarios {sorted(unknown)}; "
                f"choose from {', '.join(SCENARIOS)}"
            )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    report = run_chaos(
        scenarios=scenarios,
        schedules=schedules,
        seed=args.seed if args.seed is not None else 0,
        progress=progress,
    )
    if args.json:
        print(json.dumps(report.payload(), indent=1, sort_keys=True))
    else:
        print(report.render())

    if args.out is not None:
        import platform as platform_module

        import numpy

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        bench_path = out_dir / "BENCH_chaos.json"
        bench_payload = {
            "benchmark": "chaos",
            "smoke": bool(args.smoke),
            **report.payload(),
            "python": platform_module.python_version(),
            "numpy": numpy.__version__,
            "platform": platform_module.platform(),
        }
        bench_path.write_text(
            json.dumps(bench_payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {bench_path}")
    return 0 if report.ok else 1


def _worker(args, parser) -> int:
    """The ``worker`` subcommand: one lease-coordinated cluster worker.

    Each invocation is one worker draining a scale's shard store (the
    default) or its protocol fold store (``--protocol``) through the
    shared lease table under the store directory — run any number of
    them, on one host (``--workers N`` spawns a local fleet) or on many
    over a shared filesystem, and they converge on the byte-identical
    serial result.
    """
    from repro.cluster import (
        DEFAULT_LEASE_TTL,
        ClusterWorker,
        FoldQueue,
        ShardQueue,
        run_local_workers,
    )

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        parser.error("--lease-ttl must be positive")
    if args.max_units is not None and args.max_units < 1:
        parser.error("--max-units must be >= 1")
    if args.only is not None and not args.protocol:
        parser.error("--only with 'worker' requires --protocol")
    lease_ttl = (
        args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
    )

    if args.workers is not None and args.workers > 1:
        # A local fleet: N independent single-worker subprocesses, the
        # same code path a multi-host deployment runs per host.
        child_args = ["--scale", args.scale, "--lease-ttl", str(lease_ttl)]
        if args.cache_dir is not None:
            child_args += ["--cache-dir", args.cache_dir]
        if args.protocol:
            child_args.append("--protocol")
        if args.only is not None:
            child_args += ["--only", args.only]
        if args.max_units is not None:
            child_args += ["--max-units", str(args.max_units)]
        if args.quiet:
            child_args.append("--quiet")
        codes = run_local_workers(child_args, args.workers)
        failed = [code for code in codes if code != 0]
        if failed:
            print(
                f"{len(failed)}/{len(codes)} workers exited non-zero",
                file=sys.stderr,
            )
        return max(codes)

    session = Session(args.scale, cache_dir=args.cache_dir)
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    if args.protocol:
        data = session.data.dataset(progress=progress)
        store = session.protocol.store(data)
        variant_keys = None
        if args.only is not None:
            variant_keys = variants_for_artifacts(
                resolve_artifacts(args.only),
                with_code=data.training.code_features is not None,
            )
        from repro.evalrun import EvaluationPipeline

        pipeline = EvaluationPipeline(
            data.training,
            data.programs,
            store,
            compiler=session.compiler,
            vectorize=session.vectorize,
        )
        queue = FoldQueue(pipeline, variant_keys)
    else:
        from repro.store import ExperimentRunner

        store = session.data.store()
        runner = ExperimentRunner(
            store,
            compiler=session.compiler,
            vectorize=session.vectorize,
        )
        queue = ShardQueue(runner)
    worker = ClusterWorker(
        queue,
        worker_id=args.worker_id,
        lease_ttl=lease_ttl,
        max_units=args.max_units,
        progress=progress,
    )
    report = worker.run()
    remaining = len(queue.pending_units())
    print(
        f"worker {report.worker_id}: {report.units_completed} "
        f"{queue.kind} units computed, {report.units_skipped} skipped, "
        f"{report.simulation_calls} simulations in "
        f"{report.wall_seconds:.1f}s ({remaining} still pending)"
    )
    return 0


def _train(args, parser) -> int:
    """The ``train`` subcommand: fit on a scale and register the model."""
    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    started = time.time()
    session.models.fit(progress=progress)
    registry = _registry(args)
    channel = args.channel if args.channel is not None else DEFAULT_CHANNEL
    entry = session.models.register(
        registry=registry, promote=not args.no_promote, channel=channel
    )
    print(
        f"fitted on scale {session.scale.name!r} in {time.time() - started:.1f}s "
        f"(training fingerprint {session.models.fingerprint})"
    )
    verb = "registered and promoted" if not args.no_promote else "registered"
    suffix = f" (channel {channel!r})" if not args.no_promote else ""
    print(f"{verb} model v{entry.version:04d} (digest {entry.digest}) "
          f"in {registry.root}{suffix}")
    return 0


def _registry(args) -> ModelRegistry:
    root = args.registry if args.registry is not None else registry_root(args.cache_dir)
    return ModelRegistry(root)


def _models(args, parser) -> int:
    """The ``models`` subcommand: registry inventory, promote, rollback."""
    registry = _registry(args)
    channel = args.channel if args.channel is not None else DEFAULT_CHANNEL
    try:
        if args.promote is not None:
            entry = registry.promote(args.promote, channel=channel)
            print(
                f"promoted model v{entry.version:04d} (digest {entry.digest}) "
                f"on channel {channel!r}"
            )
        elif args.rollback:
            entry = registry.rollback(channel=channel)
            print(
                f"rolled back: v{entry.version:04d} (digest {entry.digest}) "
                f"is promoted again on channel {channel!r}"
            )
        print(registry.render())
    except RegistryError as error:
        print(f"registry error: {error}", file=sys.stderr)
        return 1
    return 0


def _serve(args, parser) -> int:
    """The ``serve`` subcommand: the HTTP prediction service."""
    from repro.service import PredictionService, serve

    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    service = PredictionService(
        session,
        registry=_registry(args),
        channel=args.channel if args.channel is not None else DEFAULT_CHANNEL,
        batching=not args.no_batch,
        batch_window=args.batch_window if args.batch_window is not None else 0.0,
        max_inflight=(
            args.max_inflight if args.max_inflight is not None else 64
        ),
    )
    model = service.model_info()
    if model is None:
        print(
            "warning: no promoted model yet — /predict will answer 503 "
            "until one is trained (repro-experiments train) or promoted",
            file=sys.stderr,
        )
    else:
        print(
            f"serving model v{model['version']:04d} "
            f"(digest {model['digest']}) from {service.registry.root} "
            f"(channel {service.channel!r})"
        )
    log = None if args.quiet else lambda message: print(f"  .. {message}")
    return serve(service, host=args.host, port=args.port, log=log)


def _tournament(args, parser) -> int:
    """The ``tournament`` subcommand: race every search strategy on one
    grid and write the leaderboard plus the ``BENCH_search.json``
    performance artifact.  ``--smoke`` pins the CI gate grid and fails
    (exit 1) unless model-seeded search out-economises random."""
    from repro.autotune.tournament import check_model_beats_random

    if args.smoke:
        for flag, default in (
            ("budget", None),
            ("seeds", None),
            ("tolerance", None),
            ("programs", None),
            ("machines", None),
        ):
            if getattr(args, flag) != default:
                parser.error(f"--smoke pins the gate grid; drop --{flag}")
        scale = SMOKE_TOURNAMENT["scale"]
        programs: list[str] | None = list(SMOKE_TOURNAMENT["programs"])
        machines = SMOKE_TOURNAMENT["machines"]
        budget = SMOKE_TOURNAMENT["budget"]
        n_seeds = SMOKE_TOURNAMENT["seeds"]
        tolerance = SMOKE_TOURNAMENT["tolerance"]
    else:
        scale = args.scale
        programs = args.programs.split(",") if args.programs else None
        machines = args.machines
        budget = args.budget if args.budget is not None else 40
        n_seeds = args.seeds if args.seeds is not None else 2
        tolerance = args.tolerance if args.tolerance is not None else 0.01
    if budget < 1:
        parser.error(f"--budget must be >= 1: {budget}")
    if n_seeds < 1:
        parser.error(f"--seeds must be >= 1: {n_seeds}")

    session = Session(
        scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    progress = None if args.quiet else lambda message: print(f"  .. {message}")
    started = time.time()
    result = session.eval.tournament(
        programs=programs,
        machines=machines,
        budget=budget,
        seeds=tuple(range(n_seeds)),
        tolerance=tolerance,
        progress=progress,
    )
    elapsed = time.time() - started

    out_dir = Path(args.out if args.out is not None else ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    markdown_path = out_dir / f"tournament-{session.scale.name}.md"
    json_path = out_dir / f"tournament-{session.scale.name}.json"
    markdown_path.write_text(result.render())
    json_path.write_text(result.json_text())

    # The BENCH artifact: the leaderboard's economics plus enough
    # platform context to compare across PRs (same stamp the
    # benchmarks/perfjson.py artifacts carry).
    import platform as platform_module

    import numpy

    total_runs = len(result.runs)
    bench_path = out_dir / "BENCH_search.json"
    bench_payload = {
        "benchmark": "search",
        "smoke": bool(args.smoke),
        "scale": session.scale.name,
        "budget": budget,
        "tolerance": tolerance,
        "programs": list(result.programs),
        "machines": list(result.machines),
        "seeds": len(result.seeds),
        "runs": total_runs,
        "wall_seconds": elapsed,
        "runs_per_sec": total_runs / elapsed if elapsed > 0 else None,
        "standings": [standing.payload() for standing in result.standings],
        "python": platform_module.python_version(),
        "numpy": numpy.__version__,
        "platform": platform_module.platform(),
    }
    bench_path.write_text(
        json.dumps(bench_payload, indent=2, sort_keys=True) + "\n"
    )

    print(result.render())
    print(
        f"{total_runs} runs in {elapsed:.1f}s; wrote {markdown_path}, "
        f"{json_path}, {bench_path}"
    )
    if args.smoke:
        ok, message = check_model_beats_random(result)
        print(f"smoke gate: {message}")
        return 0 if ok else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Dubach et al., MICRO 2009",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiments to run: {', '.join(EXPERIMENTS)}, 'all', 'list', "
            "the dataset-store commands 'run' and 'status', 'report' for "
            "the full resumable paper artifact, 'worker' for a "
            "lease-coordinated distributed worker, or the deployment "
            "commands 'train', 'models', and 'serve'"
        ),
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="scale preset: tiny, quick, default, paper (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the dataset build (negative: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "serial", "thread", "process", "cluster"),
        help=(
            "batch strategy for dataset builds; 'cluster' claims work "
            "through the shared lease table so concurrent invocations "
            "cooperate (default: auto)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with 'run'/'report': continue an interrupted build or protocol",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="with 'run': checkpoint at most this many shards, then stop",
    )
    parser.add_argument(
        "--max-folds",
        type=int,
        default=None,
        help="with 'report': checkpoint at most this many folds, then stop",
    )
    parser.add_argument(
        "--only",
        default=None,
        help=(
            "with 'report': comma-separated artifact subset "
            "(e.g. fig6,headline,ablate-k); unrequested folds are not run"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "with 'report'/'tournament': output directory for the "
            "rendered artifacts (default: .)"
        ),
    )
    parser.add_argument(
        "--registry",
        default=None,
        help=(
            "with 'train'/'models'/'serve': model registry directory "
            "(default: <cache-dir>/registry)"
        ),
    )
    parser.add_argument(
        "--no-promote",
        action="store_true",
        help="with 'train': register the model without promoting it",
    )
    parser.add_argument(
        "--promote",
        type=int,
        default=None,
        help="with 'models': promote a registered version for serving",
    )
    parser.add_argument(
        "--rollback",
        action="store_true",
        help="with 'models': re-promote the previously promoted version",
    )
    parser.add_argument(
        "--channel",
        default=None,
        help=(
            "with 'train'/'models'/'serve': promotion channel to promote "
            "to, roll back, or serve from (default: 'default')"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="with 'serve': bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8181,
        help="with 'serve': TCP port, 0 for an ephemeral one (default: 8181)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="with 'serve': disable /predict request micro-batching",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=None,
        help=(
            "with 'serve': seconds the micro-batcher waits to gather "
            "concurrent /predict requests (default: 0 — coalesce only "
            "requests already queued)"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help=(
            "with 'serve': bound on concurrently-served /predict + "
            "/evaluate requests before shedding 429s (default: 64)"
        ),
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="with 'tournament': evaluations per search run (default: 40)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help=(
            "with 'tournament': seed count — stochastic strategies run "
            "once per seed 0..N-1 (default: 2)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "with 'tournament': relative slack on best-known that still "
            "counts as a match (default: 0.01)"
        ),
    )
    parser.add_argument(
        "--programs",
        default=None,
        help=(
            "with 'tournament': comma-separated program subset "
            "(default: the scale's programs)"
        ),
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help=(
            "with 'tournament': number of sampled machines "
            "(default: the scale's machine count)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "with 'tournament': run the fixed CI gate grid and exit 1 "
            "unless model-seeded search out-economises random"
        ),
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help=(
            "with 'worker': drain the scale's protocol fold store "
            "instead of its dataset shard store"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="with 'worker': spawn a local fleet of N worker processes",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help=(
            "with 'worker'/'run'/'report'/'status': seconds without a "
            "heartbeat before a cluster lease counts as stale "
            "(default: 60)"
        ),
    )
    parser.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="with 'worker': compute at most this many units, then stop",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help=(
            "with 'worker': stable worker identity for leases and "
            "progress (default: host-pid-token)"
        ),
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help=(
            "with 'fsck': quarantine/truncate damaged artifacts so the "
            "next resume rebuilds exactly the damaged units"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with 'fsck'/'chaos': emit the machine-readable report",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=None,
        help=(
            "with 'chaos': randomized fault schedules per scenario "
            "(default: 5, or 2 with --smoke)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="with 'chaos': base seed for schedule generation (default: 0)",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=(
            "with 'chaos': comma-separated scenario subset "
            "(build,protocol,cluster,serve; default: all)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        print(list_experiments())
        return 0
    commands = set(COMMANDS) & set(args.experiments)
    if commands and len(args.experiments) > 1:
        parser.error(
            f"{sorted(commands)} are standalone commands and cannot be "
            "combined with experiment names"
        )
    if args.experiments != ["run"] and args.max_shards is not None:
        parser.error("--max-shards only applies to the 'run' command")
    if args.experiments not in (["run"], ["report"]) and args.resume:
        parser.error("--resume only applies to the 'run' and 'report' commands")
    if args.experiments != ["report"] and args.max_folds is not None:
        parser.error("--max-folds only applies to the 'report' command")
    if args.experiments not in (["report"], ["worker"]) and args.only is not None:
        parser.error("--only only applies to the 'report' and 'worker' commands")
    if args.experiments != ["worker"] and (
        args.protocol
        or args.workers is not None
        or args.max_units is not None
        or args.worker_id is not None
    ):
        parser.error(
            "--protocol/--workers/--max-units/--worker-id only apply to "
            "the 'worker' command"
        )
    if args.experiments not in (
        ["worker"],
        ["run"],
        ["report"],
        ["status"],
        ["fsck"],
    ) and args.lease_ttl is not None:
        parser.error(
            "--lease-ttl only applies to the 'worker', 'run', 'report', "
            "'status', and 'fsck' commands"
        )
    if (
        args.experiments not in (["report"], ["tournament"], ["chaos"])
        and args.out is not None
    ):
        parser.error(
            "--out only applies to the 'report', 'tournament', and "
            "'chaos' commands"
        )
    if args.experiments != ["tournament"] and (
        args.budget is not None
        or args.seeds is not None
        or args.tolerance is not None
        or args.programs is not None
        or args.machines is not None
    ):
        parser.error(
            "--budget/--seeds/--tolerance/--programs/--machines "
            "only apply to the 'tournament' command"
        )
    if args.experiments not in (["tournament"], ["chaos"]) and args.smoke:
        parser.error(
            "--smoke only applies to the 'tournament' and 'chaos' commands"
        )
    if args.experiments != ["fsck"] and args.repair:
        parser.error("--repair only applies to the 'fsck' command")
    if args.experiments not in (["fsck"], ["chaos"]) and args.json:
        parser.error("--json only applies to the 'fsck' and 'chaos' commands")
    if args.experiments != ["chaos"] and (
        args.schedules is not None
        or args.seed is not None
        or args.scenarios is not None
    ):
        parser.error(
            "--schedules/--seed/--scenarios only apply to the 'chaos' command"
        )
    if args.experiments != ["models"] and (
        args.promote is not None or args.rollback
    ):
        parser.error("--promote/--rollback only apply to the 'models' command")
    if args.experiments != ["train"] and args.no_promote:
        parser.error("--no-promote only applies to the 'train' command")
    if args.experiments not in (["train"], ["models"], ["serve"]) and (
        args.registry is not None
    ):
        parser.error(
            "--registry only applies to the 'train', 'models', and 'serve' commands"
        )
    if args.experiments != ["serve"] and (
        args.host != "127.0.0.1" or args.port != 8181
    ):
        parser.error("--host/--port only apply to the 'serve' command")
    if args.experiments != ["serve"] and (
        args.no_batch or args.batch_window is not None or args.max_inflight is not None
    ):
        parser.error(
            "--no-batch/--batch-window/--max-inflight only apply to the "
            "'serve' command"
        )
    if args.experiments not in (["train"], ["models"], ["serve"]) and (
        args.channel is not None
    ):
        parser.error(
            "--channel only applies to the 'train', 'models', and 'serve' commands"
        )
    if args.experiments == ["run"]:
        return _run_store(args, parser)
    if args.experiments == ["status"]:
        return _store_status(args)
    if args.experiments == ["report"]:
        return _report(args, parser)
    if args.experiments == ["train"]:
        return _train(args, parser)
    if args.experiments == ["models"]:
        return _models(args, parser)
    if args.experiments == ["serve"]:
        return _serve(args, parser)
    if args.experiments == ["tournament"]:
        return _tournament(args, parser)
    if args.experiments == ["worker"]:
        return _worker(args, parser)
    if args.experiments == ["fsck"]:
        return _fsck(args)
    if args.experiments == ["chaos"]:
        return _chaos(args, parser)

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    session = Session(
        args.scale,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    scale = session.scale
    progress = None if args.quiet else lambda message: print(f"  .. {message}")

    data = None
    if any(EXPERIMENTS[name][0] for name in names):
        started = time.time()
        if not args.quiet:
            print(
                f"building dataset [{scale.name}]: {len(scale.programs)} programs x "
                f"{scale.n_machines} machines x {scale.n_settings} settings"
            )
        data = session.data.dataset(progress=progress)
        if not args.quiet:
            print(f"dataset ready in {time.time() - started:.1f}s\n")

    for name in names:
        needs_data, runner, _ = EXPERIMENTS[name]
        result = runner(data) if needs_data else runner()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
