"""The paper's contribution: the portable optimisation model (§3),
plus its stated future-work extensions (§9): training-set reduction by
clustering and static code features."""

from repro.core.clustering import (
    ClusteringResult,
    k_medoids,
    pair_feature_matrix,
    reduce_training_set,
    training_cost,
)
from repro.core.code_features import CODE_FEATURE_NAMES, static_code_features
from repro.core.crossval import CrossValResult, PairOutcome, leave_one_out
from repro.core.distribution import IIDDistribution, good_settings_by_runtime
from repro.core.features import (
    FeatureNormaliser,
    feature_mask,
    feature_names,
    feature_vector,
    split_feature_vector,
)
from repro.core.mutual_information import (
    entropy,
    feature_best_flag_mi,
    flag_speedup_mi,
    hinton_feature_columns,
    hinton_rows,
    mutual_information,
    normalised_mutual_information,
    quartile_bins,
)
from repro.core.predictor import (
    DEFAULT_BETA,
    DEFAULT_K,
    DEFAULT_QUANTILE,
    OptimisationPredictor,
)
from repro.core.training import TrainingSet, generate_training_set

__all__ = [
    "CODE_FEATURE_NAMES",
    "ClusteringResult",
    "CrossValResult",
    "DEFAULT_BETA",
    "k_medoids",
    "pair_feature_matrix",
    "reduce_training_set",
    "static_code_features",
    "training_cost",
    "DEFAULT_K",
    "DEFAULT_QUANTILE",
    "FeatureNormaliser",
    "IIDDistribution",
    "OptimisationPredictor",
    "PairOutcome",
    "TrainingSet",
    "entropy",
    "feature_best_flag_mi",
    "feature_mask",
    "feature_names",
    "feature_vector",
    "flag_speedup_mi",
    "generate_training_set",
    "good_settings_by_runtime",
    "hinton_feature_columns",
    "hinton_rows",
    "leave_one_out",
    "mutual_information",
    "normalised_mutual_information",
    "quartile_bins",
    "split_feature_vector",
]
