"""The IID multinomial distribution over optimisation passes (§3.3.1).

For one program/microarchitecture pair, the model distribution over flag
settings factorises per dimension (eq. 4):

    g(y) = ∏_ℓ g(y_ℓ),   g(y_ℓ = s_ℓ^(j)) = θ_ℓ^j

Fitting by minimising the KL divergence to the empirical distribution over
the "good" settings — the top 5 % of the sampled space — reduces to the
maximum-likelihood counting estimator of eq. 5: θ_ℓ^j is the fraction of
good settings in which pass ℓ takes value j.  The mode of the factorised
distribution (eq. 1) is the per-dimension argmax.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace


@dataclass
class IIDDistribution:
    """Per-dimension multinomials θ over the flag space."""

    space: FlagSpace
    theta: list[np.ndarray]  # theta[dim][value_index], each sums to 1

    def __post_init__(self) -> None:
        if len(self.theta) != len(self.space):
            raise ValueError("one multinomial per flag dimension required")
        for spec, probs in zip(self.space.specs, self.theta):
            if len(probs) != spec.cardinality:
                raise ValueError(f"{spec.name}: wrong multinomial arity")
            if abs(float(np.sum(probs)) - 1.0) > 1e-6:
                raise ValueError(f"{spec.name}: probabilities must sum to 1")

    # ------------------------------------------------------------- fitting
    @staticmethod
    def fit(
        good_settings: Sequence[FlagSetting],
        space: FlagSpace = DEFAULT_SPACE,
        smoothing: float = 0.0,
    ) -> "IIDDistribution":
        """Maximum-likelihood fit (eq. 5) with optional Laplace smoothing.

        The empirical distribution weights the good settings uniformly, as
        in the paper (footnote 1).
        """
        if not good_settings:
            raise ValueError("cannot fit a distribution to zero settings")
        theta: list[np.ndarray] = []
        for dim, spec in enumerate(space.specs):
            counts = np.full(spec.cardinality, smoothing, dtype=float)
            for setting in good_settings:
                counts[setting.as_indices()[dim]] += 1.0
            theta.append(counts / counts.sum())
        return IIDDistribution(space=space, theta=theta)

    # ----------------------------------------------------------- inference
    def mode(self) -> FlagSetting:
        """The most probable setting (eq. 1); factorisation makes the joint
        argmax the per-dimension argmax.  Ties break to the lower index,
        deterministically."""
        indices = [int(np.argmax(probs)) for probs in self.theta]
        return FlagSetting.from_indices(indices)

    def prob(self, setting: FlagSetting) -> float:
        return math.exp(self.log_prob(setting))

    def top_settings(self, count: int) -> list[tuple[FlagSetting, float]]:
        """The ``count`` most probable settings with their probabilities.

        Best-first enumeration over the factorised space: each dimension's
        values are ranked by probability, the all-argmax combination is
        the mode, and every popped combination spawns one child per
        dimension by stepping that dimension to its next-ranked value.
        Fully deterministic — ties break on the per-dimension probability
        ranks, themselves tied to the lower value index — so the ranking
        (the prediction service's contract) is reproducible bit-for-bit.
        """
        import heapq

        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        # Per-dimension value indices, most probable first; ties break to
        # the lower value index, matching mode().
        orders = [
            sorted(range(len(probs)), key=lambda j: (-float(probs[j]), j))
            for probs in self.theta
        ]
        # The same probabilities, pre-gathered in rank order as python
        # floats: probability() is the enumeration's hot loop, and a
        # list index is several times cheaper than a numpy scalar read.
        # The multiply sequence is unchanged, so products are bit-exact.
        ranked_probs = [
            [float(probs[j]) for j in order]
            for probs, order in zip(self.theta, orders)
        ]

        def indices_of(ranks: tuple[int, ...]) -> tuple[int, ...]:
            return tuple(order[rank] for order, rank in zip(orders, ranks))

        def probability(ranks: tuple[int, ...]) -> float:
            product = 1.0
            for dim_probs, rank in zip(ranked_probs, ranks):
                product *= dim_probs[rank]
            return product

        start = tuple(0 for _ in orders)
        heap = [(-probability(start), start)]
        seen = {start}
        ranked: list[tuple[FlagSetting, float]] = []
        while heap and len(ranked) < count:
            negative, ranks = heapq.heappop(heap)
            ranked.append(
                (FlagSetting.from_indices(indices_of(ranks)), -negative)
            )
            for dim, rank in enumerate(ranks):
                if rank + 1 >= len(orders[dim]):
                    continue
                child = ranks[:dim] + (rank + 1,) + ranks[dim + 1 :]
                if child not in seen:
                    seen.add(child)
                    heapq.heappush(heap, (-probability(child), child))
        return ranked

    def log_prob(self, setting: FlagSetting) -> float:
        total = 0.0
        for dim_probs, index in zip(self.theta, setting.as_indices()):
            probability = float(dim_probs[index])
            if probability <= 0.0:
                return -math.inf
            total += math.log(probability)
        return total

    def sample(self, rng) -> FlagSetting:
        """Draw one setting from the factorised distribution."""
        indices = []
        for probs in self.theta:
            roll = rng.random()
            cumulative = 0.0
            picked = len(probs) - 1
            for index, probability in enumerate(probs):
                cumulative += probability
                if roll < cumulative:
                    picked = index
                    break
            indices.append(picked)
        return FlagSetting.from_indices(indices)

    def marginal(self, flag_name: str) -> np.ndarray:
        dim = self.space.names.index(flag_name)
        return self.theta[dim].copy()

    # ------------------------------------------------------------- algebra
    @staticmethod
    def mix(
        distributions: Sequence["IIDDistribution"], weights: Sequence[float]
    ) -> "IIDDistribution":
        """Convex combination (the KNN predictive distribution of eq. 6)."""
        if len(distributions) != len(weights) or not distributions:
            raise ValueError("need matching, non-empty distributions/weights")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        space = distributions[0].space
        mixed: list[np.ndarray] = []
        for dim in range(len(space)):
            acc = np.zeros_like(distributions[0].theta[dim])
            for distribution, weight in zip(distributions, weights):
                acc += (weight / total) * distribution.theta[dim]
            mixed.append(acc)
        return IIDDistribution(space=space, theta=mixed)

    def cross_entropy(self, settings: Sequence[FlagSetting]) -> float:
        """H(p̃, g) against a uniform empirical distribution over
        ``settings`` (eq. 3's objective, negated)."""
        if not settings:
            raise ValueError("empty empirical set")
        return -sum(self.log_prob(setting) for setting in settings) / len(settings)

    def kl_from_empirical(self, settings: Sequence[FlagSetting]) -> float:
        """KL(p̃ ‖ g) up to the constant entropy of p̃ (eq. 2): reported as
        cross-entropy minus the empirical entropy over distinct settings."""
        distinct: dict[FlagSetting, int] = {}
        for setting in settings:
            distinct[setting] = distinct.get(setting, 0) + 1
        total = len(settings)
        empirical_entropy = -sum(
            (count / total) * math.log(count / total)
            for count in distinct.values()
        )
        return self.cross_entropy(settings) - empirical_entropy


def good_settings_by_runtime(
    settings: Sequence[FlagSetting],
    runtimes: np.ndarray,
    quantile: float = 0.05,
) -> list[FlagSetting]:
    """The paper's e-Y: settings within the top ``quantile`` by speed.

    ``runtimes[i]`` is the runtime of ``settings[i]``; lower is better.  At
    least one setting is always returned.

    Tie rule: the cut size ``n * quantile`` rounds half **up** (50 samples
    at 5 % keep 3, 70 keep 4), so equidistant boundaries behave
    monotonically in ``n`` — unlike banker's rounding, which kept 2 of 50
    but 4 of 70.
    """
    if len(settings) != len(runtimes):
        raise ValueError("settings/runtimes length mismatch")
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile out of (0, 1]: {quantile}")
    keep = max(1, math.floor(len(settings) * quantile + 0.5))
    order = np.argsort(runtimes, kind="stable")
    return [settings[index] for index in order[:keep]]
