"""Leave-one-out cross-validation (§5.1.1).

For every (program, microarchitecture) pair: predict the best passes using
a model that never consults training data from that program or that
machine, compile the program with the prediction, execute it on the
machine, and compare against -O3 and against the iterative-compilation
"Best" (§5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.compiler.flags import FlagSetting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.predictor import OptimisationPredictor
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters


@dataclass
class PairOutcome:
    """One leave-one-out prediction, evaluated."""

    program: str
    machine: MicroArch
    predicted: FlagSetting
    predicted_runtime: float
    o3_runtime: float
    best_runtime: float

    @property
    def speedup(self) -> float:
        """Predicted-setting speedup over -O3 (the paper's headline unit)."""
        return self.o3_runtime / self.predicted_runtime

    @property
    def best_speedup(self) -> float:
        return self.o3_runtime / self.best_runtime

    @property
    def fraction_of_best(self) -> float:
        """(model gain) / (best gain); 1.0 = matched iterative compilation.

        Measured in gained time so that a pair with no headroom does not
        divide by zero; clipped below at 0."""
        best_gain = self.o3_runtime - self.best_runtime
        model_gain = self.o3_runtime - self.predicted_runtime
        if best_gain <= 0.0:
            return 1.0
        return max(model_gain / best_gain, 0.0)


@dataclass
class CrossValResult:
    """All pairs of the leave-one-out sweep (Figure 5(b)'s data)."""

    outcomes: list[PairOutcome] = field(default_factory=list)

    def mean_speedup(self) -> float:
        """Arithmetic mean speedup over -O3 (the paper's 1.16x)."""
        return float(np.mean([outcome.speedup for outcome in self.outcomes]))

    def mean_best_speedup(self) -> float:
        """Mean Best speedup (the paper's 1.23x upper bound)."""
        return float(np.mean([outcome.best_speedup for outcome in self.outcomes]))

    def fraction_of_best(self) -> float:
        """Aggregate fraction of the iterative-compilation gain achieved
        (the paper's 67 %): mean gained speedup over mean available."""
        model = np.array([outcome.speedup for outcome in self.outcomes])
        best = np.array([outcome.best_speedup for outcome in self.outcomes])
        available = float(np.mean(best) - 1.0)
        achieved = float(np.mean(model) - 1.0)
        if available <= 0.0:
            return 1.0
        return achieved / available

    def correlation_with_best(self) -> float:
        """Pearson correlation between predicted and best speedups across
        the joint space (the paper's 0.93)."""
        model = np.array([outcome.speedup for outcome in self.outcomes])
        best = np.array([outcome.best_speedup for outcome in self.outcomes])
        if model.std() < 1e-12 or best.std() < 1e-12:
            return 1.0
        return float(np.corrcoef(model, best)[0, 1])

    def by_program(self) -> dict[str, list[PairOutcome]]:
        grouped: dict[str, list[PairOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.program, []).append(outcome)
        return grouped

    def by_machine(self) -> dict[MicroArch, list[PairOutcome]]:
        grouped: dict[MicroArch, list[PairOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.machine, []).append(outcome)
        return grouped


def leave_one_out(
    training: TrainingSet,
    programs: Sequence[Program],
    compiler: Compiler | None = None,
    predictor: OptimisationPredictor | None = None,
    progress: Callable[[str], None] | None = None,
    oracle=None,
) -> CrossValResult:
    """Run the full §5.1.1 protocol.

    The predictor is fitted once on all pairs; exclusion of the test
    program and machine happens at query time, which is exact for a
    memory-based model (the only global statistic, the feature normaliser,
    changes negligibly and is shared for speed).

    Predicted settings are priced through a
    :class:`~repro.evalrun.oracle.RuntimeOracle` over the training
    matrix: settings already in the sampled grid are read straight from
    the (store-assembled) matrix, and only settings the model
    synthesised outside the grid fall back to a memoised
    compile-once/simulate-once path — never a redundant simulation.
    Pass a shared ``oracle`` to pool that memoisation across several
    sweeps over the same data (the ablations do).
    """
    if oracle is None:
        from repro.evalrun.oracle import RuntimeOracle

        oracle = RuntimeOracle(training, programs, compiler=compiler)
    model = predictor if predictor is not None else OptimisationPredictor()
    if not model.is_fitted:
        model.fit(training)

    result = CrossValResult()
    for p, name in enumerate(training.program_names):
        if progress is not None:
            progress(f"cross-validation: {name} ({p + 1}/{len(training.program_names)})")
        code_features = (
            training.code_features[p, :]
            if training.code_features is not None
            else None
        )
        machines = list(training.machines)
        counters_row = [
            PerfCounters(*training.counters[p, m, :])
            for m in range(len(machines))
        ]
        if hasattr(model, "predict_many"):
            # One ranking-kernel pass for the whole machine row; duck-typed
            # predictors (e.g. the joint-vote ablation) keep the scalar loop.
            predictions = model.predict_many(
                counters_row,
                machines,
                exclude_programs=[name] * len(machines),
                exclude_machines=machines,
                code_features=[code_features] * len(machines),
            )
        else:
            predictions = [
                model.predict(
                    counters,
                    machine,
                    exclude_program=name,
                    exclude_machine=machine,
                    code_features=code_features,
                )
                for counters, machine in zip(counters_row, machines)
            ]
        # Price the whole machine row in one oracle batch: grid settings
        # come straight from the matrix, and any out-of-grid predictions
        # fall back through one vectorised simulate-many pass per setting
        # instead of a scalar simulation per machine.
        predicted_runtimes = oracle.runtime_many(
            name, predictions, training.machines
        )
        for m, machine in enumerate(training.machines):
            result.outcomes.append(
                PairOutcome(
                    program=name,
                    machine=machine,
                    predicted=predictions[m],
                    predicted_runtime=predicted_runtimes[m],
                    o3_runtime=float(training.o3_runtimes[p, m]),
                    best_runtime=training.best_runtime(p, m),
                )
            )
    return result
