"""Feature vectors ``x = (c, d)`` for program/microarchitecture pairs (§3.2).

A pair is characterised by the 11 performance counters of a single -O3 run
(Table 1) concatenated with the 8 (or 10, extended) microarchitecture
descriptors (Table 2).  Counters and descriptors live on very different
scales, so the KNN combiner's Euclidean metric (eq. 6) operates on
z-normalised features; the normaliser is fit on the training pairs.

Feature names follow the paper's Figure 9 x-axis: descriptors first, then
counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.params import (
    DESCRIPTOR_NAMES,
    EXTENDED_DESCRIPTOR_NAMES,
    MicroArch,
)
from repro.sim.counters import COUNTER_NAMES, PerfCounters


def feature_names(extended: bool = False) -> tuple[str, ...]:
    """All feature names, descriptors first (Figure 9 order)."""
    descriptors = EXTENDED_DESCRIPTOR_NAMES if extended else DESCRIPTOR_NAMES
    return descriptors + COUNTER_NAMES


def feature_vector(
    counters: PerfCounters, machine: MicroArch, extended: bool = False
) -> np.ndarray:
    """Build ``x = (d, c)`` for one pair."""
    return np.array(
        machine.descriptor(extended) + counters.vector(), dtype=float
    )


def split_feature_vector(
    vector: np.ndarray, extended: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Split a feature vector back into (descriptors, counters)."""
    n_descriptors = len(EXTENDED_DESCRIPTOR_NAMES if extended else DESCRIPTOR_NAMES)
    return vector[:n_descriptors], vector[n_descriptors:]


@dataclass
class FeatureNormaliser:
    """Z-score normalisation fit on the training pairs."""

    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(matrix: np.ndarray) -> "FeatureNormaliser":
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("need a non-empty 2-D feature matrix")
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return FeatureNormaliser(mean=mean, std=std)

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        return (matrix - self.mean) / self.std

    def transform_one(self, vector: np.ndarray) -> np.ndarray:
        return (vector - self.mean) / self.std


def feature_mask(
    mode: str, extended: bool = False
) -> np.ndarray:
    """Boolean mask selecting feature subsets (for the ablation benches).

    ``mode``: ``both`` (the paper), ``counters`` only, or ``descriptors``
    only.
    """
    n_descriptors = len(EXTENDED_DESCRIPTOR_NAMES if extended else DESCRIPTOR_NAMES)
    n_total = n_descriptors + len(COUNTER_NAMES)
    mask = np.zeros(n_total, dtype=bool)
    if mode == "both":
        mask[:] = True
    elif mode == "descriptors":
        mask[:n_descriptors] = True
    elif mode == "counters":
        mask[n_descriptors:] = True
    else:
        raise ValueError(f"unknown feature mode {mode!r}")
    return mask
