"""Training-data generation (§3.2).

For M program/microarchitecture pairs, evaluate N uniform-random flag
settings each and record execution times, plus the -O3 baseline run that
provides both the speedup reference and the performance-counter features.
The same N settings are shared across pairs (each program is compiled once
per setting and the binary timed on every machine), matching the paper's
7-million-simulation protocol of §4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.distribution import IIDDistribution, good_settings_by_runtime
from repro.machine.params import MicroArch
from repro.sim.analytic import simulate_analytic
from repro.sim.counters import COUNTER_NAMES


@dataclass
class TrainingSet:
    """Runtimes of N settings × P programs × A machines, plus -O3 data."""

    program_names: list[str]
    machines: list[MicroArch]
    settings: list[FlagSetting]
    #: runtimes[p, s, m] in seconds
    runtimes: np.ndarray
    #: o3_runtimes[p, m] in seconds
    o3_runtimes: np.ndarray
    #: counters[p, m, k] — Table 1 counters of the -O3 run
    counters: np.ndarray
    extended: bool = False
    metadata: dict = field(default_factory=dict)
    #: code_features[p, j] — machine-independent static features of the -O3
    #: binary (the §9 extension); ``None`` for counter-only datasets.
    code_features: np.ndarray | None = None

    def __post_init__(self) -> None:
        P, S, M = (
            len(self.program_names),
            len(self.settings),
            len(self.machines),
        )
        if self.runtimes.shape != (P, S, M):
            raise ValueError(f"runtimes shape {self.runtimes.shape} != {(P, S, M)}")
        if self.o3_runtimes.shape != (P, M):
            raise ValueError("o3_runtimes shape mismatch")
        if self.counters.shape != (P, M, len(COUNTER_NAMES)):
            raise ValueError("counters shape mismatch")
        if self.code_features is not None and self.code_features.shape[0] != P:
            raise ValueError("code_features rows must match programs")

    # ------------------------------------------------------------ accessors
    def program_index(self, name: str) -> int:
        return self.program_names.index(name)

    def machine_index(self, machine: MicroArch) -> int:
        return self.machines.index(machine)

    def speedups(self) -> np.ndarray:
        """speedups[p, s, m] over -O3 (greater is faster)."""
        return self.o3_runtimes[:, None, :] / self.runtimes

    def best_runtime(self, program: int, machine: int) -> float:
        """The iterative-compilation 'Best' for one pair (§5.1.2)."""
        return float(self.runtimes[program, :, machine].min())

    def best_speedup(self, program: int, machine: int) -> float:
        return float(
            self.o3_runtimes[program, machine]
            / self.best_runtime(program, machine)
        )

    def best_setting(self, program: int, machine: int) -> FlagSetting:
        index = int(np.argmin(self.runtimes[program, :, machine]))
        return self.settings[index]

    def good_settings(
        self, program: int, machine: int, quantile: float = 0.05
    ) -> list[FlagSetting]:
        """The paper's top-5 % set e-Y for one pair."""
        return good_settings_by_runtime(
            self.settings, self.runtimes[program, :, machine], quantile
        )

    def pair_distribution(
        self, program: int, machine: int, quantile: float = 0.05
    ) -> IIDDistribution:
        """g(y|X) for one training pair (eqs. 4–5)."""
        return IIDDistribution.fit(self.good_settings(program, machine, quantile))


def generate_training_set(
    programs: Sequence[Program],
    machines: Sequence[MicroArch],
    n_settings: int,
    seed: int,
    extended: bool = False,
    compiler: Compiler | None = None,
    progress: Callable[[str], None] | None = None,
) -> TrainingSet:
    """Evaluate ``n_settings`` random settings on every pair (§3.2)."""
    active_compiler = compiler if compiler is not None else Compiler()
    settings = DEFAULT_SPACE.sample_many(n_settings, seed)
    baseline = o3_setting()

    from repro.core.code_features import CODE_FEATURE_NAMES, static_code_features

    P, S, M = len(programs), len(settings), len(machines)
    runtimes = np.empty((P, S, M), dtype=float)
    o3_runtimes = np.empty((P, M), dtype=float)
    counters = np.empty((P, M, len(COUNTER_NAMES)), dtype=float)
    code_features = np.empty((P, len(CODE_FEATURE_NAMES)), dtype=float)

    for p, program in enumerate(programs):
        if progress is not None:
            progress(f"training data: {program.name} ({p + 1}/{P})")
        o3_binary = active_compiler.compile(program, baseline)
        code_features[p, :] = static_code_features(o3_binary)
        for m, machine in enumerate(machines):
            result = simulate_analytic(o3_binary, machine)
            o3_runtimes[p, m] = result.seconds
            counters[p, m, :] = result.counters.vector()
        for s, setting in enumerate(settings):
            binary = active_compiler.compile(program, setting)
            for m, machine in enumerate(machines):
                runtimes[p, s, m] = simulate_analytic(binary, machine).seconds

    return TrainingSet(
        program_names=[program.name for program in programs],
        machines=list(machines),
        settings=settings,
        runtimes=runtimes,
        o3_runtimes=o3_runtimes,
        counters=counters,
        extended=extended,
        metadata={"seed": seed, "n_settings": n_settings},
        code_features=code_features,
    )
