"""Training-data generation (§3.2).

For M program/microarchitecture pairs, evaluate N uniform-random flag
settings each and record execution times, plus the -O3 baseline run that
provides both the speedup reference and the performance-counter features.
The same N settings are shared across pairs (each program is compiled once
per setting and the binary timed on every machine), matching the paper's
7-million-simulation protocol of §4.4.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.parallel import resolve_jobs, run_batch
from repro.core.distribution import IIDDistribution, good_settings_by_runtime
from repro.machine.params import MicroArch
from repro.sim.counters import COUNTER_NAMES


@dataclass
class TrainingSet:
    """Runtimes of N settings × P programs × A machines, plus -O3 data."""

    program_names: list[str]
    machines: list[MicroArch]
    settings: list[FlagSetting]
    #: runtimes[p, s, m] in seconds
    runtimes: np.ndarray
    #: o3_runtimes[p, m] in seconds
    o3_runtimes: np.ndarray
    #: counters[p, m, k] — Table 1 counters of the -O3 run
    counters: np.ndarray
    extended: bool = False
    metadata: dict = field(default_factory=dict)
    #: code_features[p, j] — machine-independent static features of the -O3
    #: binary (the §9 extension); ``None`` for counter-only datasets.
    code_features: np.ndarray | None = None

    def __post_init__(self) -> None:
        P, S, M = (
            len(self.program_names),
            len(self.settings),
            len(self.machines),
        )
        if self.runtimes.shape != (P, S, M):
            raise ValueError(f"runtimes shape {self.runtimes.shape} != {(P, S, M)}")
        if self.o3_runtimes.shape != (P, M):
            raise ValueError("o3_runtimes shape mismatch")
        if self.counters.shape != (P, M, len(COUNTER_NAMES)):
            raise ValueError("counters shape mismatch")
        if self.code_features is not None and self.code_features.shape[0] != P:
            raise ValueError("code_features rows must match programs")

    # ------------------------------------------------------------ accessors
    def program_index(self, name: str) -> int:
        return self.program_names.index(name)

    def machine_index(self, machine: MicroArch) -> int:
        return self.machines.index(machine)

    def speedups(self) -> np.ndarray:
        """speedups[p, s, m] over -O3 (greater is faster)."""
        return self.o3_runtimes[:, None, :] / self.runtimes

    def best_runtime(self, program: int, machine: int) -> float:
        """The iterative-compilation 'Best' for one pair (§5.1.2)."""
        return float(self.runtimes[program, :, machine].min())

    def best_speedup(self, program: int, machine: int) -> float:
        return float(
            self.o3_runtimes[program, machine]
            / self.best_runtime(program, machine)
        )

    def best_setting(self, program: int, machine: int) -> FlagSetting:
        index = int(np.argmin(self.runtimes[program, :, machine]))
        return self.settings[index]

    def good_settings(
        self, program: int, machine: int, quantile: float = 0.05
    ) -> list[FlagSetting]:
        """The paper's top-5 % set e-Y for one pair."""
        return good_settings_by_runtime(
            self.settings, self.runtimes[program, :, machine], quantile
        )

    def pair_distribution(
        self, program: int, machine: int, quantile: float = 0.05
    ) -> IIDDistribution:
        """g(y|X) for one training pair (eqs. 4–5)."""
        return IIDDistribution.fit(self.good_settings(program, machine, quantile))

    def fingerprint(self) -> str:
        """Content digest of the whole training set.

        Covers programs, machines, settings, and every measured runtime, so
        a model persisted alongside this fingerprint can be checked against
        the data that produced it.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.program_names).encode())
        for machine in self.machines:
            digest.update(repr(machine).encode())
        for setting in self.settings:
            digest.update(repr(setting.as_indices()).encode())
        for array in (self.runtimes, self.o3_runtimes, self.counters):
            digest.update(np.ascontiguousarray(array, dtype=float).tobytes())
        if self.code_features is not None:
            digest.update(
                np.ascontiguousarray(self.code_features, dtype=float).tobytes()
            )
        digest.update(repr(self.extended).encode())
        return digest.hexdigest()[:16]


def _program_rows(
    program: Program,
    machines: Sequence[MicroArch],
    settings: Sequence[FlagSetting],
    compiler: Compiler | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One program's slice of the training matrices.

    Deterministic in its inputs alone, so worker processes computing
    different programs produce exactly what a serial loop would.  This is
    the compile-once/simulate-many hot path shared with the sharded
    :mod:`repro.store` builds, imported lazily to avoid a package cycle.
    """
    from repro.store.compute import compute_shard

    return compute_shard(program, machines, settings, compiler)


def _program_rows_task(
    work: tuple[Program, Sequence[MicroArch], Sequence[FlagSetting], FlagSpace, bool],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Picklable process-pool entry point.

    The caller's compiler cannot cross the process boundary, so each task
    rebuilds one from its configuration — keeping parallel results
    identical to serial ones even for non-default compilers.
    """
    from repro.store.compute import compute_shard_task

    return compute_shard_task(work)


def generate_training_set(
    programs: Sequence[Program],
    machines: Sequence[MicroArch],
    n_settings: int,
    seed: int,
    extended: bool = False,
    compiler: Compiler | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
) -> TrainingSet:
    """Evaluate ``n_settings`` random settings on every pair (§3.2).

    With ``jobs > 1`` (negative: all cores) the per-program work — the
    embarrassingly parallel axis, since each program is compiled and
    simulated independently — fans out over a process pool; results are
    identical to a serial run.
    """
    active_compiler = compiler if compiler is not None else Compiler()
    settings = DEFAULT_SPACE.sample_many(n_settings, seed)

    from repro.core.code_features import CODE_FEATURE_NAMES

    P, S, M = len(programs), len(settings), len(machines)
    runtimes = np.empty((P, S, M), dtype=float)
    o3_runtimes = np.empty((P, M), dtype=float)
    counters = np.empty((P, M, len(COUNTER_NAMES)), dtype=float)
    code_features = np.empty((P, len(CODE_FEATURE_NAMES)), dtype=float)

    jobs = resolve_jobs(jobs)
    if jobs > 1 and P > 1:
        if progress is not None:
            progress(f"training data: {P} programs across {jobs} workers")
        rows = run_batch(
            _program_rows_task,
            [
                (
                    program,
                    list(machines),
                    settings,
                    active_compiler.space,
                    active_compiler.cache_enabled,
                )
                for program in programs
            ],
            jobs=jobs,
            executor="process",
        )
        for p, (run_slab, o3_row, counter_rows, code_row) in enumerate(rows):
            runtimes[p] = run_slab
            o3_runtimes[p] = o3_row
            counters[p] = counter_rows
            code_features[p] = code_row
    else:
        for p, program in enumerate(programs):
            if progress is not None:
                progress(f"training data: {program.name} ({p + 1}/{P})")
            (
                runtimes[p],
                o3_runtimes[p],
                counters[p],
                code_features[p],
            ) = _program_rows(program, machines, settings, active_compiler)

    return TrainingSet(
        program_names=[program.name for program in programs],
        machines=list(machines),
        settings=settings,
        runtimes=runtimes,
        o3_runtimes=o3_runtimes,
        counters=counters,
        extended=extended,
        metadata={"seed": seed, "n_settings": n_settings},
        code_features=code_features,
    )
