"""Training-data reduction by clustering (the paper's §9 future work).

The paper's training cost is M pairs × N settings of compile-and-execute;
§3.2 and §9 point at clustering [31] to reduce it.  This module implements
that extension: k-medoids over the pairs' feature vectors selects a
representative subset of program/microarchitecture pairs, and a model
trained on the medoids alone is evaluated against the full model.

k-medoids (PAM-style, deterministic seeding) is chosen over k-means because
medoids *are* training pairs — exactly the thing we want to keep — and
because it works with any metric, matching the predictor's Euclidean
distance over normalised features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureNormaliser, feature_vector
from repro.core.training import TrainingSet
from repro.sim.counters import PerfCounters


@dataclass
class ClusteringResult:
    """Selected medoid pairs and the assignment quality."""

    medoid_indices: list[int]  # flat pair indices (p * M + m)
    assignments: np.ndarray  # pair -> medoid position
    total_distance: float

    def keep_fraction(self, total_pairs: int) -> float:
        return len(self.medoid_indices) / total_pairs


def pair_feature_matrix(training: TrainingSet) -> np.ndarray:
    """Normalised feature vectors of every training pair."""
    raw = []
    for p in range(len(training.program_names)):
        for m, machine in enumerate(training.machines):
            counters = PerfCounters(*training.counters[p, m, :])
            raw.append(feature_vector(counters, machine, training.extended))
    matrix = np.array(raw)
    return FeatureNormaliser.fit(matrix).transform(matrix)


def k_medoids(
    features: np.ndarray, k: int, max_iterations: int = 50
) -> ClusteringResult:
    """Deterministic PAM-style k-medoids.

    Seeding is farthest-point (starting from the point closest to the
    global centroid), which is deterministic and spreads medoids across the
    feature space; the swap phase then alternates assignment and
    per-cluster medoid updates until stable.
    """
    count = len(features)
    if not 1 <= k <= count:
        raise ValueError(f"k={k} out of range for {count} points")
    distances = np.linalg.norm(
        features[:, None, :] - features[None, :, :], axis=2
    )

    centroid = features.mean(axis=0)
    first = int(np.argmin(np.linalg.norm(features - centroid, axis=1)))
    medoids = [first]
    while len(medoids) < k:
        nearest = distances[:, medoids].min(axis=1)
        medoids.append(int(np.argmax(nearest)))

    for _ in range(max_iterations):
        assignments = np.argmin(distances[:, medoids], axis=1)
        new_medoids = []
        for position in range(len(medoids)):
            members = np.nonzero(assignments == position)[0]
            if len(members) == 0:
                new_medoids.append(medoids[position])
                continue
            within = distances[np.ix_(members, members)].sum(axis=1)
            new_medoids.append(int(members[int(np.argmin(within))]))
        if new_medoids == medoids:
            break
        medoids = new_medoids

    assignments = np.argmin(distances[:, medoids], axis=1)
    total = float(
        distances[np.arange(count), [medoids[a] for a in assignments]].sum()
    )
    return ClusteringResult(
        medoid_indices=medoids, assignments=assignments, total_distance=total
    )


def reduce_training_set(training: TrainingSet, k: int) -> TrainingSet:
    """A training set containing only the k medoid *pairs*' information.

    Pairs are atomic in the model (one distribution each), but the stored
    arrays are (program × machine) grids; reduction therefore keeps the
    programs and machines that appear in any medoid pair and masks nothing
    else — the common case of clustered reduction keeping a grid-shaped
    subset.  The returned set's runtime matrix covers
    ``kept_programs × all settings × kept_machines``.
    """
    features = pair_feature_matrix(training)
    clustering = k_medoids(features, k)
    M = len(training.machines)
    kept_programs = sorted({index // M for index in clustering.medoid_indices})
    kept_machines = sorted({index % M for index in clustering.medoid_indices})

    return TrainingSet(
        program_names=[training.program_names[p] for p in kept_programs],
        machines=[training.machines[m] for m in kept_machines],
        settings=list(training.settings),
        runtimes=training.runtimes[np.ix_(kept_programs, range(len(training.settings)), kept_machines)],
        o3_runtimes=training.o3_runtimes[np.ix_(kept_programs, kept_machines)],
        counters=training.counters[np.ix_(kept_programs, kept_machines, range(training.counters.shape[2]))],
        extended=training.extended,
        metadata={**training.metadata, "reduced_to_medoids": k},
    )


def training_cost(training: TrainingSet) -> int:
    """Compile-and-execute evaluations the set represents (§3.2's cost)."""
    return (
        len(training.program_names)
        * len(training.settings)
        * len(training.machines)
    )
