"""Vectorised prediction/ranking kernel for the §3.3.2 model.

This is the model-tier twin of :mod:`repro.sim.vector`: the scalar
KNN/softmax/mixture math in :class:`repro.core.predictor.OptimisationPredictor`
stays the executable reference, and this module prices whole *batches* of
queries against the fitted training pairs in a handful of numpy passes.

Bit-compatibility contract
--------------------------
Every batched result is **bit-identical** to the scalar reference, not
merely close.  The kernel earns that the same way the simulate kernel did —
by performing *the same float operations in the same order* per element:

* Distances: the scalar path computes ``np.linalg.norm(pair.features -
  query)``, which lowers to ``sqrt(dot(d, d))``.  The batched path computes
  ``np.sqrt(np.vecdot(diff, diff))`` over a C-contiguous ``[B, P, F]``
  difference tensor — ``np.vecdot`` runs the same pairwise dot kernel per
  row, so every distance matches to the last ulp.  (On numpy < 2.0, where
  ``vecdot`` does not exist, a per-row ``np.dot`` loop stands in.)
* Top-K: ``stable_topk`` reproduces ``np.argsort(kind="stable")[:k]``
  exactly — ``argpartition`` finds the k-th distance, ties at the pivot are
  repaired in index order, and the selected rows are re-sorted stably.
* Softmax: elementwise exp/shift, with the per-row normaliser reduced over
  the last axis of a C-contiguous array — the same ``add.reduce`` tree as
  the scalar path's ``weights.sum()``.
* Mixture: :meth:`IIDDistribution.mix` accumulates neighbour thetas in
  sequence; the batched kernel runs the identical ordered K-loop (never an
  einsum, whose reassociation would drift in the last ulp).

Queries whose exclusion sets differ in *candidate count* may need a
different K (``min(k, candidates)``); rows are grouped by that effective K
and each group runs as one rectangular kernel, so padding never leaks into
a reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.flags import FlagSpace
from repro.core.distribution import IIDDistribution

__all__ = [
    "PredictorTensors",
    "stack_state_arrays",
    "query_distances",
    "stable_topk",
    "predict_distributions",
    "nearest_neighbours",
]


if hasattr(np, "vecdot"):

    def _row_dots(diff: np.ndarray) -> np.ndarray:
        """dot(d, d) along the last axis — numpy >= 2.0 fast path."""
        return np.vecdot(diff, diff)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def _row_dots(diff: np.ndarray) -> np.ndarray:
        flat = diff.reshape(-1, diff.shape[-1])
        out = np.empty(flat.shape[0], dtype=flat.dtype)
        for row in range(flat.shape[0]):
            out[row] = np.dot(flat[row], flat[row])
        return out.reshape(diff.shape[:-1])


@dataclass(frozen=True)
class PredictorTensors:
    """The fitted training pairs, stacked into ranking-ready arrays.

    ``features[p]`` is pair ``p``'s normalised, masked feature vector and
    ``theta[p, d, :cardinalities[d]]`` its per-dimension multinomial
    (zero-padded to the widest dimension).  ``program_ids``/``machine_ids``
    map each pair to a dense id so leave-one-out exclusion masks are two
    integer compares instead of P python equality checks.
    """

    features: np.ndarray  # [P, F] float64, C-contiguous
    theta: np.ndarray  # [P, D, Vmax] float64, zero-padded
    cardinalities: tuple[int, ...]
    program_ids: np.ndarray  # [P] int64
    machine_ids: np.ndarray  # [P] int64
    program_index: dict
    machine_index: dict

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence,
        space: FlagSpace,
        features: np.ndarray | None = None,
        theta: np.ndarray | None = None,
    ) -> "PredictorTensors":
        """Stack fitted ``_TrainingPair``s; precomputed arrays (from the
        registry sidecar) may be supplied and are validated against the
        expected shapes."""
        if not pairs:
            raise ValueError("cannot stack an empty training set")
        cardinalities = space.cardinalities()
        n_pairs = len(pairs)
        n_dims = len(cardinalities)
        v_max = max(cardinalities)
        n_features = int(pairs[0].features.size)

        if features is None:
            features = np.array([pair.features for pair in pairs], dtype=float)
        else:
            features = np.ascontiguousarray(np.asarray(features, dtype=float))
        if features.shape != (n_pairs, n_features):
            raise ValueError(
                f"features shape {features.shape} != {(n_pairs, n_features)}"
            )

        if theta is None:
            theta = np.zeros((n_pairs, n_dims, v_max), dtype=float)
            for p, pair in enumerate(pairs):
                for d, probs in enumerate(pair.distribution.theta):
                    theta[p, d, : len(probs)] = probs
        else:
            theta = np.ascontiguousarray(np.asarray(theta, dtype=float))
        if theta.shape != (n_pairs, n_dims, v_max):
            raise ValueError(
                f"theta shape {theta.shape} != {(n_pairs, n_dims, v_max)}"
            )

        program_index: dict = {}
        machine_index: dict = {}
        program_ids = np.empty(n_pairs, dtype=np.int64)
        machine_ids = np.empty(n_pairs, dtype=np.int64)
        for p, pair in enumerate(pairs):
            program_ids[p] = program_index.setdefault(
                pair.program, len(program_index)
            )
            machine_ids[p] = machine_index.setdefault(
                pair.machine, len(machine_index)
            )
        return cls(
            features=features,
            theta=theta,
            cardinalities=cardinalities,
            program_ids=program_ids,
            machine_ids=machine_ids,
            program_index=program_index,
            machine_index=machine_index,
        )

    def candidate_mask(
        self, exclude_program, exclude_machine
    ) -> np.ndarray:
        """Boolean keep-mask over pairs — the §5.1.1 leave-one-out rule.

        An exclusion key the model never trained on matches nothing, like
        the scalar ``!=`` filter.
        """
        keep = np.ones(self.program_ids.shape[0], dtype=bool)
        if exclude_program is not None:
            pid = self.program_index.get(exclude_program, -1)
            keep &= self.program_ids != pid
        if exclude_machine is not None:
            mid = self.machine_index.get(exclude_machine, -1)
            keep &= self.machine_ids != mid
        return keep


def stack_state_arrays(model_state: dict) -> tuple[np.ndarray, np.ndarray]:
    """Stack a :meth:`get_state` payload's pairs into ``(features, theta)``.

    Works on the raw JSON state — no :class:`FlagSpace` required — so the
    registry can build its ranking-ready sidecar at promote time without
    reconstructing the model.
    """
    entries = model_state["pairs"]
    if not entries:
        raise ValueError("cannot stack an empty model state")
    features = np.array(
        [entry["features"] for entry in entries], dtype=float
    )
    v_max = max(len(probs) for probs in entries[0]["theta"])
    n_dims = len(entries[0]["theta"])
    theta = np.zeros((len(entries), n_dims, v_max), dtype=float)
    for p, entry in enumerate(entries):
        for d, probs in enumerate(entry["theta"]):
            theta[p, d, : len(probs)] = probs
    return features, theta


def query_distances(features: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Euclidean distances ``[B, P]``, bit-identical to the scalar
    ``np.linalg.norm(pair.features - query)`` per element."""
    diff = queries[:, None, :] - features[None, :, :]
    return np.sqrt(_row_dots(diff))


def stable_topk(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k smallest per row — exactly
    ``np.argsort(row, kind="stable")[:k]``, via argpartition + tie repair.

    ``argpartition`` is O(P) but breaks pivot ties arbitrarily; rows are
    repaired by taking every strictly-smaller entry plus the first
    (index-order) entries equal to the k-th value, then stably re-sorting
    the k survivors by distance.
    """
    n_rows, n_cols = distances.shape
    if k >= n_cols:
        return np.argsort(distances, axis=1, kind="stable")[:, :k]
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    kth = np.take_along_axis(distances, part, axis=1).max(axis=1)
    less = distances < kth[:, None]
    equal = distances == kth[:, None]
    need = k - less.sum(axis=1)
    take = equal & (np.cumsum(equal, axis=1) <= need[:, None])
    selected = less | take  # exactly k True per row, index-ascending
    indices = np.nonzero(selected)[1].reshape(n_rows, k)
    chosen = np.take_along_axis(distances, indices, axis=1)
    order = np.argsort(chosen, axis=1, kind="stable")
    return np.take_along_axis(indices, order, axis=1)


def _mixture_theta(
    theta_nn: np.ndarray, nearest: np.ndarray, beta: float
) -> np.ndarray:
    """Softmax-weighted mixture over the K axis, one elementwise op at a
    time in the scalar reference's order.

    ``theta_nn`` is ``[B, K, D, V]``, ``nearest`` the matching ``[B, K]``
    distances; returns the mixed ``[B, D, V]`` theta.
    """
    d_min = nearest.min(axis=1, keepdims=True)
    weights = np.exp((-beta) * (nearest - d_min))
    weights = weights / weights.sum(axis=1, keepdims=True)

    # IIDDistribution.mix starts from python sum(weights) — a sequential
    # left fold — then accumulates (w/total) * theta term by term.  Both
    # loops are replicated verbatim; a numpy reduce or einsum would
    # re-associate the additions and drift in the last ulp.
    n_k = weights.shape[1]
    total = weights[:, 0].copy()
    for j in range(1, n_k):
        total = total + weights[:, j]
    scale = weights / total[:, None]
    mixed = np.zeros(
        (theta_nn.shape[0],) + theta_nn.shape[2:], dtype=theta_nn.dtype
    )
    for j in range(n_k):
        mixed += scale[:, j, None, None] * theta_nn[:, j]
    return mixed


def predict_distributions(
    tensors: PredictorTensors,
    queries: np.ndarray,
    candidate_indices: Sequence[np.ndarray],
    k: int,
    beta: float,
    space: FlagSpace,
) -> list[IIDDistribution]:
    """One kernel pass of ``predict_distribution`` for a whole batch.

    ``queries`` is the ``[B, F]`` matrix of normalised, masked query
    vectors; ``candidate_indices[b]`` the pair indices query ``b`` may
    consult (exclusions already applied by the predictor's audit gate).
    """
    queries = np.ascontiguousarray(np.asarray(queries, dtype=float))
    n_queries = queries.shape[0]
    distances = query_distances(tensors.features, queries)

    masked = np.full(distances.shape, np.inf)
    effective_k = np.empty(n_queries, dtype=np.intp)
    for b, indices in enumerate(candidate_indices):
        if indices.size == 0:
            raise RuntimeError("no training pairs left after exclusions")
        masked[b, indices] = distances[b, indices]
        effective_k[b] = min(k, indices.size)

    out: list[IIDDistribution | None] = [None] * n_queries
    for kk in np.unique(effective_k):
        rows = np.nonzero(effective_k == kk)[0]
        sub = masked[rows]
        top = stable_topk(sub, int(kk))
        nearest = np.take_along_axis(sub, top, axis=1)
        mixed = _mixture_theta(tensors.theta[top], nearest, beta)
        for g, b in enumerate(rows):
            # Views into the mixed tensor, not copies: the distribution
            # treats theta as read-only, and the values are bit-equal to
            # the scalar mix either way.
            out[int(b)] = IIDDistribution(
                space=space,
                theta=[
                    mixed[g, d, :cardinality]
                    for d, cardinality in enumerate(tensors.cardinalities)
                ],
            )
    return out  # type: ignore[return-value]


def nearest_neighbours(
    tensors: PredictorTensors,
    query: np.ndarray,
    candidate_indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The K nearest pair indices and distances for one query."""
    distances = query_distances(
        tensors.features, np.asarray(query, dtype=float)[None, :]
    )[0]
    masked = np.full(distances.shape, np.inf)
    masked[candidate_indices] = distances[candidate_indices]
    kk = min(k, int(candidate_indices.size))
    top = stable_topk(masked[None, :], kk)[0]
    return top, masked[top]
