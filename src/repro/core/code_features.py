"""Static code features (the paper's §5.3/§9 future-work extension).

The paper's failure analysis on crc concludes that "the performance
counters are not sufficiently informative … the addition of extra
features, in particular code features [9], would enable us to pick this
up".  This module provides those features: a machine-independent vector
computed from the program's -O3 binary, capturing exactly the structural
facts the counters miss — how big the hot loops are, how call-bound the
program is, how much of its work is memory traffic.

Used through ``OptimisationPredictor(feature_mode="with_code")``; the
ablation bench compares it against the paper's (c, d) features.
"""

from __future__ import annotations

import math

from repro.compiler.binary import CompiledBinary

CODE_FEATURE_NAMES: tuple[str, ...] = (
    "log_code_bytes",
    "log_hot_bytes",
    "log_max_loop_span",
    "log_loop_count",
    "log_mean_trip",
    "branch_density",
    "call_density",
    "memory_density",
    "alu_fraction",
    "mac_fraction",
    "shift_fraction",
    "log_branch_sites",
)


def static_code_features(binary: CompiledBinary) -> tuple[float, ...]:
    """The 12 static features of one compiled binary."""
    dyn = max(binary.dyn_insns, 1.0)
    max_span = max((loop.code_bytes for loop in binary.loops), default=1)
    mean_trip = 1.0
    if binary.loops:
        weights = sum(loop.iterations for loop in binary.loops)
        if weights > 0:
            mean_trip = sum(
                loop.trip_count * loop.iterations for loop in binary.loops
            ) / weights
    return (
        math.log2(max(binary.code_bytes, 1)),
        math.log2(max(binary.hot_code_bytes, 1)),
        math.log2(max(max_span, 1)),
        math.log2(len(binary.loops) + 1),
        math.log2(max(mean_trip, 1.0)),
        binary.dyn_branches / dyn,
        binary.dyn_calls / dyn,
        binary.dyn_memory / dyn,
        binary.mix["alu"] / dyn,
        binary.mix["mac"] / dyn,
        binary.mix["shift"] / dyn,
        math.log2(binary.branch_sites + 1),
    )
