"""Mutual-information analyses behind the paper's Hinton diagrams.

* Figure 8: for each program, the normalised MI between each optimisation
  dimension's value and the (quartile-binned) speedup across all sampled
  settings and machines — "which passes matter for this program".
* Figure 9: across all pairs, the normalised MI between each feature
  (quartile-binned) and each optimisation's best value — "which features
  predict whether to apply the pass".
"""

from __future__ import annotations

from collections import Counter
from math import log
from typing import Sequence

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE
from repro.core.features import feature_names, feature_vector
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters


def entropy(labels: Sequence) -> float:
    """Shannon entropy (nats) of a discrete sample."""
    total = len(labels)
    if total == 0:
        return 0.0
    return -sum(
        (count / total) * log(count / total)
        for count in Counter(labels).values()
    )


def mutual_information(xs: Sequence, ys: Sequence) -> float:
    """MI (nats) between two paired discrete samples."""
    if len(xs) != len(ys):
        raise ValueError("paired samples required")
    total = len(xs)
    if total == 0:
        return 0.0
    joint = Counter(zip(xs, ys))
    margin_x = Counter(xs)
    margin_y = Counter(ys)
    mi = 0.0
    for (x, y), count in joint.items():
        p_xy = count / total
        p_x = margin_x[x] / total
        p_y = margin_y[y] / total
        mi += p_xy * log(p_xy / (p_x * p_y))
    return max(mi, 0.0)


def normalised_mutual_information(xs: Sequence, ys: Sequence) -> float:
    """MI normalised by sqrt(H(x)·H(y)); 0 when either is constant."""
    h_x = entropy(xs)
    h_y = entropy(ys)
    if h_x < 1e-12 or h_y < 1e-12:
        return 0.0
    return mutual_information(xs, ys) / (h_x * h_y) ** 0.5


def quartile_bins(values: np.ndarray) -> np.ndarray:
    """Assign each value to one of four quantile bins."""
    quartiles = np.quantile(values, [0.25, 0.5, 0.75])
    return np.digitize(values, quartiles)


def flag_speedup_mi(training: TrainingSet) -> np.ndarray:
    """Figure 8's matrix: rows = flag dimensions, columns = programs.

    Entry [ℓ, p] is the normalised MI between optimisation ℓ's value and
    the quartile-binned speedup over (setting, machine) samples of
    program p.
    """
    space = DEFAULT_SPACE
    speedups = training.speedups()  # [P, S, M]
    setting_indices = np.array(
        [setting.as_indices() for setting in training.settings]
    )  # [S, L]
    P, S, M = speedups.shape
    matrix = np.zeros((len(space), P))
    for p in range(P):
        flat_speedups = speedups[p].reshape(S * M)
        bins = quartile_bins(flat_speedups)
        for dim in range(len(space)):
            values = np.repeat(setting_indices[:, dim], M)
            matrix[dim, p] = normalised_mutual_information(
                values.tolist(), bins.tolist()
            )
    return matrix


def feature_best_flag_mi(
    training: TrainingSet, quantile: float = 0.05
) -> np.ndarray:
    """Figure 9's matrix: rows = flag dimensions, columns = features.

    Entry [ℓ, f] is the normalised MI between feature f (quartile-binned
    across pairs) and the mode of optimisation ℓ under each pair's
    good-settings distribution.
    """
    space = DEFAULT_SPACE
    P = len(training.program_names)
    M = len(training.machines)

    pair_features = []
    best_values = []  # [pair][dim]
    for p in range(P):
        for m, machine in enumerate(training.machines):
            counters = PerfCounters(*training.counters[p, m, :])
            pair_features.append(
                feature_vector(counters, machine, training.extended)
            )
            distribution = training.pair_distribution(p, m, quantile)
            best_values.append(distribution.mode().as_indices())
    features = np.array(pair_features)  # [P*M, F]
    best = np.array(best_values)  # [P*M, L]

    n_features = features.shape[1]
    matrix = np.zeros((len(space), n_features))
    for f in range(n_features):
        bins = quartile_bins(features[:, f]).tolist()
        for dim in range(len(space)):
            matrix[dim, f] = normalised_mutual_information(
                best[:, dim].tolist(), bins
            )
    return matrix


def hinton_rows(training: TrainingSet) -> list[str]:
    """Row labels shared by both diagrams (Figure 8/9 y-axis)."""
    return list(DEFAULT_SPACE.names)


def hinton_feature_columns(training: TrainingSet) -> list[str]:
    """Column labels of Figure 9 (descriptors then counters)."""
    return list(feature_names(training.extended))
