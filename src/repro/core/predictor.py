"""The predictive distribution across programs and microarchitectures
(§3.3.2) and its deployment interface (§3.4).

Training memorises one IID distribution g(y|X) per training pair together
with the pair's feature vector x = (c, d).  Prediction for an unseen pair
forms q(y|x*) as the softmax-weighted convex combination of the K = 7
nearest training distributions (eq. 6, β = 1, Euclidean distance over
z-normalised features) and returns its mode (eq. 1).

Leave-one-out evaluation excludes every training pair sharing the test
pair's program *or* machine at query time (§5.1.1), so the model never
consults data from the program or microarchitecture it is predicting for.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.core.distribution import IIDDistribution
from repro.core.features import FeatureNormaliser, feature_mask, feature_vector
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters

#: The paper's hyper-parameters (§3.3.2): K = 7 neighbours, β = 1, and the
#: top-5 % definition of "good" settings (footnote 1).
DEFAULT_K = 7
DEFAULT_BETA = 1.0
DEFAULT_QUANTILE = 0.05


@dataclass
class _TrainingPair:
    program: str
    machine: MicroArch
    features: np.ndarray  # normalised, masked
    distribution: IIDDistribution


class OptimisationPredictor:
    """The portable optimising compiler's model (Figure 2's centre box)."""

    def __init__(
        self,
        space: FlagSpace = DEFAULT_SPACE,
        k: int = DEFAULT_K,
        beta: float = DEFAULT_BETA,
        quantile: float = DEFAULT_QUANTILE,
        extended: bool = False,
        feature_mode: str = "both",
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        self.space = space
        self.k = k
        self.beta = beta
        self.quantile = quantile
        self.extended = extended
        self.feature_mode = feature_mode
        self._pairs: list[_TrainingPair] = []
        self._normaliser: FeatureNormaliser | None = None
        self._mask: np.ndarray | None = None

    # -------------------------------------------------------------- training
    def fit(self, training: TrainingSet) -> "OptimisationPredictor":
        """Fit per-pair distributions and memorise features (§3.3)."""
        self.extended = training.extended
        if self.feature_mode == "with_code":
            if training.code_features is None:
                raise ValueError(
                    "feature_mode='with_code' needs training code features"
                )
            base = feature_mask("both", self.extended)
            self._mask = np.concatenate(
                [base, np.ones(training.code_features.shape[1], dtype=bool)]
            )
        else:
            self._mask = feature_mask(self.feature_mode, self.extended)

        raw_features = []
        for p, _ in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                counters = PerfCounters(*training.counters[p, m, :])
                vector = feature_vector(counters, machine, self.extended)
                if self.feature_mode == "with_code":
                    vector = np.concatenate(
                        [vector, training.code_features[p, :]]
                    )
                raw_features.append(vector)
        matrix = np.array(raw_features)
        self._normaliser = FeatureNormaliser.fit(matrix)
        normalised = self._normaliser.transform(matrix)

        self._pairs = []
        row = 0
        for p, name in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                distribution = training.pair_distribution(p, m, self.quantile)
                self._pairs.append(
                    _TrainingPair(
                        program=name,
                        machine=machine,
                        features=normalised[row][self._mask],
                        distribution=distribution,
                    )
                )
                row += 1
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._pairs)

    # ----------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """A JSON-serialisable snapshot of the fitted model.

        Floats survive a JSON round trip exactly (Python serialises the
        shortest repr that reparses to the same value), so a model restored
        by :meth:`from_state` reproduces predictions bit-for-bit.
        """
        if not self.is_fitted:
            raise RuntimeError("cannot snapshot an unfitted predictor")
        return {
            "params": {
                "k": self.k,
                "beta": self.beta,
                "quantile": self.quantile,
                "extended": self.extended,
                "feature_mode": self.feature_mode,
            },
            "space_names": list(self.space.names),
            "mask": [bool(flag) for flag in self._mask],
            "normaliser": {
                "mean": self._normaliser.mean.tolist(),
                "std": self._normaliser.std.tolist(),
            },
            "pairs": [
                {
                    "program": pair.program,
                    "machine": dataclasses.asdict(pair.machine),
                    "features": pair.features.tolist(),
                    "theta": [probs.tolist() for probs in pair.distribution.theta],
                }
                for pair in self._pairs
            ],
        }

    @staticmethod
    def from_state(
        state: dict, space: FlagSpace = DEFAULT_SPACE
    ) -> "OptimisationPredictor":
        """Rebuild a fitted predictor from :meth:`get_state` output."""
        if list(state["space_names"]) != list(space.names):
            raise ValueError(
                "saved model's flag space does not match this build"
            )
        params = state["params"]
        predictor = OptimisationPredictor(
            space=space,
            k=int(params["k"]),
            beta=float(params["beta"]),
            quantile=float(params["quantile"]),
            extended=bool(params["extended"]),
            feature_mode=str(params["feature_mode"]),
        )
        predictor._mask = np.array(state["mask"], dtype=bool)
        predictor._normaliser = FeatureNormaliser(
            mean=np.array(state["normaliser"]["mean"], dtype=float),
            std=np.array(state["normaliser"]["std"], dtype=float),
        )
        predictor._pairs = [
            _TrainingPair(
                program=entry["program"],
                machine=MicroArch(**entry["machine"]),
                features=np.array(entry["features"], dtype=float),
                distribution=IIDDistribution(
                    space=space,
                    theta=[
                        np.array(probs, dtype=float) for probs in entry["theta"]
                    ],
                ),
            )
            for entry in state["pairs"]
        ]
        return predictor

    def _query_vector(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        code_features,
    ) -> np.ndarray:
        vector = feature_vector(counters, machine, self.extended)
        if self.feature_mode == "with_code":
            if code_features is None:
                raise ValueError(
                    "feature_mode='with_code' needs the test program's code "
                    "features (from its -O3 binary)"
                )
            vector = np.concatenate([vector, np.asarray(code_features, float)])
        return self._normaliser.transform_one(vector)[self._mask]

    def _candidates(
        self,
        exclude_program: str | None,
        exclude_machine: MicroArch | None,
    ) -> list[_TrainingPair]:
        """Every training row a prediction may consult, exclusions applied.

        The single gate between the memorised training rows and any
        prediction — :meth:`predict_distribution` and :meth:`neighbours`
        both select through it, so instrumenting (or auditing) this
        method observes *all* training data the model can possibly
        touch.  The leave-one-out leakage guard relies on that.
        """
        return [
            pair
            for pair in self._pairs
            if (exclude_program is None or pair.program != exclude_program)
            and (exclude_machine is None or pair.machine != exclude_machine)
        ]

    # ------------------------------------------------------------ prediction
    def predict_distribution(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> IIDDistribution:
        """q(y|x*): the weighted mixture of the K nearest pairs (eq. 6)."""
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        query = self._query_vector(counters, machine, code_features)

        candidates = self._candidates(exclude_program, exclude_machine)
        if not candidates:
            raise RuntimeError("no training pairs left after exclusions")

        distances = np.array(
            [float(np.linalg.norm(pair.features - query)) for pair in candidates]
        )
        order = np.argsort(distances, kind="stable")[: self.k]
        nearest = [candidates[int(index)] for index in order]
        nearest_distances = distances[order]

        # eq. 6: w_k = exp(-β d_k) / Σ exp(-β d_j), computed stably.
        logits = -self.beta * (nearest_distances - nearest_distances.min())
        weights = np.exp(logits)
        weights /= weights.sum()

        return IIDDistribution.mix(
            [pair.distribution for pair in nearest], list(weights)
        )

    def predict(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> FlagSetting:
        """y* = argmax_y q(y|x*) (eq. 1)."""
        distribution = self.predict_distribution(
            counters, machine, exclude_program, exclude_machine, code_features
        )
        return distribution.mode()

    def neighbours(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> list[tuple[str, MicroArch, float]]:
        """The K nearest training pairs and distances (for analysis)."""
        query = self._query_vector(counters, machine, code_features)
        candidates = self._candidates(exclude_program, exclude_machine)
        distances = np.array(
            [float(np.linalg.norm(pair.features - query)) for pair in candidates]
        )
        order = np.argsort(distances, kind="stable")[: self.k]
        return [
            (candidates[int(i)].program, candidates[int(i)].machine, float(distances[int(i)]))
            for i in order
        ]
