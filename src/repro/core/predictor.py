"""The predictive distribution across programs and microarchitectures
(§3.3.2) and its deployment interface (§3.4).

Training memorises one IID distribution g(y|X) per training pair together
with the pair's feature vector x = (c, d).  Prediction for an unseen pair
forms q(y|x*) as the softmax-weighted convex combination of the K = 7
nearest training distributions (eq. 6, β = 1, Euclidean distance over
z-normalised features) and returns its mode (eq. 1).

Leave-one-out evaluation excludes every training pair sharing the test
pair's program *or* machine at query time (§5.1.1), so the model never
consults data from the program or microarchitecture it is predicting for.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.core import vector as model_vector
from repro.core.distribution import IIDDistribution
from repro.core.features import FeatureNormaliser, feature_mask, feature_vector
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters

#: The paper's hyper-parameters (§3.3.2): K = 7 neighbours, β = 1, and the
#: top-5 % definition of "good" settings (footnote 1).
DEFAULT_K = 7
DEFAULT_BETA = 1.0
DEFAULT_QUANTILE = 0.05


@dataclass
class _TrainingPair:
    program: str
    machine: MicroArch
    features: np.ndarray  # normalised, masked
    distribution: IIDDistribution


class OptimisationPredictor:
    """The portable optimising compiler's model (Figure 2's centre box)."""

    def __init__(
        self,
        space: FlagSpace = DEFAULT_SPACE,
        k: int = DEFAULT_K,
        beta: float = DEFAULT_BETA,
        quantile: float = DEFAULT_QUANTILE,
        extended: bool = False,
        feature_mode: str = "both",
        vectorize: bool = True,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        self.space = space
        self.k = k
        self.beta = beta
        self.quantile = quantile
        self.extended = extended
        self.feature_mode = feature_mode
        self.vectorize = vectorize
        self._pairs: list[_TrainingPair] = []
        self._normaliser: FeatureNormaliser | None = None
        self._mask: np.ndarray | None = None
        self._tensors: model_vector.PredictorTensors | None = None

    # -------------------------------------------------------------- training
    def fit(self, training: TrainingSet) -> "OptimisationPredictor":
        """Fit per-pair distributions and memorise features (§3.3)."""
        self.extended = training.extended
        if self.feature_mode == "with_code":
            if training.code_features is None:
                raise ValueError(
                    "feature_mode='with_code' needs training code features"
                )
            base = feature_mask("both", self.extended)
            self._mask = np.concatenate(
                [base, np.ones(training.code_features.shape[1], dtype=bool)]
            )
        else:
            self._mask = feature_mask(self.feature_mode, self.extended)

        raw_features = []
        for p, _ in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                counters = PerfCounters(*training.counters[p, m, :])
                vector = feature_vector(counters, machine, self.extended)
                if self.feature_mode == "with_code":
                    vector = np.concatenate(
                        [vector, training.code_features[p, :]]
                    )
                raw_features.append(vector)
        matrix = np.array(raw_features)
        self._normaliser = FeatureNormaliser.fit(matrix)
        normalised = self._normaliser.transform(matrix)

        self._pairs = []
        row = 0
        for p, name in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                distribution = training.pair_distribution(p, m, self.quantile)
                self._pairs.append(
                    _TrainingPair(
                        program=name,
                        machine=machine,
                        features=normalised[row][self._mask],
                        distribution=distribution,
                    )
                )
                row += 1
        self._refresh_tensors()
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._pairs)

    def _refresh_tensors(self) -> None:
        if self.vectorize and self._pairs:
            self._tensors = model_vector.PredictorTensors.from_pairs(
                self._pairs, self.space
            )
        else:
            self._tensors = None

    def ensure_tensors(
        self,
        features: np.ndarray | None = None,
        theta: np.ndarray | None = None,
    ) -> None:
        """Attach (or rebuild) the batch-kernel tensors.

        The registry calls this with its precomputed promote-time sidecar
        arrays so a loaded model is ranking-ready without re-stacking.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        self.vectorize = True
        self._tensors = model_vector.PredictorTensors.from_pairs(
            self._pairs, self.space, features=features, theta=theta
        )

    # ----------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """A JSON-serialisable snapshot of the fitted model.

        Floats survive a JSON round trip exactly (Python serialises the
        shortest repr that reparses to the same value), so a model restored
        by :meth:`from_state` reproduces predictions bit-for-bit.
        """
        if not self.is_fitted:
            raise RuntimeError("cannot snapshot an unfitted predictor")
        return {
            "params": {
                "k": self.k,
                "beta": self.beta,
                "quantile": self.quantile,
                "extended": self.extended,
                "feature_mode": self.feature_mode,
            },
            "space_names": list(self.space.names),
            "mask": [bool(flag) for flag in self._mask],
            "normaliser": {
                "mean": self._normaliser.mean.tolist(),
                "std": self._normaliser.std.tolist(),
            },
            "pairs": [
                {
                    "program": pair.program,
                    "machine": dataclasses.asdict(pair.machine),
                    "features": pair.features.tolist(),
                    "theta": [probs.tolist() for probs in pair.distribution.theta],
                }
                for pair in self._pairs
            ],
        }

    @staticmethod
    def from_state(
        state: dict, space: FlagSpace = DEFAULT_SPACE, vectorize: bool = True
    ) -> "OptimisationPredictor":
        """Rebuild a fitted predictor from :meth:`get_state` output."""
        if list(state["space_names"]) != list(space.names):
            raise ValueError(
                "saved model's flag space does not match this build"
            )
        params = state["params"]
        predictor = OptimisationPredictor(
            space=space,
            k=int(params["k"]),
            beta=float(params["beta"]),
            quantile=float(params["quantile"]),
            extended=bool(params["extended"]),
            feature_mode=str(params["feature_mode"]),
            vectorize=vectorize,
        )
        predictor._mask = np.array(state["mask"], dtype=bool)
        predictor._normaliser = FeatureNormaliser(
            mean=np.array(state["normaliser"]["mean"], dtype=float),
            std=np.array(state["normaliser"]["std"], dtype=float),
        )
        predictor._pairs = [
            _TrainingPair(
                program=entry["program"],
                machine=MicroArch(**entry["machine"]),
                features=np.array(entry["features"], dtype=float),
                distribution=IIDDistribution(
                    space=space,
                    theta=[
                        np.array(probs, dtype=float) for probs in entry["theta"]
                    ],
                ),
            )
            for entry in state["pairs"]
        ]
        predictor._refresh_tensors()
        return predictor

    def _query_vector(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        code_features,
    ) -> np.ndarray:
        vector = feature_vector(counters, machine, self.extended)
        if self.feature_mode == "with_code":
            if code_features is None:
                raise ValueError(
                    "feature_mode='with_code' needs the test program's code "
                    "features (from its -O3 binary)"
                )
            vector = np.concatenate([vector, np.asarray(code_features, float)])
        return self._normaliser.transform_one(vector)[self._mask]

    def _candidate_indices(
        self,
        exclude_program: str | None,
        exclude_machine: MicroArch | None,
    ) -> np.ndarray:
        """Indices of every training row a prediction may consult.

        The single gate between the memorised training rows and any
        prediction — the scalar *and* vectorised paths of
        :meth:`predict_distribution` and :meth:`neighbours` all select
        through it, exactly once per query, so instrumenting (or
        auditing) this method observes *all* training data the model can
        possibly touch.  The leave-one-out leakage guard relies on that.

        Both branches return the same indices in the same (ascending)
        order: the id-mask compares dense program/machine ids, the python
        loop compares the objects themselves.
        """
        if self._tensors is not None:
            mask = self._tensors.candidate_mask(exclude_program, exclude_machine)
            return np.nonzero(mask)[0]
        return np.array(
            [
                index
                for index, pair in enumerate(self._pairs)
                if (exclude_program is None or pair.program != exclude_program)
                and (
                    exclude_machine is None or pair.machine != exclude_machine
                )
            ],
            dtype=np.intp,
        )

    def _candidates(
        self,
        exclude_program: str | None,
        exclude_machine: MicroArch | None,
    ) -> list[_TrainingPair]:
        """The training rows a prediction may consult, exclusions applied
        (selected through the :meth:`_candidate_indices` audit gate)."""
        return [
            self._pairs[int(index)]
            for index in self._candidate_indices(exclude_program, exclude_machine)
        ]

    # ------------------------------------------------------------ prediction
    def predict_distribution(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> IIDDistribution:
        """q(y|x*): the weighted mixture of the K nearest pairs (eq. 6).

        The scalar reference implementation; with ``vectorize=True`` the
        call routes through the batched kernel (a one-row batch), which is
        bit-identical by construction and proven so by
        ``tests/test_model_vector.py``.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        if self._tensors is not None:
            return self._predict_distribution_batch(
                [counters],
                [machine],
                [exclude_program],
                [exclude_machine],
                [code_features],
            )[0]
        query = self._query_vector(counters, machine, code_features)

        candidates = self._candidates(exclude_program, exclude_machine)
        if not candidates:
            raise RuntimeError("no training pairs left after exclusions")

        distances = np.array(
            [float(np.linalg.norm(pair.features - query)) for pair in candidates]
        )
        order = np.argsort(distances, kind="stable")[: self.k]
        nearest = [candidates[int(index)] for index in order]
        nearest_distances = distances[order]

        # eq. 6: w_k = exp(-β d_k) / Σ exp(-β d_j), computed stably.
        logits = -self.beta * (nearest_distances - nearest_distances.min())
        weights = np.exp(logits)
        weights /= weights.sum()

        return IIDDistribution.mix(
            [pair.distribution for pair in nearest], list(weights)
        )

    def predict(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> FlagSetting:
        """y* = argmax_y q(y|x*) (eq. 1)."""
        distribution = self.predict_distribution(
            counters, machine, exclude_program, exclude_machine, code_features
        )
        return distribution.mode()

    # -------------------------------------------------------- batched kernel
    def _query_matrix(self, counters_list, machines, code_features_list):
        rows = []
        for counters, machine, code_features in zip(
            counters_list, machines, code_features_list
        ):
            vector = feature_vector(counters, machine, self.extended)
            if self.feature_mode == "with_code":
                if code_features is None:
                    raise ValueError(
                        "feature_mode='with_code' needs the test program's "
                        "code features (from its -O3 binary)"
                    )
                vector = np.concatenate(
                    [vector, np.asarray(code_features, float)]
                )
            rows.append(vector)
        matrix = np.array(rows)
        return self._normaliser.transform(matrix)[:, self._mask]

    def _predict_distribution_batch(
        self, counters_list, machines, exclude_programs, exclude_machines,
        code_features_list,
    ) -> list[IIDDistribution]:
        queries = self._query_matrix(counters_list, machines, code_features_list)
        indices = [
            self._candidate_indices(exclude_program, exclude_machine)
            for exclude_program, exclude_machine in zip(
                exclude_programs, exclude_machines
            )
        ]
        return model_vector.predict_distributions(
            self._tensors,
            queries,
            indices,
            k=self.k,
            beta=self.beta,
            space=self.space,
        )

    def _normalise_batch_args(self, counters_list, machines, exclude_programs,
                              exclude_machines, code_features_list):
        batch = len(machines)
        if len(counters_list) != batch:
            raise ValueError("counters and machines must have equal length")

        def expand(values, label):
            if values is None:
                return [None] * batch
            values = list(values)
            if len(values) != batch:
                raise ValueError(f"{label} must match the batch length")
            return values

        return (
            list(counters_list),
            list(machines),
            expand(exclude_programs, "exclude_programs"),
            expand(exclude_machines, "exclude_machines"),
            expand(code_features_list, "code_features"),
        )

    def predict_distribution_many(
        self,
        counters_list,
        machines,
        exclude_programs=None,
        exclude_machines=None,
        code_features=None,
    ) -> list[IIDDistribution]:
        """Batched :meth:`predict_distribution` — one kernel pass for the
        whole batch, bit-identical to the scalar loop.

        Exclusion/code-feature lists are per-query and optional (``None``
        broadcasts ``None`` to every query).  Falls back to the scalar
        loop when the model was built with ``vectorize=False``.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        args = self._normalise_batch_args(
            counters_list, machines, exclude_programs, exclude_machines,
            code_features,
        )
        if not args[1]:
            return []
        if self._tensors is None:
            return [
                self.predict_distribution(c, m, ep, em, cf)
                for c, m, ep, em, cf in zip(*args)
            ]
        return self._predict_distribution_batch(*args)

    def predict_many(
        self,
        counters_list,
        machines,
        exclude_programs=None,
        exclude_machines=None,
        code_features=None,
    ) -> list[FlagSetting]:
        """Batched :meth:`predict` (eq. 1 over eq. 6, one kernel pass)."""
        return [
            distribution.mode()
            for distribution in self.predict_distribution_many(
                counters_list, machines, exclude_programs, exclude_machines,
                code_features,
            )
        ]

    def rank_many(
        self,
        counters_list,
        machines,
        top: int,
        exclude_programs=None,
        exclude_machines=None,
        code_features=None,
    ) -> list[list[tuple[FlagSetting, float]]]:
        """Batched top-``top`` rankings: one kernel pass for the mixture
        distributions, then the deterministic best-first enumeration."""
        return [
            distribution.top_settings(top)
            for distribution in self.predict_distribution_many(
                counters_list, machines, exclude_programs, exclude_machines,
                code_features,
            )
        ]

    def neighbours(
        self,
        counters: PerfCounters,
        machine: MicroArch,
        exclude_program: str | None = None,
        exclude_machine: MicroArch | None = None,
        code_features=None,
    ) -> list[tuple[str, MicroArch, float]]:
        """The K nearest training pairs and distances (for analysis).

        Guards match :meth:`predict_distribution`: an unfitted model and
        an exclusion set that empties the candidates both raise.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        query = self._query_vector(counters, machine, code_features)
        if self._tensors is not None:
            indices = self._candidate_indices(exclude_program, exclude_machine)
            if indices.size == 0:
                raise RuntimeError("no training pairs left after exclusions")
            top, top_distances = model_vector.nearest_neighbours(
                self._tensors, query, indices, self.k
            )
            return [
                (
                    self._pairs[int(index)].program,
                    self._pairs[int(index)].machine,
                    float(distance),
                )
                for index, distance in zip(top, top_distances)
            ]
        candidates = self._candidates(exclude_program, exclude_machine)
        if not candidates:
            raise RuntimeError("no training pairs left after exclusions")
        distances = np.array(
            [float(np.linalg.norm(pair.features - query)) for pair in candidates]
        )
        order = np.argsort(distances, kind="stable")[: self.k]
        return [
            (candidates[int(i)].program, candidates[int(i)].machine, float(distances[int(i)]))
            for i in order
        ]
