"""repro — reproduction of "Portable Compiler Optimisation Across Embedded
Programs and Microarchitectures using Machine Learning" (Dubach et al.,
MICRO 2009).

The package is organised around the paper's Figure 2 pipeline:

* :mod:`repro.compiler` — a from-scratch mini optimising compiler standing in
  for gcc 4.2: a typed IR, one genuine transformation pass per optimisation
  flag of the paper's Figure 3, a register allocator with a spill model, and
  a ``CompiledBinary`` artefact consumed by the simulator.
* :mod:`repro.machine` — the Table 2 microarchitecture design space (288,000
  configurations), the XScale reference point, a Cacti-style latency model
  and the uniform sampler used to draw the paper's 200 configurations.
* :mod:`repro.sim` — the Xtrem stand-in: an XScale-style in-order timing
  model with set-associative caches and a BTB, exposed both as a fast
  analytic executor and a trace-driven reference simulator, producing cycle
  counts plus the 11 Table 1 performance counters.
* :mod:`repro.programs` — the MiBench stand-in: a deterministic synthetic
  program generator plus the 35 per-program specs of the paper's Figure 4.
* :mod:`repro.core` — the paper's contribution: per-pair IID multinomial
  distributions over good optimisations (eqs. 2-5), the K-nearest-neighbour
  predictive distribution (eq. 6) and its mode (eq. 1), leave-one-out
  cross-validation, and the mutual-information analyses of Figures 8 and 9.
* :mod:`repro.search` — iterative-compilation baselines: uniform random
  search (which defines the paper's "Best"), hill climbing, a genetic
  algorithm and combined elimination.
* :mod:`repro.experiments` — one reproduction entry point per table and
  figure in the paper's evaluation.
* :mod:`repro.store` — the sharded, resumable experiment store: dataset
  generation checkpointed as append-only fingerprinted shards, built
  through a compile-once/simulate-many hot path, bit-identical however
  (and however often) a run is interrupted.
* :mod:`repro.api` — the unified façade: the faceted :class:`Session`
  (``data``/``models``/``eval``/``protocol``) plus the versioned model
  registry deployments serve from.
* :mod:`repro.service` — the deployable end product: a stdlib-only HTTP
  prediction service (``repro-experiments serve``) answering ranked
  flag-setting queries from the registry's promoted model and streaming
  background protocol-job progress as NDJSON.
"""

from repro.compiler import (
    CompiledBinary,
    Compiler,
    FlagSetting,
    FlagSpace,
    o3_setting,
)
from repro.core import OptimisationPredictor, TrainingSet
from repro.machine import MicroArch, MicroArchSpace, xscale
from repro.programs import build_program, mibench_names, mibench_program
from repro.sim import SimulationResult, simulate

# The unified façade (preferred entry point). The direct imports above are
# kept as thin re-exports so pre-Session code continues to work.
from repro.api import (
    AnalyticBackend,
    EvaluationRequest,
    EvaluationResult,
    PredictionResult,
    SearchOutcome,
    SearchRequest,
    Session,
    SimulatorBackend,
    TraceBackend,
)

__version__ = "1.1.0"

__all__ = [
    "AnalyticBackend",
    "CompiledBinary",
    "Compiler",
    "EvaluationRequest",
    "EvaluationResult",
    "FlagSetting",
    "FlagSpace",
    "MicroArch",
    "MicroArchSpace",
    "OptimisationPredictor",
    "PredictionResult",
    "SearchOutcome",
    "SearchRequest",
    "Session",
    "SimulationResult",
    "SimulatorBackend",
    "TraceBackend",
    "TrainingSet",
    "build_program",
    "mibench_names",
    "mibench_program",
    "o3_setting",
    "simulate",
    "xscale",
]
