"""The worker loop: claim → verify → compute → checkpoint → release.

One :class:`ClusterWorker` is one process's share of a cluster drain.
Its loop re-derives everything from shared state each pass — pending
units from the store manifest, availability from the lease table — so
workers need no knowledge of each other and can join or die at any
point:

1. scan the store's pending units;
2. claim the first unleased one (``O_EXCL``; stale leases reclaimed);
3. *re-check the store after claiming* — a reclaimed unit whose first
   owner finished before dying, or one a racing peer just completed, is
   released untouched, which is what makes reclaim cost zero
   re-simulation;
4. compute the unit while a daemon thread heartbeats the lease;
5. checkpoint through the store's atomic append-only write, release,
   and update this worker's progress file.

When every pending unit is leased by peers the worker naps briefly and
rescans: either a peer finishes (the unit leaves pending) or dies (the
lease goes stale and is reclaimed).  The loop ends when the store has no
pending units — workers drain the queue, they do not wait for each
other.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.cluster.lease import DEFAULT_LEASE_TTL, LeaseTable
from repro.cluster.queue import WorkQueue
from repro.cluster.status import ClusterProgress, ClusterStatus


@dataclass
class WorkerReport:
    """What one :meth:`ClusterWorker.run` call actually did."""

    worker_id: str
    units_completed: int = 0
    #: Units claimed but found already checkpointed — a reclaim of a
    #: finished unit, or a peer completing it between scan and claim.
    #: Skips cost a sidecar read, never a simulation.
    units_skipped: int = 0
    simulation_calls: int = 0
    store_hits: int = 0
    wait_seconds: float = 0.0
    wall_seconds: float = 0.0


class ClusterWorker:
    """One process draining one work queue through the shared lease table.

    Args:
        queue: the :class:`~repro.cluster.queue.WorkQueue` to drain.
        worker_id: stable identity for leases and progress (default:
            host + pid + random token, unique per instance).
        lease_ttl: seconds without a heartbeat before this cluster's
            leases count as stale.
        poll_interval: nap length when every pending unit is leased by a
            peer (default: a quarter TTL, capped at one second).
        max_units: stop after computing this many units (budgeted
            drains; skipped units do not count).
        progress: optional free-text progress hook, CLI style.
        on_unit: optional structured hook, fired as ``on_unit(unit,
            stats)`` right after each computed unit's checkpoint lands.
    """

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float | None = None,
        max_units: int | None = None,
        progress: Callable[[str], None] | None = None,
        on_unit: Callable[[str, dict], None] | None = None,
    ):
        self.queue = queue
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{socket.gethostname()}-{os.getpid()}-{os.urandom(2).hex()}"
        )
        self.leases = LeaseTable(
            Path(queue.cluster_root) / LeaseTable.LEASE_SUBDIR,
            queue.fingerprint,
            ttl=lease_ttl,
        )
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else min(1.0, lease_ttl / 4)
        )
        self.max_units = max_units
        self.progress = progress
        self.on_unit = on_unit

    # ------------------------------------------------------------------ run
    def run(self) -> WorkerReport:
        """Drain the queue; return this worker's share of the work."""
        started = time.monotonic()
        report = WorkerReport(worker_id=self.worker_id)
        tracker = ClusterProgress(self.queue.cluster_root, self.worker_id)
        total = self.queue.total_units()
        while True:
            if (
                self.max_units is not None
                and report.units_completed >= self.max_units
            ):
                break
            pending = self.queue.pending_units()
            if not pending:
                break
            claimed_any = False
            for unit in pending:
                if (
                    self.max_units is not None
                    and report.units_completed >= self.max_units
                ):
                    break
                if not self.leases.try_claim(unit, self.worker_id):
                    continue
                claimed_any = True
                try:
                    if self.queue.is_done(unit):
                        report.units_skipped += 1
                        continue
                    stats = self._execute_leased(unit)
                finally:
                    self.leases.release(unit, self.worker_id)
                report.units_completed += 1
                report.simulation_calls += int(
                    stats.get("simulation_calls", 0)
                )
                report.store_hits += int(stats.get("store_hits", 0))
                tracker.write(
                    report.units_completed,
                    report.units_skipped,
                    report.simulation_calls,
                    report.store_hits,
                )
                if self.on_unit is not None:
                    self.on_unit(unit, stats)
                if self.progress is not None:
                    done = total - len(self.queue.pending_units())
                    self.progress(
                        f"{self.queue.kind} {unit} done by "
                        f"{self.worker_id} ({done}/{total})"
                    )
            if not claimed_any:
                # Everything pending is leased by live peers: wait for
                # them to finish (unit leaves pending) or die (lease
                # goes stale, next scan reclaims it).
                report.wait_seconds += self.poll_interval
                time.sleep(self.poll_interval)
        report.wall_seconds = time.monotonic() - started
        tracker.write(
            report.units_completed,
            report.units_skipped,
            report.simulation_calls,
            report.store_hits,
            done=True,
        )
        # Leave a fresh aggregate snapshot for observers; last writer
        # wins with near-identical content.
        ClusterStatus.collect(self.queue, self.leases.ttl).write_artifact(
            self.queue.cluster_root
        )
        return report

    # ------------------------------------------------------------ internals
    def _execute_leased(self, unit: str) -> dict:
        """Compute one claimed unit under a heartbeat thread.

        The heartbeat keeps the lease fresh at a quarter TTL while the
        unit computes; losing the lease mid-compute (a peer reclaimed
        after a stall) is deliberately not fatal — the computation
        finishes and its atomic write is either first or identical.
        """
        stop = threading.Event()

        def pump() -> None:
            while not stop.wait(self.leases.ttl / 4):
                self.leases.heartbeat(unit, self.worker_id)

        beat = threading.Thread(target=pump, daemon=True)
        beat.start()
        try:
            return self.queue.execute(unit)
        finally:
            stop.set()
            beat.join()


def run_local_workers(
    cli_args: Sequence[str],
    workers: int,
    python: str | None = None,
    env: dict | None = None,
) -> list[int]:
    """Spawn a local fleet of ``repro-experiments worker`` processes.

    Each subprocess is one independent single-worker CLI invocation —
    real process isolation, the same code path a multi-host deployment
    runs — and this call blocks until all of them drain the queue.
    Returns their exit codes in spawn order.  ``cli_args`` is everything
    after ``worker`` (scale, cache dir, lease knobs).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    command = [
        python if python is not None else sys.executable,
        "-m",
        "repro.cli",
        "worker",
        *cli_args,
    ]
    procs = [subprocess.Popen(command, env=env) for _ in range(workers)]
    return [proc.wait() for proc in procs]
