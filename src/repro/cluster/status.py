"""Cluster observability: per-worker progress files and the status view.

Each worker keeps one small JSON file of cumulative counters under
``<cluster root>/progress/``, rewritten atomically after every unit, so
observers never see torn state and a dead worker's last numbers survive
it.  :meth:`ClusterStatus.collect` joins three sources — the store
manifest (total/completed units), the lease table (in-flight and
orphaned claims), and the progress files (per-worker throughput) — into
one snapshot, rendered by ``repro-experiments status`` and written as
the ``progress.json`` artifact.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.lease import LEASE_FORMAT, LeaseInfo, LeaseTable, scan_leases
from repro.ioutil import atomic_write_text

PROGRESS_DIR = "progress"
PROGRESS_ARTIFACT = "progress.json"

#: A worker whose progress file is older than this many lease TTLs is
#: shown as gone rather than live.
LIVE_WITHIN_TTLS = 2.0


def _safe_name(worker_id: str) -> str:
    return re.sub(r"[^\w.-]", "_", worker_id)


class ClusterProgress:
    """One worker's cumulative counters, crash-safe on disk."""

    def __init__(self, cluster_root: Path, worker_id: str):
        self.worker_id = worker_id
        self.path = (
            Path(cluster_root) / PROGRESS_DIR / f"{_safe_name(worker_id)}.json"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.started = time.time()

    def write(
        self,
        units: int,
        skipped: int,
        simulation_calls: int,
        store_hits: int,
        done: bool = False,
    ) -> None:
        atomic_write_text(
            self.path,
            json.dumps(
                {
                    "worker": self.worker_id,
                    "units": units,
                    "skipped": skipped,
                    "simulation_calls": simulation_calls,
                    "store_hits": store_hits,
                    "started": self.started,
                    "updated": time.time(),
                    "done": done,
                }
            ),
            site="progress.write",
        )


@dataclass(frozen=True)
class WorkerStats:
    """One worker's progress-file counters, as seen by a status scan."""

    worker_id: str
    units: int
    skipped: int
    simulation_calls: int
    store_hits: int
    elapsed: float  # seconds from its first unit to its last update
    idle: float  # seconds since its last update
    done: bool  # the worker exited cleanly (drained or hit its cap)

    @property
    def units_per_sec(self) -> float:
        return self.units / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class ClusterStatus:
    """A joined snapshot of one cluster: store × leases × workers."""

    kind: str  # "shard" or "fold"
    fingerprint: str
    total_units: int
    completed_units: int
    leases: list[LeaseInfo]
    workers: list[WorkerStats]
    lease_ttl: float
    #: Unreadable cluster files (zero-byte lease payloads, torn progress
    #: files, a corrupt table.json) — reported, never a traceback.
    corrupt_files: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.corrupt_files is None:
            self.corrupt_files = []

    @property
    def live_leases(self) -> list[LeaseInfo]:
        return [lease for lease in self.leases if not lease.stale]

    @property
    def orphaned_leases(self) -> list[LeaseInfo]:
        """Stale claims: their owner stopped heartbeating mid-unit."""
        return [lease for lease in self.leases if lease.stale]

    @property
    def live_workers(self) -> list[WorkerStats]:
        horizon = LIVE_WITHIN_TTLS * self.lease_ttl
        return [
            worker
            for worker in self.workers
            if not worker.done and worker.idle <= horizon
        ]

    @classmethod
    def collect(cls, queue, ttl: float) -> "ClusterStatus":
        """Snapshot a queue's cluster state; never creates directories.

        Safe to call on a store no worker has ever touched — the lease
        and progress scans simply come back empty.
        """
        cluster_root = Path(queue.cluster_root)
        corrupt_files: list[str] = []
        leases: list[LeaseInfo] = []
        lease_root = cluster_root / LeaseTable.LEASE_SUBDIR
        if lease_root.is_dir():
            # Read-only: never construct a LeaseTable here — that would
            # create directories, rewrite metadata, and raise on a
            # corrupt or foreign table, none of which a status view may
            # do.  Damage is reported instead.
            table_path = lease_root / LeaseTable.META_NAME
            if table_path.exists():
                try:
                    meta = json.loads(table_path.read_text())
                    if not isinstance(meta, dict):
                        raise ValueError("not an object")
                except (OSError, json.JSONDecodeError, ValueError):
                    corrupt_files.append(f"{LeaseTable.LEASE_SUBDIR}/{LeaseTable.META_NAME}")
                else:
                    if (
                        meta.get("format") != LEASE_FORMAT
                        or meta.get("fingerprint") != queue.fingerprint
                    ):
                        corrupt_files.append(f"{LeaseTable.LEASE_SUBDIR}/{LeaseTable.META_NAME}")
            leases = scan_leases(lease_root, ttl)
            corrupt_files.extend(
                f"{LeaseTable.LEASE_SUBDIR}/{lease.unit}{LeaseTable.SUFFIX}"
                for lease in leases
                if lease.corrupt
            )
        workers: list[WorkerStats] = []
        progress_root = cluster_root / PROGRESS_DIR
        if progress_root.is_dir():
            now = time.time()
            for path in sorted(progress_root.glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                    workers.append(
                        WorkerStats(
                            worker_id=str(payload["worker"]),
                            units=int(payload["units"]),
                            skipped=int(payload["skipped"]),
                            simulation_calls=int(payload["simulation_calls"]),
                            store_hits=int(payload["store_hits"]),
                            elapsed=max(
                                0.0,
                                float(payload["updated"])
                                - float(payload["started"]),
                            ),
                            idle=max(0.0, now - float(payload["updated"])),
                            done=bool(payload.get("done")),
                        )
                    )
                except OSError:
                    continue  # deleted between glob and read
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # Zero-byte or torn progress file: report it, never
                    # a traceback.  (Progress rewrites are atomic, so
                    # this is damage, not a concurrent writer.)
                    corrupt_files.append(f"{PROGRESS_DIR}/{path.name}")
        total = queue.total_units()
        return cls(
            kind=queue.kind,
            fingerprint=queue.fingerprint,
            total_units=total,
            completed_units=total - len(queue.pending_units()),
            leases=leases,
            workers=workers,
            lease_ttl=ttl,
            corrupt_files=corrupt_files,
        )

    # -------------------------------------------------------------- artifact
    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "total_units": self.total_units,
            "completed_units": self.completed_units,
            "leased_units": [lease.unit for lease in self.live_leases],
            "orphaned_units": [lease.unit for lease in self.orphaned_leases],
            "lease_ttl": self.lease_ttl,
            "corrupt_files": list(self.corrupt_files),
            "workers": [
                {
                    "worker": worker.worker_id,
                    "units": worker.units,
                    "skipped": worker.skipped,
                    "simulation_calls": worker.simulation_calls,
                    "store_hits": worker.store_hits,
                    "units_per_sec": worker.units_per_sec,
                    "idle_seconds": worker.idle,
                    "done": worker.done,
                }
                for worker in self.workers
            ],
        }

    def write_artifact(self, cluster_root: str | Path) -> Path:
        """Write the ``progress.json`` artifact next to the lease table."""
        path = Path(cluster_root) / PROGRESS_ARTIFACT
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(self.payload(), indent=1, sort_keys=True) + "\n"
        )
        return path

    def render(self) -> str:
        lines = [
            f"cluster [{self.kind} units, fingerprint {self.fingerprint}]:",
            f"  units: {self.completed_units}/{self.total_units} complete, "
            f"{len(self.live_leases)} leased, "
            f"{len(self.orphaned_leases)} orphaned (ttl {self.lease_ttl:.0f}s)",
        ]
        live = self.live_workers
        lines.append(
            f"  workers: {len(live)} live of {len(self.workers)} seen"
        )
        for worker in self.workers:
            state = (
                "done"
                if worker.done
                else ("live" if worker in live else "gone")
            )
            lines.append(
                f"    {worker.worker_id}: {worker.units} units "
                f"(+{worker.skipped} skipped), "
                f"{worker.simulation_calls} sims, "
                f"{worker.units_per_sec:.2f} units/s [{state}]"
            )
        for lease in self.orphaned_leases:
            lines.append(
                f"    orphaned: {lease.unit} (owner {lease.owner}, "
                f"idle {lease.age:.0f}s) — reclaimable"
            )
        for name in self.corrupt_files:
            lines.append(f"    corrupt: {name} (quarantine with fsck)")
        return "\n".join(lines)


@dataclass
class _StoreView:
    """Just enough of the queue protocol for a read-only status scan."""

    kind: str
    fingerprint: str
    cluster_root: Path
    total: int
    pending: list[str]

    def total_units(self) -> int:
        return self.total

    def pending_units(self) -> list[str]:
        return self.pending


def store_cluster_status(store, ttl: float) -> "ClusterStatus | None":
    """Cluster snapshot of an experiment store, ``None`` if never clustered.

    A read-only sibling of :meth:`ClusterStatus.collect` that needs only
    the store (no runner, no programs) — what the CLI ``status`` command
    calls.  Returns ``None`` when no worker has ever touched the store.
    """
    from repro.cluster.queue import CLUSTER_DIR

    if store.root is None:
        return None
    cluster_root = Path(store.root) / CLUSTER_DIR
    if not cluster_root.is_dir():
        return None
    view = _StoreView(
        kind="shard",
        fingerprint=store.grid.fingerprint(),
        cluster_root=cluster_root,
        total=store.grid.n_shards,
        pending=[key.stem() for key in store.pending_keys()],
    )
    return ClusterStatus.collect(view, ttl)
