"""Work queues: the shard and fold grids viewed as claimable units.

A :class:`WorkQueue` adapts one resumable store to the worker loop's
tiny contract — enumerate pending unit ids, check whether one is done,
execute one — with the store's own manifest as the only source of truth.
Unit ids are the stores' existing shard stems (``p0000-c0000`` for
dataset shards, ``variant--program`` for protocol folds), so lease
files, progress records, and store files all speak the same names.

Queues never talk to the lease table; the worker composes the two.  Both
queues require an on-disk store (``root`` set) — the shared directory is
what multiple processes coordinate through.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, Sequence

from repro.cluster.lease import ClusterError

#: Subdirectory of a store root holding all cluster state (leases,
#: per-worker progress, the aggregated progress.json artifact).
CLUSTER_DIR = "cluster"


class WorkQueue(Protocol):
    """What the worker loop needs from a unit source."""

    #: Manifest fingerprint every worker of one cluster must share.
    fingerprint: str
    #: Shared directory for leases and progress, under the store root.
    cluster_root: Path
    #: Human label for progress lines ("shard" / "fold").
    kind: str

    def total_units(self) -> int: ...

    def pending_units(self) -> list[str]: ...

    def is_done(self, unit: str) -> bool: ...

    def execute(self, unit: str) -> dict: ...


def _require_root(store, what: str) -> Path:
    if store.root is None:
        raise ClusterError(
            f"cluster execution needs an on-disk {what} (root=None is "
            f"memory-only; workers coordinate through the store directory)"
        )
    return Path(store.root)


class ShardQueue:
    """Dataset-build units: one store shard per unit.

    Wraps an :class:`~repro.store.runner.ExperimentRunner` — the queue
    computes each claimed shard through the runner's serial path (the
    memoising compiler still amortises compilation across one worker's
    consecutive same-program shards) and checkpoints it via the store's
    ordinary atomic, append-only write.
    """

    kind = "shard"

    def __init__(self, runner):
        self.runner = runner
        self.store = runner.store
        root = _require_root(self.store, "experiment store")
        self.fingerprint = self.store.grid.fingerprint()
        self.cluster_root = root / CLUSTER_DIR
        self._keys = {key.stem(): key for key in self.store.grid.shard_keys()}
        self._settings = list(self.store.grid.settings)
        self._work = runner._shard_function("serial")

    def total_units(self) -> int:
        return self.store.grid.n_shards

    def pending_units(self) -> list[str]:
        return [key.stem() for key in self.store.pending_keys()]

    def is_done(self, unit: str) -> bool:
        return self.store.has_shard(self._keys[unit])

    def execute(self, unit: str) -> dict:
        key = self._keys[unit]
        arrays = self._work(
            self.runner._work_item(key, self._settings, "serial")
        )
        self.store.write_shard(key, arrays)
        return {"simulation_calls": arrays[0].size}


class FoldQueue:
    """Protocol-run units: one leave-one-out fold per unit.

    Wraps an :class:`~repro.evalrun.pipeline.EvaluationPipeline`; each
    claimed fold runs through the pipeline's serial fold path (shared
    oracle, predictors fitted once per variant per worker) and lands via
    the fold store's atomic write.  ``variants`` restricts the queue to a
    subset of variant keys, mirroring the pipeline's ``--only`` path.
    """

    kind = "fold"

    def __init__(self, pipeline, variants: Sequence[str] | None = None):
        self.pipeline = pipeline
        self.store = pipeline.store
        root = _require_root(self.store, "fold store")
        self.fingerprint = self.store.protocol_fingerprint
        self.cluster_root = root / CLUSTER_DIR
        self.variants = list(variants) if variants is not None else None
        self._keys = {
            key.stem(): key for key in self.store.fold_keys(self.variants)
        }

    def total_units(self) -> int:
        return len(self._keys)

    def pending_units(self) -> list[str]:
        return [key.stem() for key in self.store.pending_keys(self.variants)]

    def is_done(self, unit: str) -> bool:
        return self.store.has_fold(self._keys[unit])

    def execute(self, unit: str) -> dict:
        record, sims, hits = self.pipeline._compute_fold_local(
            self._keys[unit]
        )
        self.store.write_fold(record)
        return {"simulation_calls": sims, "store_hits": hits}
