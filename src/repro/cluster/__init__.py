"""Coordinator-free distributed workers over the shard and fold stores.

The experiment store (:mod:`repro.store`) and the fold store
(:mod:`repro.evalrun.foldstore`) are append-only, digest-verified, and
idempotent to re-execute — exactly the shape of a multi-node work queue.
This package adds the missing piece: a **lease table** of atomic claim
files under the shared store directory, so N worker processes — on one
host or many over a shared filesystem — drain one dataset build or one
protocol run concurrently with byte-identical output to a serial run.

There is no coordinator.  Each worker enumerates pending units straight
from the store manifest, claims one with an ``O_EXCL`` claim file,
heartbeats it while computing, checkpoints the result through the
store's ordinary atomic write, and releases the claim.  A worker that
dies mid-unit simply stops heartbeating; once its lease goes stale any
peer reclaims the unit and recomputes it — safe by construction, because
completed units are never rewritten and duplicate writers produce
identical bytes.

Entry points: ``repro-experiments worker`` (one process = one worker;
``--workers N`` spawns a local fleet), ``executor="cluster"`` on
:class:`~repro.store.runner.ExperimentRunner` and
:class:`~repro.evalrun.pipeline.EvaluationPipeline`, and
``repro-experiments status`` for the live :class:`ClusterStatus` view.
"""

from repro.cluster.lease import (
    DEFAULT_LEASE_TTL,
    ClusterError,
    LeaseInfo,
    LeaseTable,
)
from repro.cluster.queue import FoldQueue, ShardQueue, WorkQueue
from repro.cluster.status import (
    ClusterStatus,
    WorkerStats,
    store_cluster_status,
)
from repro.cluster.worker import (
    ClusterWorker,
    WorkerReport,
    run_local_workers,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "ClusterError",
    "ClusterStatus",
    "ClusterWorker",
    "FoldQueue",
    "LeaseInfo",
    "LeaseTable",
    "ShardQueue",
    "WorkQueue",
    "WorkerReport",
    "WorkerStats",
    "run_local_workers",
    "store_cluster_status",
]
