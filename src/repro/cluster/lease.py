"""The lease table: atomic claim files under the shared store directory.

One lease file per in-flight work unit, created with ``O_CREAT|O_EXCL``
so exactly one worker wins a claim whatever filesystem the store lives
on (the only primitive required of the shared directory is exclusive
create plus atomic rename — POSIX local disks and NFSv3+ both provide
them).  The file's mtime is the heartbeat: the owner touches it while
computing, and a lease whose mtime is older than the table's TTL is
*stale* — its owner is presumed dead and any peer may reclaim the unit.

Reclaim is a two-step steal: rename the stale lease to a worker-unique
tombstone (exactly one contender wins the rename; losers see
``FileNotFoundError`` and back off), then recreate the claim with
``O_EXCL``.  A heartbeat racing the steal — e.g. an owner that was only
paused, or clock skew across hosts — can leave two workers computing the
same unit; that is explicitly safe, because completed units are
idempotent to re-execute (append-only stores, first complete write wins,
identical bytes).

The table's ``table.json`` records the manifest fingerprint of the work
grid it coordinates.  A worker joining with a different fingerprint —
i.e. pointed at the same shared directory but holding a different grid —
fails fast with both fingerprints rather than quietly interleaving two
experiments' units.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from repro.ioutil import (
    atomic_write_text,
    exclusive_create,
    guarded_os_call,
    with_retries,
)

#: Lease table schema version; bump on incompatible layout changes.
LEASE_FORMAT = 1

#: Seconds without a heartbeat before a lease counts as stale.  Shard
#: and fold units complete in well under a minute at every scale, and
#: the owner heartbeats several times per TTL, so expiry means the
#: worker is genuinely gone — not merely slow.
DEFAULT_LEASE_TTL = 60.0


class ClusterError(RuntimeError):
    """A cluster directory is unusable: wrong manifest, version, or corrupt."""


@dataclass(frozen=True)
class LeaseInfo:
    """One live or stale claim, as seen by a scan."""

    unit: str
    owner: str
    age: float
    stale: bool
    #: The claim file exists but its payload is unreadable (zero-byte or
    #: torn) — the crash-after-create window, or real corruption.
    corrupt: bool = False


class LeaseTable:
    """Atomic, heartbeat-expiring unit claims for one work grid.

    Args:
        root: the lease directory (created if missing), conventionally
            ``<store root>/cluster/leases`` so leases travel with the
            store they coordinate.
        fingerprint: the manifest fingerprint of the work grid; a table
            already on disk for a different fingerprint raises
            :class:`ClusterError` immediately.
        ttl: seconds without a heartbeat before a lease is stale.
    """

    META_NAME = "table.json"
    SUFFIX = ".lease"
    #: Conventional lease directory name under a store's cluster root.
    LEASE_SUBDIR = "leases"

    def __init__(self, root: str | Path, fingerprint: str, ttl: float = DEFAULT_LEASE_TTL):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive: {ttl}")
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.ttl = float(ttl)
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / self.META_NAME
        meta = self._read_meta(meta_path)
        if meta is None:
            if meta_path.exists():
                # A table file that exists but cannot be parsed is
                # damage, not absence: overwriting it would silently
                # discard whatever grid it coordinated.
                raise ClusterError(
                    f"lease table at {meta_path} is corrupt "
                    f"(quarantine with fsck)"
                )
            atomic_write_text(
                meta_path,
                json.dumps(
                    {"format": LEASE_FORMAT, "fingerprint": fingerprint},
                    indent=1,
                ),
                fsync=True,
            )
            # Two same-fingerprint creators race benignly (identical
            # bytes); re-read so a different-fingerprint loser still
            # fails fast instead of trusting its own write.
            meta = self._read_meta(meta_path)
        if meta is None:
            raise ClusterError(f"unreadable lease table at {meta_path}")
        if meta.get("format") != LEASE_FORMAT:
            raise ClusterError(
                f"lease table at {self.root} uses format "
                f"{meta.get('format')!r}, expected {LEASE_FORMAT}"
            )
        if meta.get("fingerprint") != fingerprint:
            raise ClusterError(
                f"lease table at {self.root} coordinates a different "
                f"manifest ({meta.get('fingerprint')} != {fingerprint}); "
                f"every worker of one cluster must hold the same grid"
            )

    @staticmethod
    def _read_meta(path: Path) -> dict | None:
        try:
            meta = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    # --------------------------------------------------------------- claims
    def _path(self, unit: str) -> Path:
        return self.root / f"{unit}{self.SUFFIX}"

    def _age(self, path: Path) -> float | None:
        """Seconds since the lease's last heartbeat, or ``None`` if gone."""
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None

    def try_claim(self, unit: str, owner: str) -> bool:
        """Claim one unit, reclaiming it first if its lease is stale.

        Returns True exactly when this caller now holds the lease.  The
        claim file is created with ``O_EXCL``, so two racing claimants
        cannot both win; a stale lease is stolen through an atomic
        rename that likewise has a single winner.
        """
        path = self._path(unit)

        def claim() -> int:
            # Transient OSErrors retry; FileExistsError (the race answer)
            # propagates immediately to the except arms below.
            return with_retries(
                lambda: exclusive_create(path, site="lease.claim"),
                seed_key=str(path),
            )

        try:
            fd = claim()
        except FileExistsError:
            age = self._age(path)
            if age is None:
                # Released (or stolen) between our open and stat: one
                # retry — if it is contended again, let the peer have it.
                try:
                    fd = claim()
                except FileExistsError:
                    return False
            elif age <= self.ttl:
                return False  # live lease: the owner is still heartbeating
            elif not self._steal(path):
                return False
            else:
                try:
                    fd = claim()
                except FileExistsError:
                    return False  # a third worker landed first; back off
        with os.fdopen(fd, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "owner": owner,
                        "host": socket.gethostname(),
                        "pid": os.getpid(),
                        "claimed_at": time.time(),
                    }
                )
            )
        return True

    def _steal(self, path: Path) -> bool:
        """Remove a stale lease; exactly one contender succeeds."""
        tomb = path.with_name(
            f"{path.name}.{os.getpid()}.{os.urandom(3).hex()}.reclaim"
        )
        try:
            os.rename(path, tomb)
        except OSError:
            return False  # a peer released or stole it first
        try:
            os.unlink(tomb)
        except OSError:
            pass
        return True

    def owner_of(self, unit: str) -> str | None:
        """The recorded owner, or ``None`` when unleased/unreadable."""
        try:
            payload = json.loads(self._path(unit).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        owner = payload.get("owner") if isinstance(payload, dict) else None
        return owner if isinstance(owner, str) else None

    def heartbeat(self, unit: str, owner: str) -> bool:
        """Refresh the lease's mtime; False when the lease was lost.

        A lost heartbeat (lease stolen after an expiry, or released by a
        racing duplicate) is informational, not fatal: the unit is
        idempotent, so the current execution may finish — its write is
        either the first (and wins) or identical to the winner's.
        """
        path = self._path(unit)
        if self.owner_of(unit) != owner:
            return False
        try:
            guarded_os_call(
                lambda: os.utime(path),
                site="lease.heartbeat",
                seed_key=str(path),
            )
        except OSError:
            return False
        return True

    def release(self, unit: str, owner: str) -> bool:
        """Drop a claim this owner holds; False when it was not ours."""
        if self.owner_of(unit) != owner:
            return False
        try:
            guarded_os_call(
                lambda: os.unlink(self._path(unit)),
                site="lease.release",
                seed_key=unit,
            )
        except OSError:
            return False
        return True

    def leases(self) -> list[LeaseInfo]:
        """Every current claim, fresh and stale, sorted by unit."""
        return scan_leases(self.root, self.ttl)


def scan_leases(root: str | Path, ttl: float) -> list[LeaseInfo]:
    """Read-only scan of a lease directory.

    Unlike constructing a :class:`LeaseTable`, this never creates the
    directory, never writes ``table.json``, and never raises on a
    corrupt or foreign table — exactly what a status view needs.
    """
    root = Path(root)
    found = []
    for path in sorted(root.glob(f"*{LeaseTable.SUFFIX}")):
        try:
            age = max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            continue  # released between glob and stat
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = None
        owner = payload.get("owner") if isinstance(payload, dict) else None
        owner = owner if isinstance(owner, str) else None
        unit = path.name[: -len(LeaseTable.SUFFIX)]
        found.append(
            LeaseInfo(
                unit=unit,
                owner=owner or "<unknown>",
                age=age,
                stale=age > ttl,
                corrupt=owner is None,
            )
        )
    return found
