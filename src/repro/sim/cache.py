"""A set-associative, true-LRU cache simulator (the trace-tier reference).

Used by :mod:`repro.sim.trace` to validate the analytic executor's miss-rate
models, and available directly for detailed studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """True-LRU set-associative cache over byte addresses."""

    def __init__(self, size_bytes: int, assoc: int, block_bytes: int):
        if size_bytes % (assoc * block_bytes) != 0:
            raise ValueError(
                f"size {size_bytes} not divisible by assoc*block "
                f"({assoc}*{block_bytes})"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (assoc * block_bytes)
        # Each set is a list of tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit."""
        block = address // self.block_bytes
        index = block % self.num_sets
        tag = block // self.num_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        try:
            position = ways.index(tag)
        except ValueError:
            self.stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        if position != 0:
            ways.pop(position)
            ways.insert(0, tag)
        return True

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.reset_stats()

    def occupancy(self) -> int:
        """Blocks currently resident."""
        return sum(len(ways) for ways in self._sets)
