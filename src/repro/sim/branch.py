"""Branch target buffer and bimodal direction predictor (trace tier).

The XScale couples a BTB with a simple bimodal predictor; a branch whose
target misses in the BTB cannot redirect fetch early even when the
direction guess is right.  The analytic executor models BTB behaviour by
capacity; this module is the reference implementation used to validate it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    lookups: int = 0
    btb_misses: int = 0
    mispredictions: int = 0

    @property
    def btb_miss_rate(self) -> float:
        return self.btb_misses / self.lookups if self.lookups else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries: int, assoc: int):
        if entries % assoc != 0:
            raise ValueError(f"entries {entries} not divisible by assoc {assoc}")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def lookup(self, pc: int) -> bool:
        """Probe and allocate; returns True on hit."""
        index = pc % self.num_sets
        tag = pc // self.num_sets
        ways = self._sets[index]
        try:
            position = ways.index(tag)
        except ValueError:
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        if position != 0:
            ways.pop(position)
            ways.insert(0, tag)
        return True


class BimodalPredictor:
    """Two-bit saturating counters indexed by pc."""

    def __init__(self, entries: int = 512):
        self.entries = entries
        self._counters = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self._counters[pc % self.entries] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc % self.entries
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)


class BranchUnit:
    """BTB + bimodal predictor with combined statistics."""

    def __init__(self, btb_entries: int, btb_assoc: int):
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.predictor = BimodalPredictor()
        self.stats = BranchStats()

    def execute(self, pc: int, taken: bool) -> None:
        self.stats.lookups += 1
        predicted_taken = self.predictor.predict(pc)
        btb_hit = self.btb.lookup(pc)
        if not btb_hit and taken:
            self.stats.btb_misses += 1
        if predicted_taken != taken or (taken and not btb_hit):
            self.stats.mispredictions += 1
        self.predictor.update(pc, taken)
