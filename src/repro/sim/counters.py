"""The 11 performance counters of the paper's Table 1.

Counter naming and ordering follow the paper's Figure 9 x-axis so that
feature matrices line up with the Hinton diagrams:

====================  =======================================================
``ipc``               instructions committed per cycle
``dec_acc_rate``      decoder accesses per cycle (incl. squashed fetches)
``reg_acc_rate``      register-file read accesses per cycle
``bpred_acc_rate``    branch-predictor lookups per cycle
``icache_acc_rate``   instruction-cache accesses per cycle
``icache_miss_rate``  instruction-cache misses per access
``dcache_acc_rate``   data-cache accesses per cycle
``dcache_miss_rate``  data-cache misses per access
``alu_usage``         fraction of instructions using the ALU
``mac_usage``         fraction using the multiply-accumulate unit
``shift_usage``       fraction using the barrel shifter
====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

COUNTER_NAMES: tuple[str, ...] = (
    "ipc",
    "dec_acc_rate",
    "reg_acc_rate",
    "bpred_acc_rate",
    "icache_acc_rate",
    "icache_miss_rate",
    "dcache_acc_rate",
    "dcache_miss_rate",
    "alu_usage",
    "mac_usage",
    "shift_usage",
)


@dataclass(frozen=True)
class PerfCounters:
    """One run's hardware counters (the paper's ``c`` vector)."""

    ipc: float
    dec_acc_rate: float
    reg_acc_rate: float
    bpred_acc_rate: float
    icache_acc_rate: float
    icache_miss_rate: float
    dcache_acc_rate: float
    dcache_miss_rate: float
    alu_usage: float
    mac_usage: float
    shift_usage: float

    def vector(self) -> tuple[float, ...]:
        """The counters in Table 1 / Figure 9 order."""
        return tuple(getattr(self, name) for name in COUNTER_NAMES)

    def __post_init__(self) -> None:
        for name in ("icache_miss_rate", "dcache_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")
        for name in ("alu_usage", "mac_usage", "shift_usage"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")
