"""The vectorised simulate-many kernel: one numpy pass over (S × M).

:func:`simulate_many` computes everything :func:`~repro.sim.analytic.
simulate_analytic` computes — seconds, cycles, the 11 Table 1 counters,
energy, and the full cycle breakdown — for S binaries × M machines in
one broadcast pass instead of S×M scalar calls.  It is the hot tier
under :func:`repro.store.compute.compute_shard`, the evalrun oracle's
out-of-grid fallback, ``session.eval.batch`` and the batched ``/predict``
endpoint.

Bit-compatibility is the contract, not an aspiration: the kernel is
*exactly* equal to the scalar model, float for float, because every
operation is ordered the same way the scalar code orders it:

* all arrays are float64 and every elementwise op (``+ - * /``,
  ``minimum``/``maximum``, comparisons) is the same IEEE-754 double
  operation the scalar expressions perform;
* variable-length structures (stall-profile entries, loops, access
  streams) are padded to the batch maximum and *iterated* — the kernel
  loops over the padded axis accumulating ``[S, M]`` slabs, so per-pair
  accumulation order matches the scalar loops term by term (masked-out
  padding contributes an exact ``+ 0.0``);
* machine-dependent Cacti quantities (hit/miss cycles, read energies,
  effective capacities) are computed per machine by the *scalar* Cacti
  model when a :class:`MachineMatrix` is built, so no transcendental
  function is ever re-evaluated by a (potentially differently-rounded)
  numpy routine.

The scalar model stays as the executable reference; the hypothesis
equivalence suite (``tests/test_sim_vector.py``) asserts pairwise exact
equality over random programs × settings × machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.binary import CompiledBinary
from repro.machine.cacti import dcache_timing, icache_timing, read_energy_nj
from repro.machine.params import MicroArch
from repro.sim.analytic import (
    CALL_OVERHEAD_CYCLES,
    CORE_ENERGY_PER_INSN,
    FIXED_LATENCY,
    MEMORY_ENERGY_PER_MISS,
    MISPREDICT_PENALTY,
    REENTRY_FRACTION,
    SEQUENTIAL_FETCH_OVERLAP,
    STORE_MISS_FACTOR,
    TABLE_LOCALITY,
    THRASH_RAMP,
    CycleBreakdown,
    SimulationResult,
    effective_capacity,
)
from repro.sim.counters import COUNTER_NAMES, PerfCounters

#: Access-kind codes for the padded access arrays (order matches the
#: scalar ``access_dcache_misses`` branch order).
KIND_STACK, KIND_STREAM, KIND_TABLE, KIND_CHASE = 0, 1, 2, 3

_KIND_CODES = {
    "stack": KIND_STACK,
    "stream": KIND_STREAM,
    "table": KIND_TABLE,
    "chase": KIND_CHASE,
}

#: Breakdown component names in :meth:`CycleBreakdown.total` order.
BREAKDOWN_NAMES: tuple[str, ...] = (
    "issue",
    "dependence_stalls",
    "icache_misses",
    "fetch_bubbles",
    "branch_mispredictions",
    "dcache_misses",
    "call_overhead",
)


@dataclass(frozen=True)
class BinarySignature:
    """A :class:`CompiledBinary` flattened to machine-independent arrays.

    Built once per binary (O(loops + accesses)), then reusable across any
    number of machine matrices.  Array layouts:

    * ``stall_*[E]`` — one row per ``stall_profile`` entry, in the dict's
      insertion order (the order the scalar model accumulates in);
    * ``loop_*[L]`` — one row per loop, in ``binary.loops`` order;
    * ``acc_*[A]`` — one row per aggregated access stream: every loop's
      accesses in loop order, then the flat accesses, exactly the order
      the scalar d-cache loop visits them.  ``acc_iterations`` carries
      the owning loop's iteration count (1.0 for flat accesses).
    """

    program_name: str
    # --- whole-binary scalars -------------------------------------------
    dyn_insns: float
    dyn_memory: float
    dyn_branches: float
    dyn_taken: float
    dyn_calls: float
    code_bytes: float
    branch_sites: float
    mean_predictability: float
    aligned_taken_fraction: float
    reg_reads: float
    mix_alu: float
    mix_mac: float
    mix_shift: float
    # --- stall profile ---------------------------------------------------
    stall_is_load: np.ndarray
    stall_fixed_latency: np.ndarray
    stall_distance: np.ndarray
    stall_count: np.ndarray
    # --- loops -----------------------------------------------------------
    loop_span: np.ndarray
    loop_entries: np.ndarray
    loop_iterations: np.ndarray
    loop_has_parent: np.ndarray
    loop_parent_span: np.ndarray
    # --- access streams --------------------------------------------------
    acc_kind: np.ndarray
    acc_region_bytes: np.ndarray
    acc_stride: np.ndarray
    acc_count: np.ndarray
    acc_is_store: np.ndarray
    acc_iterations: np.ndarray

    @classmethod
    def from_binary(cls, binary: CompiledBinary) -> "BinarySignature":
        entries = list(binary.stall_profile.items())
        stall_is_load = np.array(
            [kind == "load" for (kind, _), _ in entries], dtype=bool
        )
        stall_fixed_latency = np.array(
            [FIXED_LATENCY.get(kind, 1.0) for (kind, _), _ in entries], dtype=float
        )
        stall_distance = np.array(
            [distance for (_, distance), _ in entries], dtype=float
        )
        stall_count = np.array([count for _, count in entries], dtype=float)

        span_by_key = {loop.key: loop.code_bytes for loop in binary.loops}
        loops = binary.loops
        loop_span = np.array([float(l.code_bytes) for l in loops], dtype=float)
        loop_entries = np.array([l.entries for l in loops], dtype=float)
        loop_iterations = np.array([l.iterations for l in loops], dtype=float)
        loop_has_parent = np.array(
            [l.parent is not None for l in loops], dtype=bool
        )
        loop_parent_span = np.array(
            [
                float(span_by_key.get(l.parent, 0)) if l.parent is not None else 0.0
                for l in loops
            ],
            dtype=float,
        )

        kinds: list[int] = []
        regions: list[float] = []
        strides: list[float] = []
        counts: list[float] = []
        stores: list[bool] = []
        iters: list[float] = []
        for loop in binary.loops:
            for access in loop.accesses:
                _append_access(
                    access, loop.iterations, kinds, regions, strides, counts,
                    stores, iters,
                )
        for access in binary.flat_accesses:
            _append_access(
                access, 1.0, kinds, regions, strides, counts, stores, iters
            )

        return cls(
            program_name=binary.program_name,
            dyn_insns=float(binary.dyn_insns),
            dyn_memory=float(binary.dyn_memory),
            dyn_branches=float(binary.dyn_branches),
            dyn_taken=float(binary.dyn_taken),
            dyn_calls=float(binary.dyn_calls),
            code_bytes=float(binary.code_bytes),
            branch_sites=float(binary.branch_sites),
            mean_predictability=float(binary.mean_predictability),
            aligned_taken_fraction=float(binary.aligned_taken_fraction),
            reg_reads=float(binary.reg_reads),
            mix_alu=float(binary.mix["alu"]),
            mix_mac=float(binary.mix["mac"]),
            mix_shift=float(binary.mix["shift"]),
            stall_is_load=stall_is_load,
            stall_fixed_latency=stall_fixed_latency,
            stall_distance=stall_distance,
            stall_count=stall_count,
            loop_span=loop_span,
            loop_entries=loop_entries,
            loop_iterations=loop_iterations,
            loop_has_parent=loop_has_parent,
            loop_parent_span=loop_parent_span,
            acc_kind=np.array(kinds, dtype=np.int8),
            acc_region_bytes=np.array(regions, dtype=float),
            acc_stride=np.array(strides, dtype=float),
            acc_count=np.array(counts, dtype=float),
            acc_is_store=np.array(stores, dtype=bool),
            acc_iterations=np.array(iters, dtype=float),
        )


def _append_access(access, iterations, kinds, regions, strides, counts, stores, iters):
    try:
        kinds.append(_KIND_CODES[access.kind])
    except KeyError:
        raise ValueError(f"unknown region kind {access.kind!r}") from None
    regions.append(float(access.region_bytes))
    strides.append(float(access.stride))
    counts.append(float(access.count))
    stores.append(bool(access.is_store))
    iters.append(float(iterations))


@dataclass(frozen=True)
class MachineMatrix:
    """The Cacti timing model vectorised over a machine-parameter matrix.

    Every machine-dependent quantity the analytic model consumes, as an
    ``[M]`` float64 array.  Cacti latencies/energies are computed by the
    scalar (lru-cached) model per machine at construction, so the matrix
    is exact by construction and costs O(M) to build.
    """

    machines: tuple[MicroArch, ...]
    cycle_ns: np.ndarray
    issue_width: np.ndarray
    il1_block: np.ndarray
    ic_capacity: np.ndarray
    ic_hit_cycles: np.ndarray
    ic_miss_penalty: np.ndarray
    ic_read_energy: np.ndarray
    dl1_block: np.ndarray
    dc_capacity: np.ndarray
    dc_hit_cycles: np.ndarray
    dc_miss_penalty: np.ndarray
    dc_read_energy: np.ndarray
    btb_entries: np.ndarray
    btb_assoc: np.ndarray
    load_latency: np.ndarray

    def __len__(self) -> int:
        return len(self.machines)

    @classmethod
    def from_machines(cls, machines: Sequence[MicroArch]) -> "MachineMatrix":
        machines = tuple(machines)
        ic = [icache_timing(machine) for machine in machines]
        dc = [dcache_timing(machine) for machine in machines]
        arr = lambda values: np.array(values, dtype=float)  # noqa: E731
        dc_hit = arr([t.hit_cycles for t in dc])
        return cls(
            machines=machines,
            cycle_ns=arr([m.cycle_ns for m in machines]),
            issue_width=arr([m.issue_width for m in machines]),
            il1_block=arr([m.il1_block for m in machines]),
            ic_capacity=arr(
                [effective_capacity(m.il1_size, m.il1_assoc) for m in machines]
            ),
            ic_hit_cycles=arr([t.hit_cycles for t in ic]),
            ic_miss_penalty=arr([t.miss_penalty_cycles for t in ic]),
            ic_read_energy=arr(
                [
                    read_energy_nj(m.il1_size, m.il1_assoc, m.il1_block)
                    for m in machines
                ]
            ),
            dl1_block=arr([m.dl1_block for m in machines]),
            dc_capacity=arr(
                [effective_capacity(m.dl1_size, m.dl1_assoc) for m in machines]
            ),
            dc_hit_cycles=dc_hit,
            dc_miss_penalty=arr([t.miss_penalty_cycles for t in dc]),
            dc_read_energy=arr(
                [
                    read_energy_nj(m.dl1_size, m.dl1_assoc, m.dl1_block)
                    for m in machines
                ]
            ),
            btb_entries=arr([m.btb_entries for m in machines]),
            btb_assoc=arr([m.btb_assoc for m in machines]),
            load_latency=1.0 + dc_hit,
        )


@dataclass(frozen=True)
class VectorResults:
    """The full (S × M) simulation tensors, plus per-pair materialisation.

    ``seconds``/``cycles``/``energy_nj`` are ``[S, M]``; ``counters`` is
    ``[S, M, 11]`` in :data:`~repro.sim.counters.COUNTER_NAMES` order;
    ``breakdown`` maps each :data:`BREAKDOWN_NAMES` component to its
    ``[S, M]`` slab; ``detail`` likewise for the scalar model's detail
    dict.  :meth:`result` reconstructs the exact
    :class:`~repro.sim.analytic.SimulationResult` of one pair.
    """

    signatures: tuple[BinarySignature, ...]
    machine_matrix: MachineMatrix
    seconds: np.ndarray
    cycles: np.ndarray
    counters: np.ndarray
    energy_nj: np.ndarray
    breakdown: dict[str, np.ndarray]
    detail: dict[str, np.ndarray]

    @property
    def shape(self) -> tuple[int, int]:
        return self.seconds.shape

    def result(self, s: int, m: int) -> SimulationResult:
        """Materialise one pair as a scalar :class:`SimulationResult`."""
        breakdown = CycleBreakdown(
            **{name: float(self.breakdown[name][s, m]) for name in BREAKDOWN_NAMES}
        )
        counters = PerfCounters(
            **{
                name: float(self.counters[s, m, k])
                for k, name in enumerate(COUNTER_NAMES)
            }
        )
        detail = {
            name: float(values[s, m]) for name, values in self.detail.items()
        }
        return SimulationResult(
            cycles=float(self.cycles[s, m]),
            seconds=float(self.seconds[s, m]),
            counters=counters,
            breakdown=breakdown,
            energy_nj=float(self.energy_nj[s, m]),
            detail=detail,
        )


def _pad(rows: Sequence[np.ndarray], dtype) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length rows into ``[S, N_max]`` plus a validity mask."""
    S = len(rows)
    width = max((len(row) for row in rows), default=0)
    fill = False if dtype is bool else 0
    padded = np.full((S, width), fill, dtype=dtype)
    mask = np.zeros((S, width), dtype=bool)
    for s, row in enumerate(rows):
        padded[s, : len(row)] = row
        mask[s, : len(row)] = True
    return padded, mask


def simulate_many(
    signatures: Sequence[BinarySignature],
    machine_matrix: MachineMatrix | Sequence[MicroArch],
) -> VectorResults:
    """Run the analytic model over every (signature × machine) pair.

    Exactly equal, float for float, to calling ``simulate_analytic`` on
    each pair — see the module docstring for why.
    """
    if not isinstance(machine_matrix, MachineMatrix):
        machine_matrix = MachineMatrix.from_machines(machine_matrix)
    signatures = tuple(signatures)
    mm = machine_matrix
    S, M = len(signatures), len(mm)

    def col(name: str) -> np.ndarray:
        return np.array(
            [getattr(sig, name) for sig in signatures], dtype=float
        )[:, None]

    dyn_insns = col("dyn_insns")
    dyn_memory = col("dyn_memory")
    dyn_branches = col("dyn_branches")
    dyn_taken = col("dyn_taken")
    dyn_calls = col("dyn_calls")
    code_bytes = col("code_bytes")
    branch_sites = col("branch_sites")
    mean_predictability = col("mean_predictability")
    aligned_taken_fraction = col("aligned_taken_fraction")
    reg_reads = col("reg_reads")

    width = mm.issue_width[None, :]
    ic_hit = mm.ic_hit_cycles[None, :]
    ic_penalty = mm.ic_miss_penalty[None, :]
    ic_capacity = mm.ic_capacity[None, :]
    il1_block = mm.il1_block[None, :]
    dc_penalty = mm.dc_miss_penalty[None, :]
    dc_capacity = mm.dc_capacity[None, :]
    dl1_block = mm.dl1_block[None, :]
    load_latency = mm.load_latency[None, :]
    zeros = np.zeros((S, M), dtype=float)

    # --- issue -------------------------------------------------------------
    issue = np.where(
        width == 1.0,
        dyn_insns + zeros,
        np.maximum(np.maximum(dyn_insns / 2.0, dyn_memory), dyn_branches),
    )

    # --- dependence stalls ---------------------------------------------------
    stall_is_load, stall_mask = _pad(
        [sig.stall_is_load for sig in signatures], bool
    )
    stall_fixed, _ = _pad([sig.stall_fixed_latency for sig in signatures], float)
    stall_distance, _ = _pad([sig.stall_distance for sig in signatures], float)
    stall_count, _ = _pad([sig.stall_count for sig in signatures], float)
    stalls = zeros.copy()
    for e in range(stall_mask.shape[1]):
        latency = np.where(
            stall_is_load[:, e, None], load_latency, stall_fixed[:, e, None]
        )
        gap = stall_distance[:, e, None] / width
        stalling = stall_mask[:, e, None] & (latency > gap)
        stalls += np.where(
            stalling, stall_count[:, e, None] * (latency - gap), 0.0
        )

    # --- instruction cache ----------------------------------------------------
    loop_span, loop_mask = _pad([sig.loop_span for sig in signatures], float)
    loop_entries, _ = _pad([sig.loop_entries for sig in signatures], float)
    loop_iterations, _ = _pad([sig.loop_iterations for sig in signatures], float)
    loop_has_parent, _ = _pad([sig.loop_has_parent for sig in signatures], bool)
    loop_parent_span, _ = _pad(
        [sig.loop_parent_span for sig in signatures], float
    )
    ic_misses = code_bytes / il1_block  # one-time cold footprint
    for l in range(loop_mask.shape[1]):
        span = loop_span[:, l, None]
        entries = loop_entries[:, l, None]
        lines = span / il1_block
        cold = np.minimum(entries, 1.0) * lines
        reentry = np.maximum(entries - 1.0, 0.0) * lines * REENTRY_FRACTION
        parent_resident = loop_has_parent[:, l, None] & (
            loop_parent_span[:, l, None] <= ic_capacity
        )
        cold = np.where(parent_resident, cold, cold + reentry)
        thrash_fraction = np.minimum(
            1.0, (span - ic_capacity) / (THRASH_RAMP * ic_capacity)
        )
        misses = np.where(
            span <= ic_capacity,
            cold,
            cold + loop_iterations[:, l, None] * thrash_fraction * lines,
        )
        ic_misses = ic_misses + np.where(loop_mask[:, l, None], misses, 0.0)
    icache_component = ic_misses * ic_penalty * SEQUENTIAL_FETCH_OVERLAP

    # --- fetch bubbles on taken branches ---------------------------------------
    bubble = ic_hit - 0.5 * aligned_taken_fraction
    fetch_bubbles = dyn_taken * np.maximum(bubble, 0.0)

    # --- branch prediction ------------------------------------------------------
    btb_utilisation = 1.0 - 0.3 / mm.btb_assoc[None, :]
    btb_slots = mm.btb_entries[None, :] * btb_utilisation
    sites_safe = np.where(branch_sites > 0.0, branch_sites, 1.0)
    btb_miss_rate = np.where(
        branch_sites > btb_slots, 1.0 - btb_slots / sites_safe, 0.0
    )
    mispredict_rate = np.minimum(
        1.0, (1.0 - mean_predictability) + 0.5 * btb_miss_rate
    )
    penalty = MISPREDICT_PENALTY + (ic_hit - 1.0)
    branch_component = (
        dyn_branches * mispredict_rate * penalty
        + dyn_taken * btb_miss_rate * 2.0
    )

    # --- data cache ----------------------------------------------------------
    acc_kind, acc_mask = _pad([sig.acc_kind for sig in signatures], np.int8)
    acc_region, _ = _pad([sig.acc_region_bytes for sig in signatures], float)
    acc_stride, _ = _pad([sig.acc_stride for sig in signatures], float)
    acc_count, _ = _pad([sig.acc_count for sig in signatures], float)
    acc_is_store, _ = _pad([sig.acc_is_store for sig in signatures], bool)
    acc_iterations, _ = _pad([sig.acc_iterations for sig in signatures], float)
    dc_load_misses = zeros.copy()
    dc_store_misses = zeros.copy()
    for a in range(acc_mask.shape[1]):
        kind = acc_kind[:, a, None]
        region = acc_region[:, a, None]
        stride = acc_stride[:, a, None]
        count = acc_count[:, a, None]
        iterations = acc_iterations[:, a, None]
        region_safe = np.where(region > 0.0, region, 1.0)
        resident = np.where(
            region > 0.0, np.minimum(dc_capacity / region_safe, 1.0), 1.0
        )
        not_resident = 1.0 - resident

        stack_misses = np.minimum(count, region / dl1_block)
        per_access = np.minimum(stride / dl1_block, 1.0)
        swept = iterations * stride
        stream_misses = np.where(
            stride == 0.0,
            np.minimum(count, 1.0),
            np.where(
                swept <= region,
                count * per_access,
                region / dl1_block + count * per_access * not_resident,
            ),
        )
        table_misses = count * not_resident * TABLE_LOCALITY
        chase_misses = count * not_resident

        misses = np.where(
            kind == KIND_STACK,
            stack_misses,
            np.where(
                kind == KIND_STREAM,
                stream_misses,
                np.where(kind == KIND_TABLE, table_misses, chase_misses),
            ),
        )
        valid = acc_mask[:, a, None]
        store = acc_is_store[:, a, None]
        dc_store_misses += np.where(valid & store, misses, 0.0)
        dc_load_misses += np.where(valid & ~store, misses, 0.0)
    dc_misses = dc_load_misses + dc_store_misses
    dcache_component = dc_penalty * (
        dc_load_misses + STORE_MISS_FACTOR * dc_store_misses
    )

    # --- calls -------------------------------------------------------------
    call_overhead = dyn_calls * CALL_OVERHEAD_CYCLES + zeros

    # --- totals (summed in CycleBreakdown.total() order) -----------------------
    cycles = np.maximum(
        issue
        + stalls
        + icache_component
        + fetch_bubbles
        + branch_component
        + dcache_component
        + call_overhead,
        1.0,
    )
    seconds = cycles * mm.cycle_ns[None, :] * 1e-9

    # --- counters ------------------------------------------------------------
    dyn = np.maximum(dyn_insns, 1.0)
    squashed = dyn_branches * mispredict_rate * MISPREDICT_PENALTY
    fetches = dyn + squashed
    memory_ops = np.maximum(dyn_memory, 1.0)
    counters = np.empty((S, M, len(COUNTER_NAMES)), dtype=float)
    counters[:, :, 0] = dyn / cycles  # ipc
    counters[:, :, 1] = fetches / cycles  # dec_acc_rate
    counters[:, :, 2] = reg_reads / cycles  # reg_acc_rate
    counters[:, :, 3] = dyn_branches / cycles  # bpred_acc_rate
    counters[:, :, 4] = fetches / cycles  # icache_acc_rate
    counters[:, :, 5] = np.minimum(ic_misses / fetches, 1.0)  # icache_miss_rate
    counters[:, :, 6] = dyn_memory / cycles  # dcache_acc_rate
    counters[:, :, 7] = np.minimum(dc_misses / memory_ops, 1.0)  # dcache_miss
    counters[:, :, 8] = col("mix_alu") / dyn + zeros  # alu_usage
    counters[:, :, 9] = col("mix_mac") / dyn + zeros  # mac_usage
    counters[:, :, 10] = col("mix_shift") / dyn + zeros  # shift_usage

    # --- energy --------------------------------------------------------------
    energy = (
        dyn_insns * (mm.ic_read_energy[None, :] + CORE_ENERGY_PER_INSN)
        + dyn_memory * mm.dc_read_energy[None, :]
        + (ic_misses + dc_misses) * MEMORY_ENERGY_PER_MISS
    )

    return VectorResults(
        signatures=signatures,
        machine_matrix=mm,
        seconds=seconds,
        cycles=cycles,
        counters=counters,
        energy_nj=energy,
        breakdown={
            "issue": issue,
            "dependence_stalls": stalls,
            "icache_misses": icache_component,
            "fetch_bubbles": fetch_bubbles,
            "branch_mispredictions": branch_component,
            "dcache_misses": dcache_component,
            "call_overhead": call_overhead,
        },
        detail={
            "ic_misses": ic_misses,
            "dc_misses": dc_misses,
            "btb_miss_rate": btb_miss_rate,
            "mispredict_rate": mispredict_rate,
            "load_latency": np.broadcast_to(load_latency, (S, M)),
        },
    )


def simulate_grid(
    binaries: Sequence[CompiledBinary],
    machines: MachineMatrix | Sequence[MicroArch],
) -> VectorResults:
    """Convenience wrapper: signatures + matrix + one kernel pass."""
    return simulate_many(
        [BinarySignature.from_binary(binary) for binary in binaries], machines
    )


class GridIndex:
    """Deduplicating index for one axis of a simulate-many grid.

    Batch callers (``session.eval.batch``, the service's batched
    ``/predict``) map arbitrary request lists onto a dense
    (binary × machine) grid: each axis keeps first-seen order, and
    ``add`` returns the axis position for a key, invoking ``make`` only
    when the key is new (so e.g. compilation happens once per distinct
    setting).
    """

    def __init__(self):
        self.values: list = []
        self._positions: dict = {}

    def add(self, key, make) -> int:
        position = self._positions.get(key)
        if position is None:
            position = self._positions[key] = len(self.values)
            self.values.append(make())
        return position
