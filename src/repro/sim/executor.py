"""Unified simulation entry point.

``simulate`` accepts either a :class:`~repro.compiler.binary.CompiledBinary`
or a raw :class:`~repro.compiler.ir.Program` (compiled at -O3 with a shared
compiler) and runs the analytic executor, mirroring the paper's single
profile run of the new program on the new microarchitecture.

``observable_outputs`` extracts the *semantic* observables of an
execution — which data regions the program reads and writes, how often,
and the region declarations themselves — the quantities an optimising
compiler must preserve whatever it does to the timing.  The differential
semantics-preservation fuzz suite compares these between the unoptimised
program and every optimised binary.
"""

from __future__ import annotations

from repro.compiler.binary import CompiledBinary, finalize
from repro.compiler.flags import FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.sim.analytic import SimulationResult, simulate_analytic

_SHARED_COMPILER = Compiler()


def simulate(
    target: CompiledBinary | Program,
    machine: MicroArch,
    setting: FlagSetting | None = None,
    compiler: Compiler | None = None,
) -> SimulationResult:
    """Simulate a binary (or compile a program first) on ``machine``.

    Args:
        target: a compiled binary, or a program to compile.
        machine: the microarchitecture configuration to run on.
        setting: flag setting used when ``target`` is a program
            (default: -O3, the paper's profiling configuration).
        compiler: compiler to use for programs (default: a shared,
            memoising instance).
    """
    if isinstance(target, Program):
        active_compiler = compiler if compiler is not None else _SHARED_COMPILER
        binary = active_compiler.compile(
            target, setting if setting is not None else o3_setting()
        )
    else:
        binary = target
    return simulate_analytic(binary, machine)


def observable_outputs(target: CompiledBinary | Program) -> dict:
    """The executed, semantically observable outputs of one run.

    For a raw :class:`Program` this is the unoptimised execution (the
    profile run as written); for a :class:`CompiledBinary` it is the
    optimised execution.  Returned observables:

    * ``reads`` / ``writes`` — the sets of non-stack data regions the
      execution dynamically loads from / stores to.  Optimisation must
      preserve these exactly: no pass may invent traffic to a region the
      program never touches, nor eliminate a region's *only* accesses.
    * ``read_counts`` / ``write_counts`` — dynamic access counts per
      region.  Redundancy elimination and invariant motion may only
      *reduce* these (spill traffic goes to the stack region, which is
      machine state, not program output, and is excluded).
    * ``regions`` — every region's declared (size, kind); passes reshape
      code, never data.
    """
    if isinstance(target, Program):
        # Summarise the unoptimised program exactly as the simulator
        # would execute it; ``finalize`` is pure bookkeeping, no passes.
        binary = finalize(target.clone(), None)
    else:
        binary = target
    reads: dict[str, float] = {}
    writes: dict[str, float] = {}

    def record(access) -> None:
        if access.kind == "stack":
            return
        counts = writes if access.is_store else reads
        counts[access.region] = counts.get(access.region, 0.0) + access.count

    for loop in binary.loops:
        for access in loop.accesses:
            record(access)
    for access in binary.flat_accesses:
        record(access)
    return {
        "reads": frozenset(reads),
        "writes": frozenset(writes),
        "read_counts": reads,
        "write_counts": writes,
        "regions": {
            name: (region.size_bytes, region.kind)
            for name, region in sorted(binary.regions.items())
        },
    }
