"""Unified simulation entry point.

``simulate`` accepts either a :class:`~repro.compiler.binary.CompiledBinary`
or a raw :class:`~repro.compiler.ir.Program` (compiled at -O3 with a shared
compiler) and runs the analytic executor, mirroring the paper's single
profile run of the new program on the new microarchitecture.
"""

from __future__ import annotations

from repro.compiler.binary import CompiledBinary
from repro.compiler.flags import FlagSetting, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.sim.analytic import SimulationResult, simulate_analytic

_SHARED_COMPILER = Compiler()


def simulate(
    target: CompiledBinary | Program,
    machine: MicroArch,
    setting: FlagSetting | None = None,
    compiler: Compiler | None = None,
) -> SimulationResult:
    """Simulate a binary (or compile a program first) on ``machine``.

    Args:
        target: a compiled binary, or a program to compile.
        machine: the microarchitecture configuration to run on.
        setting: flag setting used when ``target`` is a program
            (default: -O3, the paper's profiling configuration).
        compiler: compiler to use for programs (default: a shared,
            memoising instance).
    """
    if isinstance(target, Program):
        active_compiler = compiler if compiler is not None else _SHARED_COMPILER
        binary = active_compiler.compile(
            target, setting if setting is not None else o3_setting()
        )
    else:
        binary = target
    return simulate_analytic(binary, machine)
