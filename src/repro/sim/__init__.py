"""The Xtrem stand-in: XScale-style timing simulation in two tiers."""

from repro.sim.analytic import (
    CycleBreakdown,
    SimulationResult,
    access_dcache_misses,
    effective_capacity,
    loop_icache_misses,
    simulate_analytic,
)
from repro.sim.branch import BimodalPredictor, BranchTargetBuffer, BranchUnit
from repro.sim.cache import CacheStats, SetAssociativeCache
from repro.sim.counters import COUNTER_NAMES, PerfCounters
from repro.sim.executor import observable_outputs, simulate
from repro.sim.trace import TraceResult, simulate_trace
from repro.sim.vector import (
    BinarySignature,
    MachineMatrix,
    VectorResults,
    simulate_grid,
    simulate_many,
)

__all__ = [
    "BimodalPredictor",
    "BinarySignature",
    "BranchTargetBuffer",
    "BranchUnit",
    "COUNTER_NAMES",
    "CacheStats",
    "CycleBreakdown",
    "MachineMatrix",
    "PerfCounters",
    "SetAssociativeCache",
    "SimulationResult",
    "TraceResult",
    "VectorResults",
    "access_dcache_misses",
    "effective_capacity",
    "loop_icache_misses",
    "observable_outputs",
    "simulate",
    "simulate_analytic",
    "simulate_grid",
    "simulate_many",
    "simulate_trace",
]
