"""Trace-driven reference simulation (the slow, faithful Xtrem tier).

From a :class:`~repro.compiler.binary.CompiledBinary` this module
regenerates representative address and branch streams — loop code walks,
strided data streams, table lookups with a hot set, dependent pointer
chases — and drives the true-LRU cache and BTB simulators with them.

Its purpose is validation: the analytic executor's capacity/thrash formulas
must reproduce what these reference structures actually do.  Iteration
counts are scaled down (preserving footprints and strides, which determine
miss *rates*) so traces stay affordable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.binary import CompiledBinary
from repro.machine.params import MicroArch
from repro.sim.branch import BranchUnit
from repro.sim.cache import SetAssociativeCache


@dataclass
class TraceResult:
    """Measured miss rates from reference simulation."""

    icache_accesses: int
    icache_misses: int
    dcache_accesses: int
    dcache_misses: int
    btb_lookups: int
    btb_misses: int

    @property
    def icache_miss_rate(self) -> float:
        return self.icache_misses / self.icache_accesses if self.icache_accesses else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def btb_miss_rate(self) -> float:
        return self.btb_misses / self.btb_lookups if self.btb_lookups else 0.0


class _Lcg:
    """Deterministic 32-bit linear congruential generator (no global RNG)."""

    def __init__(self, seed: int):
        self.state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state

    def below(self, bound: int) -> int:
        return self.next() % max(bound, 1)


def _scaled_iterations(iterations: float, max_iterations: int) -> int:
    return int(min(max(iterations, 1.0), max_iterations))


def simulate_trace(
    binary: CompiledBinary,
    machine: MicroArch,
    max_loop_iterations: int = 256,
    seed: int = 7,
) -> TraceResult:
    """Replay representative reference streams through real simulators."""
    icache = SetAssociativeCache(
        machine.il1_size, machine.il1_assoc, machine.il1_block
    )
    dcache = SetAssociativeCache(
        machine.dl1_size, machine.dl1_assoc, machine.dl1_block
    )
    branches = BranchUnit(machine.btb_entries, machine.btb_assoc)
    rng = _Lcg(seed)

    region_base: dict[str, int] = {}
    next_base = 1 << 20  # data segment, disjoint from code
    for name, region in sorted(binary.regions.items()):
        region_base[name] = next_base
        next_base += ((region.size_bytes + 4095) // 4096) * 4096 + 4096

    code_base = 0x1000
    for loop in sorted(binary.loops, key=lambda item: item.key):
        iterations = _scaled_iterations(loop.iterations, max_loop_iterations)
        span = max(loop.code_bytes, machine.il1_block)
        # Hot data pointers persist across iterations of this loop.
        stream_offset: dict[int, int] = {}
        chase_pointer: dict[str, int] = {}
        for iteration in range(iterations):
            # Code walk: the loop body is fetched front to back each trip.
            for offset in range(0, span, machine.il1_block):
                icache.access(code_base + offset)
            # Branch at the loop latch (taken while iterating).
            branches.execute(code_base + span, taken=iteration < iterations - 1)
            # Data streams.
            for access_index, access in enumerate(loop.accesses):
                base = region_base[access.region]
                per_iteration = max(
                    1, round(access.count / max(loop.iterations, 1.0))
                )
                for repeat in range(per_iteration):
                    if access.kind == "stream" and access.stride > 0:
                        position = stream_offset.get(access_index, 0)
                        address = base + position % max(access.region_bytes, 1)
                        stream_offset[access_index] = position + access.stride
                    elif access.kind == "table":
                        # 50 % of lookups land in a hot eighth of the table.
                        if rng.below(2) == 0:
                            address = base + rng.below(
                                max(access.region_bytes // 8, 1)
                            )
                        else:
                            address = base + rng.below(access.region_bytes)
                    elif access.kind == "chase":
                        pointer = chase_pointer.get(
                            access.region, rng.below(access.region_bytes)
                        )
                        address = base + pointer
                        chase_pointer[access.region] = rng.below(
                            access.region_bytes
                        )
                    else:  # stack / stride-0: revisit one slot
                        address = base + (access_index * 64) % max(
                            access.region_bytes, 64
                        )
                    dcache.access(address)
        code_base += ((span + 4095) // 4096) * 4096 + 4096

    return TraceResult(
        icache_accesses=icache.stats.accesses,
        icache_misses=icache.stats.misses,
        dcache_accesses=dcache.stats.accesses,
        dcache_misses=dcache.stats.misses,
        btb_lookups=branches.stats.lookups,
        btb_misses=branches.stats.btb_misses,
    )
