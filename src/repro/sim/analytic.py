"""The analytic timing model: (compiled binary, microarchitecture) → cycles.

This is the fast tier of the Xtrem stand-in.  It computes a cycle count as
the sum of well-understood components of an in-order XScale-style pipeline,
each derived from the binary's summaries and the machine's Cacti-modelled
latencies.  The decomposition is the standard first-order model of
Karkhanis & Smith (cited by the paper for its counter choice):

``cycles = issue + dependence stalls + icache misses + fetch bubbles
           + branch mispredictions + dcache misses + call overhead``

All components are deterministic, smooth in the design-space parameters,
and — critically for this reproduction — sensitive to exactly the binary
properties the optimisation flags change: code footprint per loop
(unrolling, inlining, unswitching, alignment, crossjumping), dependence
spacing (scheduling), spill traffic (scheduling × register allocation),
branch counts and taken fractions (unrolling, reordering, threading) and
memory streams (load/store motion, LAS).

The trace-tier simulator (:mod:`repro.sim.trace`) validates the cache and
BTB capacity models against true-LRU reference simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.binary import CompiledBinary, LoopSummary, RegionAccess
from repro.machine.cacti import dcache_timing, icache_timing, read_energy_nj
from repro.machine.params import MicroArch
from repro.sim.counters import PerfCounters

#: Producer latencies by dependence kind; ``load`` is machine-dependent and
#: resolved from the Cacti model at simulation time.
FIXED_LATENCY = {"alu": 1.0, "mac": 3.0, "shift": 1.0, "carried": 4.0}

#: Fraction of a cache lost to conflicts at associativity ``a``: the
#: effective capacity is ``size * (1 - CONFLICT_LOSS / a)``.
CONFLICT_LOSS = 0.5

#: A loop ramps from zero to full thrashing as its footprint exceeds the
#: effective capacity by this fraction (non-uniform intra-loop reuse makes
#: the transition gradual rather than the sharp LRU-cyclic cliff).
THRASH_RAMP = 1.0

#: Temporal-locality credit for table lookups (indices revisit hot entries).
TABLE_LOCALITY = 0.5

#: Write-buffer absorption: stores pay this fraction of the miss penalty.
STORE_MISS_FACTOR = 0.3

#: Per-entry instruction-cache leakage: re-entering a loop refetches this
#: fraction of its lines (other code evicted some of them in between).
REENTRY_FRACTION = 0.05

#: Sequential code fetch misses overlap (critical-word-first plus burst
#: transfer of consecutive lines), so an instruction miss costs this
#: fraction of the full memory round-trip on average.
SEQUENTIAL_FETCH_OVERLAP = 0.55

#: Fixed pipeline overhead of a call/return beyond its branch behaviour.
CALL_OVERHEAD_CYCLES = 1.0

#: Branch misprediction pipeline refill depth at the baseline clock.
MISPREDICT_PENALTY = 4.0

#: DRAM traffic energy per cache miss (either cache), nJ.
MEMORY_ENERGY_PER_MISS = 5.0

#: Core (non-array) dynamic energy per committed instruction, nJ.
CORE_ENERGY_PER_INSN = 0.15


@dataclass
class CycleBreakdown:
    """Where the cycles went; the sum is the total."""

    issue: float = 0.0
    dependence_stalls: float = 0.0
    icache_misses: float = 0.0
    fetch_bubbles: float = 0.0
    branch_mispredictions: float = 0.0
    dcache_misses: float = 0.0
    call_overhead: float = 0.0

    def total(self) -> float:
        return (
            self.issue
            + self.dependence_stalls
            + self.icache_misses
            + self.fetch_bubbles
            + self.branch_mispredictions
            + self.dcache_misses
            + self.call_overhead
        )


@dataclass
class SimulationResult:
    """One program execution on one microarchitecture."""

    cycles: float
    seconds: float
    counters: PerfCounters
    breakdown: CycleBreakdown
    energy_nj: float = 0.0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def runtime(self) -> float:
        """Alias for ``seconds`` (what speedups are computed from)."""
        return self.seconds


def effective_capacity(size_bytes: int, assoc: int) -> float:
    """Capacity after conflict losses at the given associativity."""
    return size_bytes * (1.0 - CONFLICT_LOSS / assoc)


def loop_icache_misses(
    loop: LoopSummary,
    capacity: float,
    block_bytes: int,
    parent_resident: bool = False,
) -> float:
    """Instruction misses attributable to one loop's cyclic code reuse.

    A loop whose span fits the effective capacity only pays compulsory
    misses on entry (plus a small re-entry leak — unless it is nested in a
    parent whose span itself stays resident, in which case re-entries hit);
    one that exceeds the capacity ramps to cyclic thrashing — with true
    LRU, a cyclic reference stream longer than the cache misses on every
    line, which the trace tier confirms.
    """
    span = float(loop.code_bytes)
    lines = span / block_bytes
    cold = min(loop.entries, 1.0) * lines
    if not parent_resident:
        cold += max(loop.entries - 1.0, 0.0) * lines * REENTRY_FRACTION
    if span <= capacity:
        return cold
    thrash_fraction = min(1.0, (span - capacity) / (THRASH_RAMP * capacity))
    return cold + loop.iterations * thrash_fraction * lines


def access_dcache_misses(
    access: RegionAccess,
    iterations: float,
    capacity: float,
    block_bytes: int,
) -> float:
    """Data misses for one aggregated access stream within a loop.

    * ``stream`` regions advance by ``stride`` per iteration: spatial reuse
      gives ``min(stride/block, 1)`` misses per access while the data is
      new; once the region wraps, temporal reuse kicks in if it fits.
    * ``table`` regions are hit with data-dependent indices: miss
      probability is the fraction of the table not resident, discounted by
      temporal locality on hot entries.
    * ``chase`` regions are dependent pointer walks: fully random touches,
      no locality credit.
    * ``stack`` (stride 0) accesses revisit a handful of spill slots:
      compulsory misses only.
    """
    count = access.count
    region = float(access.region_bytes)
    resident = min(capacity / region, 1.0) if region > 0 else 1.0

    if access.kind == "stack":
        return min(count, region / block_bytes)

    if access.kind == "stream":
        if access.stride == 0:
            # Loop-invariant address: one compulsory miss, then hits.
            return min(count, 1.0)
        per_access = min(access.stride / block_bytes, 1.0)
        swept = iterations * access.stride
        if swept <= region:
            # Single pass: every new block is a compulsory miss.
            return count * per_access
        # Wrapping stream: one compulsory pass over the region, then
        # repeated passes hit for the resident fraction.
        return region / block_bytes + count * per_access * (1.0 - resident)

    if access.kind == "table":
        return count * (1.0 - resident) * TABLE_LOCALITY

    if access.kind == "chase":
        return count * (1.0 - resident)

    raise ValueError(f"unknown region kind {access.kind!r}")


def simulate_analytic(binary: CompiledBinary, machine: MicroArch) -> SimulationResult:
    """Run the analytic model; see the module docstring for the equations."""
    ic_timing = icache_timing(machine)
    dc_timing = dcache_timing(machine)
    load_latency = 1.0 + dc_timing.hit_cycles
    width = machine.issue_width

    breakdown = CycleBreakdown()

    # --- issue -------------------------------------------------------------
    if width == 1:
        breakdown.issue = binary.dyn_insns
    else:
        # Dual issue bounded by the single memory port and one control
        # transfer per fetch group.
        breakdown.issue = max(
            binary.dyn_insns / 2.0, binary.dyn_memory, binary.dyn_branches
        )

    # --- dependence stalls ---------------------------------------------------
    stalls = 0.0
    for (kind, distance), count in binary.stall_profile.items():
        latency = (
            load_latency if kind == "load" else FIXED_LATENCY.get(kind, 1.0)
        )
        gap = distance / width
        if latency > gap:
            stalls += count * (latency - gap)
    breakdown.dependence_stalls = stalls

    # --- instruction cache ----------------------------------------------------
    ic_capacity = effective_capacity(machine.il1_size, machine.il1_assoc)
    ic_misses = binary.code_bytes / machine.il1_block  # one-time cold footprint
    span_by_key = {loop.key: loop.code_bytes for loop in binary.loops}
    for loop in binary.loops:
        parent_resident = (
            loop.parent is not None
            and span_by_key.get(loop.parent, 0) <= ic_capacity
        )
        ic_misses += loop_icache_misses(
            loop, ic_capacity, machine.il1_block, parent_resident
        )
    breakdown.icache_misses = (
        ic_misses * ic_timing.miss_penalty_cycles * SEQUENTIAL_FETCH_OVERLAP
    )

    # --- fetch bubbles on taken branches ---------------------------------------
    redirect = float(ic_timing.hit_cycles)
    bubble = redirect - 0.5 * binary.aligned_taken_fraction
    breakdown.fetch_bubbles = binary.dyn_taken * max(bubble, 0.0)

    # --- branch prediction ------------------------------------------------------
    btb_utilisation = 1.0 - 0.3 / machine.btb_assoc
    btb_slots = machine.btb_entries * btb_utilisation
    if binary.branch_sites > btb_slots:
        btb_miss_rate = 1.0 - btb_slots / binary.branch_sites
    else:
        btb_miss_rate = 0.0
    mispredict_rate = min(
        1.0, (1.0 - binary.mean_predictability) + 0.5 * btb_miss_rate
    )
    penalty = MISPREDICT_PENALTY + (ic_timing.hit_cycles - 1.0)
    breakdown.branch_mispredictions = (
        binary.dyn_branches * mispredict_rate * penalty
        + binary.dyn_taken * btb_miss_rate * 2.0
    )

    # --- data cache ----------------------------------------------------------
    dc_capacity = effective_capacity(machine.dl1_size, machine.dl1_assoc)
    dc_load_misses = 0.0
    dc_store_misses = 0.0
    for loop in binary.loops:
        for access in loop.accesses:
            misses = access_dcache_misses(
                access, loop.iterations, dc_capacity, machine.dl1_block
            )
            if access.is_store:
                dc_store_misses += misses
            else:
                dc_load_misses += misses
    for access in binary.flat_accesses:
        misses = access_dcache_misses(access, 1.0, dc_capacity, machine.dl1_block)
        if access.is_store:
            dc_store_misses += misses
        else:
            dc_load_misses += misses
    breakdown.dcache_misses = dc_timing.miss_penalty_cycles * (
        dc_load_misses + STORE_MISS_FACTOR * dc_store_misses
    )

    # --- calls -------------------------------------------------------------
    breakdown.call_overhead = binary.dyn_calls * CALL_OVERHEAD_CYCLES

    cycles = max(breakdown.total(), 1.0)
    seconds = cycles * machine.cycle_ns * 1e-9

    counters = _counters(
        binary,
        machine,
        cycles,
        ic_misses=ic_misses,
        dc_misses=dc_load_misses + dc_store_misses,
        mispredict_rate=mispredict_rate,
    )
    energy = _energy(binary, machine, ic_misses, dc_load_misses + dc_store_misses)

    return SimulationResult(
        cycles=cycles,
        seconds=seconds,
        counters=counters,
        breakdown=breakdown,
        energy_nj=energy,
        detail={
            "ic_misses": ic_misses,
            "dc_misses": dc_load_misses + dc_store_misses,
            "btb_miss_rate": btb_miss_rate,
            "mispredict_rate": mispredict_rate,
            "load_latency": load_latency,
        },
    )


def _counters(
    binary: CompiledBinary,
    machine: MicroArch,
    cycles: float,
    ic_misses: float,
    dc_misses: float,
    mispredict_rate: float,
) -> PerfCounters:
    dyn = max(binary.dyn_insns, 1.0)
    # Squashed wrong-path fetches inflate fetch/decode traffic.
    squashed = binary.dyn_branches * mispredict_rate * MISPREDICT_PENALTY
    fetches = dyn + squashed
    memory_ops = max(binary.dyn_memory, 1.0)
    return PerfCounters(
        ipc=dyn / cycles,
        dec_acc_rate=fetches / cycles,
        reg_acc_rate=binary.reg_reads / cycles,
        bpred_acc_rate=binary.dyn_branches / cycles,
        icache_acc_rate=fetches / cycles,
        icache_miss_rate=min(ic_misses / fetches, 1.0),
        dcache_acc_rate=binary.dyn_memory / cycles,
        dcache_miss_rate=min(dc_misses / memory_ops, 1.0),
        alu_usage=binary.mix["alu"] / dyn,
        mac_usage=binary.mix["mac"] / dyn,
        shift_usage=binary.mix["shift"] / dyn,
    )


def _energy(
    binary: CompiledBinary,
    machine: MicroArch,
    ic_misses: float,
    dc_misses: float,
) -> float:
    """First-order dynamic energy (nJ): array reads plus memory traffic."""
    ic_energy = read_energy_nj(
        machine.il1_size, machine.il1_assoc, machine.il1_block
    )
    dc_energy = read_energy_nj(
        machine.dl1_size, machine.dl1_assoc, machine.dl1_block
    )
    return (
        binary.dyn_insns * (ic_energy + CORE_ENERGY_PER_INSN)
        + binary.dyn_memory * dc_energy
        + (ic_misses + dc_misses) * MEMORY_ENERGY_PER_MISS
    )
