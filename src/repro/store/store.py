"""The sharded, resumable experiment store.

An :class:`ExperimentStore` holds the results of one experiment grid —
``programs × machines × settings`` — as a collection of append-only,
content-fingerprinted shard files, one per (program, machine-chunk).
On-disk layout under the store root::

    store-<scale>-<fingerprint>/
        manifest.json             # the full grid: programs, machines,
                                  # settings, chunking, metadata
        shards/
            p0000-c0000.npz       # runtimes[S, Mc], o3_runtimes[Mc],
            p0000-c0000.json      # counters[Mc, K], code_features[J]
            ...                   # + sidecar with the content digest

Shards are written atomically (temp file + rename, array file before
sidecar), so a killed run leaves either a complete, verifiable shard or
nothing — restarting simply skips every shard whose sidecar digest
checks out and recomputes the rest.  Because each shard is a pure
function of the manifest grid, a resumed store assembles to a
:class:`~repro.core.training.TrainingSet` bit-identical to a single-shot
build, whatever the executor or interruption pattern.

With ``root=None`` the store keeps shards in memory — same API, no disk —
which is how cache-less builds and tests run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, NamedTuple, Sequence

import numpy as np

from repro.ioutil import (
    DEFAULT_RETRY,
    atomic_write_bytes,
    atomic_write_text,
    tmp_sibling,
)

from repro.compiler.flags import FlagSetting
from repro.core.training import TrainingSet
from repro.machine.params import MicroArch
from repro.sim.counters import COUNTER_NAMES
from repro.store.compute import ShardArrays

#: Manifest/sidecar schema version; bump on incompatible layout changes.
STORE_FORMAT = 1

#: Temp files older than this are orphans of killed writers and get
#: swept on store open; live writers finish a shard in well under this.
STALE_TMP_SECONDS = 3600.0

#: Default machines per shard.  Larger chunks amortise compilation over
#: more simulations (compile-once/simulate-many) but checkpoint less
#: often; 8 keeps even the paper grid (35 × 200 machines) at a
#: manageable 875 shards.
DEFAULT_CHUNK_MACHINES = 8

_SHARD_ARRAY_NAMES = ("runtimes", "o3_runtimes", "counters", "code_features")


class StoreError(RuntimeError):
    """A store directory is unusable: wrong grid, version, or corrupt."""


class ShardKey(NamedTuple):
    """Grid coordinates of one shard: program index × machine-chunk index."""

    program: int
    chunk: int

    def stem(self) -> str:
        return f"p{self.program:04d}-c{self.chunk:04d}"


@dataclass(frozen=True)
class GridSpec:
    """The full, explicit experiment grid a store is built over.

    Everything is value-level (names, machine configurations, flag
    settings) so that the grid — and therefore every shard — is
    reproducible from the manifest alone.
    """

    program_names: tuple[str, ...]
    machines: tuple[MicroArch, ...]
    settings: tuple[FlagSetting, ...]
    extended: bool = False
    chunk_machines: int = DEFAULT_CHUNK_MACHINES
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.program_names or not self.machines or not self.settings:
            raise ValueError("grid needs at least one program/machine/setting")
        if self.chunk_machines < 1:
            raise ValueError("chunk_machines must be >= 1")

    # ------------------------------------------------------------ geometry
    @property
    def n_programs(self) -> int:
        return len(self.program_names)

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def n_settings(self) -> int:
        return len(self.settings)

    @property
    def n_chunks(self) -> int:
        return -(-self.n_machines // self.chunk_machines)

    @property
    def n_shards(self) -> int:
        return self.n_programs * self.n_chunks

    def chunk_range(self, chunk: int) -> tuple[int, int]:
        """Machine index range ``[start, stop)`` of one chunk."""
        start = chunk * self.chunk_machines
        return start, min(start + self.chunk_machines, self.n_machines)

    def chunk_of(self, key: ShardKey) -> list[MicroArch]:
        start, stop = self.chunk_range(key.chunk)
        return list(self.machines[start:stop])

    def shard_keys(self) -> Iterator[ShardKey]:
        """All shard coordinates, program-major.

        Program-major order keeps one program's chunks adjacent, so a
        serial or thread runner's memoising compiler reuses each
        (program, setting) binary across every chunk.
        """
        for program in range(self.n_programs):
            for chunk in range(self.n_chunks):
                yield ShardKey(program, chunk)

    # --------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Digest of the *logical* grid (chunking excluded).

        Two stores over the same programs/machines/settings are the same
        experiment regardless of how the machine axis is chunked, so the
        chunk size lives only in the manifest.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.program_names).encode())
        for machine in self.machines:
            digest.update(repr(machine).encode())
        for setting in self.settings:
            digest.update(repr(setting.as_indices()).encode())
        digest.update(repr(self.extended).encode())
        return digest.hexdigest()[:16]

    def shard_shapes(self, key: ShardKey) -> dict[str, tuple[int, ...]]:
        from repro.core.code_features import CODE_FEATURE_NAMES

        start, stop = self.chunk_range(key.chunk)
        chunk = stop - start
        return {
            "runtimes": (self.n_settings, chunk),
            "o3_runtimes": (chunk,),
            "counters": (chunk, len(COUNTER_NAMES)),
            "code_features": (len(CODE_FEATURE_NAMES),),
        }


@dataclass
class StoreStatus:
    """A progress snapshot of one store, for the CLI ``status`` command."""

    root: str
    grid_fingerprint: str
    n_programs: int
    n_machines: int
    n_settings: int
    chunk_machines: int
    total_shards: int
    completed_shards: int
    bytes_on_disk: int
    per_program: dict[str, tuple[int, int]]  # name -> (done, total)

    @classmethod
    def pending_for(cls, grid: "GridSpec", root: str) -> "StoreStatus":
        """The status of a store that does not exist yet: all pending.

        Lets callers report on a never-built grid without creating the
        store directory as a side effect.
        """
        return cls(
            root=root,
            grid_fingerprint=grid.fingerprint(),
            n_programs=grid.n_programs,
            n_machines=grid.n_machines,
            n_settings=grid.n_settings,
            chunk_machines=grid.chunk_machines,
            total_shards=grid.n_shards,
            completed_shards=0,
            bytes_on_disk=0,
            per_program={name: (0, grid.n_chunks) for name in grid.program_names},
        )

    @property
    def complete(self) -> bool:
        return self.completed_shards == self.total_shards

    @property
    def fraction(self) -> float:
        # An empty grid (defensive: GridSpec forbids it, but a hand-rolled
        # status may not) counts as complete rather than dividing by zero.
        if self.total_shards == 0:
            return 1.0
        return self.completed_shards / self.total_shards

    def render(self) -> str:
        lines = [
            f"experiment store {self.root}",
            f"  grid: {self.n_programs} programs x {self.n_machines} machines "
            f"x {self.n_settings} settings "
            f"(chunk {self.chunk_machines}, fingerprint {self.grid_fingerprint})",
        ]
        if self.completed_shards == 0:
            # "0/N complete (0%)" reads like a half-broken build; say
            # what actually happened — the grid is pinned, nothing ran.
            lines.append(
                f"  shards: grid pinned, no shards built "
                f"(0/{self.total_shards})"
            )
        else:
            lines.append(
                f"  shards: {self.completed_shards}/{self.total_shards} "
                f"complete ({self.fraction:.0%}), "
                f"{self.bytes_on_disk / 1024:.0f} KiB on disk"
            )
        pending = [
            f"{name} {done}/{total}"
            for name, (done, total) in self.per_program.items()
            if done < total
        ]
        if pending:
            lines.append(f"  pending: {', '.join(pending)}")
        else:
            lines.append("  dataset complete — ready to assemble")
        return "\n".join(lines)


class ExperimentStore:
    """Sharded on-disk (or in-memory) results for one experiment grid.

    Completed shards are never rewritten; an interrupted run resumes by
    skipping every key in :meth:`completed_keys` and computing only
    :meth:`pending_keys`.  Concurrent writers are safe: shards land via
    atomic rename and any two writers of the same key produce identical
    bytes, so the race is benign.
    """

    MANIFEST_NAME = "manifest.json"
    SHARD_DIR = "shards"

    def __init__(self, grid: GridSpec, root: str | Path | None = None):
        self.root = Path(root) if root is not None else None
        self._memory: dict[ShardKey, ShardArrays] = {}
        #: Shards this instance has confirmed complete.  Completion is
        #: monotonic (shards are never deleted), so a positive answer can
        #: be cached forever, sparing repeated sidecar reads during the
        #: pending/status/write scans of a long run.
        self._known_complete: set[ShardKey] = set()
        if self.root is not None:
            manifest = self._read_manifest()
            if manifest is None:
                self.grid = grid
                self._write_manifest()
            else:
                if manifest["grid_fingerprint"] != grid.fingerprint():
                    raise StoreError(
                        f"store at {self.root} holds a different grid "
                        f"({manifest['grid_fingerprint']} != {grid.fingerprint()})"
                    )
                # Adopt the manifest's chunking: shard boundaries were
                # fixed when the store was created.
                self.grid = dataclasses.replace(
                    grid, chunk_machines=int(manifest["chunk_machines"])
                )
            self._sweep_stale_tmp()
        else:
            self.grid = grid

    # ------------------------------------------------------------- manifest
    @classmethod
    def open(cls, root: str | Path) -> "ExperimentStore":
        """Open an existing store from its manifest alone."""
        root = Path(root)
        manifest_path = root / cls.MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no store manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        grid = GridSpec(
            program_names=tuple(manifest["program_names"]),
            machines=tuple(
                MicroArch(**fields) for fields in manifest["machines"]
            ),
            settings=tuple(
                FlagSetting.from_indices(indices)
                for indices in manifest["settings"]
            ),
            extended=bool(manifest["extended"]),
            chunk_machines=int(manifest["chunk_machines"]),
            metadata=dict(manifest["metadata"]),
        )
        return cls(grid, root)

    def _read_manifest(self) -> dict | None:
        path = self.root / self.MANIFEST_NAME
        if not path.exists():
            return None
        manifest = json.loads(path.read_text())
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(
                f"store at {self.root} uses format "
                f"{manifest.get('format')!r}, expected {STORE_FORMAT}"
            )
        return manifest

    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / self.SHARD_DIR).mkdir(exist_ok=True)
        manifest = {
            "format": STORE_FORMAT,
            "grid_fingerprint": self.grid.fingerprint(),
            "program_names": list(self.grid.program_names),
            "machines": [
                dataclasses.asdict(machine) for machine in self.grid.machines
            ],
            "settings": [
                list(setting.as_indices()) for setting in self.grid.settings
            ],
            "extended": self.grid.extended,
            "chunk_machines": self.grid.chunk_machines,
            "metadata": self.grid.metadata,
        }
        atomic_write_text(
            self.root / self.MANIFEST_NAME,
            json.dumps(manifest, indent=1),
            site="store.manifest",
            fsync=True,
        )

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by killed writers.

        Only files past :data:`STALE_TMP_SECONDS` go — a concurrent
        writer's live temp file must not be yanked mid-write.
        """
        shard_dir = self.root / self.SHARD_DIR
        if not shard_dir.exists():
            return
        cutoff = time.time() - STALE_TMP_SECONDS
        for path in shard_dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass  # already gone, or not ours to remove

    # --------------------------------------------------------------- shards
    def _shard_paths(self, key: ShardKey) -> tuple[Path, Path]:
        base = self.root / self.SHARD_DIR / key.stem()
        return base.with_suffix(".npz"), base.with_suffix(".json")

    def has_shard(self, key: ShardKey) -> bool:
        if self.root is None:
            return key in self._memory
        if key in self._known_complete:
            return True
        npz_path, sidecar_path = self._shard_paths(key)
        try:
            # A zero-byte array file is the torn tail an out-of-space or
            # killed writer leaves behind; treat it — like any unreadable
            # sidecar — as pending so resume recomputes the shard instead
            # of tripping over it at read time.
            if npz_path.stat().st_size == 0:
                return False
        except OSError:
            return False
        if not sidecar_path.exists():
            return False
        try:
            sidecar = json.loads(sidecar_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        if sidecar.get("grid_fingerprint") != self.grid.fingerprint():
            return False
        self._known_complete.add(key)
        return True

    def completed_keys(self) -> list[ShardKey]:
        return [key for key in self.grid.shard_keys() if self.has_shard(key)]

    def pending_keys(self) -> list[ShardKey]:
        return [key for key in self.grid.shard_keys() if not self.has_shard(key)]

    def is_complete(self) -> bool:
        return not self.pending_keys()

    def write_shard(self, key: ShardKey, arrays: ShardArrays) -> None:
        """Checkpoint one computed shard (atomic; never rewrites)."""
        # Copies, not views: ascontiguousarray would pass a caller's
        # already-contiguous array (or slice) through unchanged, and an
        # in-memory store holding views could be mutated from outside,
        # silently changing its digests.
        arrays = tuple(
            np.array(array, dtype=float, order="C", copy=True)
            for array in arrays
        )
        by_name = dict(zip(_SHARD_ARRAY_NAMES, arrays))
        for name, shape in self.grid.shard_shapes(key).items():
            if by_name[name].shape != shape:
                raise ValueError(
                    f"{key.stem()}: {name} shape {by_name[name].shape} != {shape}"
                )
        if self.has_shard(key):
            return  # append-only: first complete write wins
        if self.root is None:
            # Freeze the stored copies so a reader holding the returned
            # arrays cannot mutate the store from outside.
            for array in arrays:
                array.setflags(write=False)
            self._memory[key] = arrays
            return
        npz_path, sidecar_path = self._shard_paths(key)
        buffer = io.BytesIO()
        np.savez(buffer, **dict(zip(_SHARD_ARRAY_NAMES, arrays)))
        atomic_write_bytes(
            npz_path,
            buffer.getvalue(),
            site="store.shard.npz",
            fsync=True,
            retries=DEFAULT_RETRY,
        )
        start, stop = self.grid.chunk_range(key.chunk)
        sidecar = {
            "format": STORE_FORMAT,
            "program": key.program,
            "chunk": key.chunk,
            "machine_start": start,
            "machine_stop": stop,
            "grid_fingerprint": self.grid.fingerprint(),
            "fingerprint": shard_fingerprint(arrays),
        }
        atomic_write_text(
            sidecar_path,
            json.dumps(sidecar),
            site="store.shard.sidecar",
            fsync=True,
            retries=DEFAULT_RETRY,
        )
        self._known_complete.add(key)

    def read_shard(self, key: ShardKey, verify: bool = True) -> ShardArrays:
        """Load one shard, verifying its content digest by default."""
        if self.root is None:
            try:
                return self._memory[key]
            except KeyError:
                raise StoreError(f"shard {key.stem()} not in store") from None
        npz_path, sidecar_path = self._shard_paths(key)
        if not self.has_shard(key):
            raise StoreError(f"shard {key.stem()} not in store")
        try:
            with np.load(npz_path) as handle:
                arrays = tuple(handle[name] for name in _SHARD_ARRAY_NAMES)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as error:
            raise StoreError(
                f"shard {key.stem()} is torn or corrupt ({error}); "
                f"quarantine with fsck and resume"
            ) from error
        if verify:
            sidecar = json.loads(sidecar_path.read_text())
            digest = shard_fingerprint(arrays)
            if digest != sidecar["fingerprint"]:
                raise StoreError(
                    f"shard {key.stem()} is corrupt: digest {digest} != "
                    f"recorded {sidecar['fingerprint']}"
                )
        return arrays

    def shard_digest(self, key: ShardKey) -> str:
        """The recorded (disk) or computed (memory) content digest."""
        if self.root is None:
            return shard_fingerprint(self._memory[key])
        _, sidecar_path = self._shard_paths(key)
        return json.loads(sidecar_path.read_text())["fingerprint"]

    # ------------------------------------------------------------- assembly
    def assemble(self) -> TrainingSet:
        """Concatenate every shard into the full :class:`TrainingSet`.

        Shards are placed by their manifest coordinates, so assembly
        order — and therefore the result — is independent of the order
        the shards were computed in.
        """
        pending = self.pending_keys()
        if pending:
            raise StoreError(
                f"store incomplete: {len(pending)}/{self.grid.n_shards} "
                f"shards missing (first: {pending[0].stem()})"
            )
        grid = self.grid
        from repro.core.code_features import CODE_FEATURE_NAMES

        P, S, M = grid.n_programs, grid.n_settings, grid.n_machines
        runtimes = np.empty((P, S, M), dtype=float)
        o3_runtimes = np.empty((P, M), dtype=float)
        counters = np.empty((P, M, len(COUNTER_NAMES)), dtype=float)
        code_features = np.empty((P, len(CODE_FEATURE_NAMES)), dtype=float)
        for key in grid.shard_keys():
            start, stop = grid.chunk_range(key.chunk)
            shard_runs, shard_o3, shard_counters, shard_code = self.read_shard(key)
            p = key.program
            runtimes[p, :, start:stop] = shard_runs
            o3_runtimes[p, start:stop] = shard_o3
            counters[p, start:stop, :] = shard_counters
            if key.chunk == 0:
                code_features[p, :] = shard_code
        return TrainingSet(
            program_names=list(grid.program_names),
            machines=list(grid.machines),
            settings=list(grid.settings),
            runtimes=runtimes,
            o3_runtimes=o3_runtimes,
            counters=counters,
            extended=grid.extended,
            metadata=dict(grid.metadata),
            code_features=code_features,
        )

    def adopt(self, training: TrainingSet) -> int:
        """Import an already-assembled training set as shards.

        Slices a complete :class:`TrainingSet` over this grid into the
        store's pending shards — the inverse of :meth:`assemble`, and
        bit-exact with shards computed directly (the digests match).
        Lets a store absorb a dataset produced elsewhere (another
        session's memoised build, a legacy single-file cache) instead of
        recomputing it.  Returns the number of shards written.
        """
        grid = self.grid
        if (
            training.program_names != list(grid.program_names)
            or training.machines != list(grid.machines)
            or training.settings != list(grid.settings)
            or training.extended != grid.extended
        ):
            raise StoreError("training set does not match this store's grid")
        if training.code_features is None:
            raise StoreError("cannot adopt a training set without code features")
        written = 0
        for key in self.pending_keys():
            start, stop = grid.chunk_range(key.chunk)
            p = key.program
            self.write_shard(
                key,
                (
                    training.runtimes[p, :, start:stop],
                    training.o3_runtimes[p, start:stop],
                    training.counters[p, start:stop, :],
                    training.code_features[p, :],
                ),
            )
            written += 1
        return written

    def fingerprint(self) -> str:
        """Content digest of the complete store.

        Covers the grid identity plus every shard's content digest in
        grid order — equal between any two stores holding the same
        results, however they were computed.
        """
        digest = hashlib.sha256()
        digest.update(self.grid.fingerprint().encode())
        for key in self.grid.shard_keys():
            if not self.has_shard(key):
                raise StoreError(f"cannot fingerprint: {key.stem()} missing")
            digest.update(self.shard_digest(key).encode())
        return digest.hexdigest()[:16]

    # --------------------------------------------------------------- status
    def status(self) -> StoreStatus:
        grid = self.grid
        per_program: dict[str, tuple[int, int]] = {}
        completed = 0
        for p, name in enumerate(grid.program_names):
            done = sum(
                1
                for chunk in range(grid.n_chunks)
                if self.has_shard(ShardKey(p, chunk))
            )
            per_program[name] = (done, grid.n_chunks)
            completed += done
        bytes_on_disk = 0
        if self.root is not None and (self.root / self.SHARD_DIR).exists():
            bytes_on_disk = sum(
                path.stat().st_size
                for path in (self.root / self.SHARD_DIR).iterdir()
                if path.suffix != ".tmp"
            )
        return StoreStatus(
            root=str(self.root) if self.root is not None else "<memory>",
            grid_fingerprint=grid.fingerprint(),
            n_programs=grid.n_programs,
            n_machines=grid.n_machines,
            n_settings=grid.n_settings,
            chunk_machines=grid.chunk_machines,
            total_shards=grid.n_shards,
            completed_shards=completed,
            bytes_on_disk=bytes_on_disk,
            per_program=per_program,
        )


def shard_fingerprint(arrays: Sequence[np.ndarray]) -> str:
    """Content digest of one shard's arrays (order-sensitive, bit-exact)."""
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array, dtype=float).tobytes())
    return digest.hexdigest()[:16]


# ``tmp_sibling`` and ``atomic_write_text`` moved to :mod:`repro.ioutil`
# (shared with every durable store); re-exported above for back-compat.
