"""The resumable experiment runner.

An :class:`ExperimentRunner` walks the (program × machine-chunk) shard
grid of an :class:`~repro.store.store.ExperimentStore`, computes every
pending shard through the compile-once/simulate-many hot path of
:mod:`repro.store.compute`, and checkpoints each shard to the store as
it completes.  Interrupt it anywhere — kill -9, ``max_shards`` cap,
crash — and the next call picks up exactly where it left off, skipping
every shard already on disk.

Shards fan out over the executors of :mod:`repro.parallel` (``serial``,
``thread``, ``process``).  Each shard is a pure function of the manifest
grid, so the assembled result is bit-identical whichever executor,
chunking, or interruption pattern produced it.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.parallel import (
    CLUSTER,
    RUNNER_EXECUTORS,
    resolve_jobs,
    resolve_strategy,
    run_batch_completed,
)
from repro.store.compute import compute_shard, compute_shard_task
from repro.store.store import ExperimentStore, ShardKey


class ExperimentRunner:
    """Drives a store from partial to complete, one checkpointed shard at a time.

    Args:
        store: the (possibly partially filled) store to complete.
        programs: :class:`Program` objects aligned with the grid's
            ``program_names``; resolved from the MiBench suite by name
            when omitted.
        compiler: shared memoising compiler for serial/thread execution
            (its cache makes consecutive chunks of one program reuse
            every compiled binary); process workers rebuild their own.
        jobs: worker count (1 = serial, negative = all cores).
        executor: ``auto``, ``serial``, ``thread``, ``process``, or
            ``cluster`` — the last claims shards through the shared
            lease table of :mod:`repro.cluster`, so any number of
            concurrent runner processes (this host or peers on a shared
            filesystem) drain the same store together.
        vectorize: route each shard's simulations through the
            bit-identical :func:`repro.sim.vector.simulate_many` kernel
            (default) or the scalar reference loop.
        lease_ttl: for ``cluster`` only — seconds without a heartbeat
            before this store's leases count as stale and reclaimable.
    """

    def __init__(
        self,
        store: ExperimentStore,
        programs: Sequence[Program] | None = None,
        compiler: Compiler | None = None,
        jobs: int | None = 1,
        executor: str = "auto",
        vectorize: bool = True,
        lease_ttl: float | None = None,
    ):
        if executor not in RUNNER_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {RUNNER_EXECUTORS}"
            )
        self.store = store
        self.compiler = compiler if compiler is not None else Compiler()
        self.jobs = resolve_jobs(jobs)
        self.executor = executor
        self.vectorize = vectorize
        self.lease_ttl = lease_ttl
        if programs is None:
            from repro.programs.mibench import mibench_program

            programs = [
                mibench_program(name) for name in store.grid.program_names
            ]
        if len(programs) != store.grid.n_programs:
            raise ValueError(
                f"{len(programs)} programs for "
                f"{store.grid.n_programs} grid entries"
            )
        mismatched = [
            name
            for name, program in zip(store.grid.program_names, programs)
            if program.name != name
        ]
        if mismatched:
            raise ValueError(f"program/grid name mismatch: {mismatched}")
        self.programs = list(programs)

    # ------------------------------------------------------------------ run
    def run(
        self,
        max_shards: int | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> int:
        """Compute up to ``max_shards`` pending shards; return how many.

        Every shard is checkpointed to the store the moment it
        completes, in completion order, so killing the run at any point
        loses at most the shards still in flight (one per worker).  The
        call can be aborted (or capped) anywhere and re-entered later.
        Returns 0 when the store is already complete.
        """
        if self.executor == CLUSTER:
            return self._run_cluster(max_shards, progress)
        pending = self.store.pending_keys()
        total = self.store.grid.n_shards
        already = total - len(pending)
        if max_shards is not None:
            pending = pending[: max(max_shards, 0)]
        if not pending:
            return 0

        _, strategy = resolve_strategy(self.jobs, self.executor, len(pending))
        # One settings list shared by every work item: the grid's setting
        # axis is identical across shards, so building it per item would
        # hold (and, for process pools, pickle) n_shards copies.
        settings = list(self.store.grid.settings)
        done = 0
        for index, arrays in run_batch_completed(
            self._shard_function(strategy),
            [self._work_item(key, settings, strategy) for key in pending],
            jobs=self.jobs,
            executor=strategy,
        ):
            key = pending[index]
            self.store.write_shard(key, arrays)
            done += 1
            if progress is not None:
                progress(
                    f"shard {key.stem()} done ({already + done}/{total})"
                )
        return done

    def run_to_completion(
        self, progress: Callable[[str], None] | None = None
    ):
        """Finish every pending shard and assemble the full training set."""
        self.run(progress=progress)
        return self.store.assemble()

    # ------------------------------------------------------------ internals
    def _run_cluster(
        self, max_shards: int | None, progress: Callable[[str], None] | None
    ) -> int:
        """One cluster worker's share of the build: claim, compute,
        checkpoint through the shared lease table.  Run any number of
        these concurrently against the same store root."""
        from repro.cluster import ClusterWorker, ShardQueue
        from repro.cluster.lease import DEFAULT_LEASE_TTL

        if not self.store.pending_keys():
            return 0  # complete already; leave no cluster directory behind

        worker = ClusterWorker(
            ShardQueue(self),
            lease_ttl=(
                self.lease_ttl
                if self.lease_ttl is not None
                else DEFAULT_LEASE_TTL
            ),
            max_units=max_shards,
            progress=progress,
        )
        return worker.run().units_completed

    def _work_item(self, key: ShardKey, settings, strategy: str):
        program = self.programs[key.program]
        machines = self.store.grid.chunk_of(key)
        if strategy == "process":
            return (
                program,
                machines,
                settings,
                self.compiler.space,
                self.compiler.cache_enabled,
                self.vectorize,
            )
        return (program, machines, settings)

    def _shard_function(self, strategy: str):
        if strategy == "process":
            return compute_shard_task

        # Serial/thread shards share the runner's memoising compiler.
        # Clearing it when the program changes bounds memory to roughly
        # one program's binaries over an arbitrarily large grid (the
        # program-major shard order makes same-program shards adjacent),
        # mirroring what compute_shard_task does in process workers.
        # Compiler.compile reads its cache with one atomic .get(), so a
        # mid-flight clear under the thread executor costs at most a
        # recompile, never correctness.
        lock = threading.Lock()
        state: dict = {"program": None}

        def work(item):
            program, machines, settings = item
            with lock:
                if state["program"] not in (None, program.name):
                    self.compiler.clear_cache()
                state["program"] = program.name
            return compute_shard(
                program, machines, settings, self.compiler,
                vectorize=self.vectorize,
            )

        return work
