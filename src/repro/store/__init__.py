"""repro.store — the sharded, resumable experiment store.

Paper-scale dataset generation (35 programs × 200 machines × 1000
settings — 7 million simulations) is far too expensive to redo on every
interruption, so results live in an :class:`ExperimentStore`: append-only,
content-fingerprinted shard files keyed by (program, machine-chunk), with
a manifest that pins the exact grid.  An :class:`ExperimentRunner` walks
the grid, computes pending shards through the compile-once/simulate-many
hot path (one compilation per (program, setting), simulated across a whole
machine chunk), checkpoints each shard, and skips completed shards on
restart.

The invariant everything here preserves: however a store was filled —
serial or parallel, one shot or killed-and-resumed, any chunking — the
assembled :class:`~repro.core.training.TrainingSet` is bit-identical, with
the same content fingerprint.
"""

from repro.store.compute import ShardArrays, compute_shard, compute_shard_task
from repro.store.runner import ExperimentRunner
from repro.store.store import (
    DEFAULT_CHUNK_MACHINES,
    atomic_write_text,
    ExperimentStore,
    GridSpec,
    ShardKey,
    StoreError,
    StoreStatus,
    shard_fingerprint,
)

__all__ = [
    "DEFAULT_CHUNK_MACHINES",
    "ExperimentRunner",
    "ExperimentStore",
    "GridSpec",
    "ShardArrays",
    "ShardKey",
    "StoreError",
    "StoreStatus",
    "atomic_write_text",
    "compute_shard",
    "compute_shard_task",
    "shard_fingerprint",
]
