"""The compile-once/simulate-many hot path.

The (program × machine × setting) grid has a crucial structure: the
binary produced for a (program, setting) pair is the same on every
machine, so it only needs to be compiled once and can then be simulated
across a whole chunk of machines.  Compilation (clone + 20 passes +
finalise) is an order of magnitude more expensive than one analytic
simulation, so this is the difference between ``S`` compilations per
shard and ``S × M`` — the dominant cost of dataset generation.

:func:`compute_shard` is the single implementation of that loop; both
:func:`repro.core.training.generate_training_set` (one shard spanning
every machine) and :class:`repro.store.runner.ExperimentRunner` (one
shard per machine chunk) call it, which is what keeps sharded, resumed,
and monolithic builds bit-identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compiler.flags import FlagSetting, FlagSpace, o3_setting
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.sim.analytic import simulate_analytic
from repro.sim.counters import COUNTER_NAMES
from repro.sim.vector import BinarySignature, MachineMatrix, simulate_many

#: The arrays produced for one (program, machine-chunk) shard:
#: ``runtimes[s, m]``, ``o3_runtimes[m]``, ``counters[m, k]``, and the
#: machine-independent ``code_features[j]`` of the -O3 binary.
ShardArrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def compute_shard(
    program: Program,
    machines: Sequence[MicroArch],
    settings: Sequence[FlagSetting],
    compiler: Compiler | None = None,
    vectorize: bool = True,
) -> ShardArrays:
    """One program's training slice over a chunk of machines.

    Each of the ``len(settings) + 1`` binaries (the -O3 baseline plus one
    per setting) is compiled exactly once and simulated on every machine
    in the chunk.  The function is deterministic in its inputs alone, so
    any partition of the machine axis into chunks — computed in any
    order, by any executor — concatenates back to exactly what a single
    monolithic call would produce.

    ``vectorize`` selects the :func:`repro.sim.vector.simulate_many`
    kernel: one numpy pass over the whole (binary × machine) grid
    instead of S×M scalar simulations.  The two paths are bit-identical
    (the vector kernel's contract), so the flag is purely a performance
    knob; ``False`` keeps the scalar reference loop.
    """
    from repro.core.code_features import static_code_features

    active_compiler = compiler if compiler is not None else Compiler()
    S, M = len(settings), len(machines)

    o3_binary = active_compiler.compile(program, o3_setting())
    code_features = np.asarray(static_code_features(o3_binary), dtype=float)

    if vectorize:
        binaries = [o3_binary] + [
            active_compiler.compile(program, setting) for setting in settings
        ]
        results = simulate_many(
            [BinarySignature.from_binary(binary) for binary in binaries],
            MachineMatrix.from_machines(machines),
        )
        o3_runtimes = results.seconds[0, :].copy()
        counters = results.counters[0, :, :].copy()
        runtimes = results.seconds[1:, :].copy()
        return runtimes, o3_runtimes, counters, code_features

    runtimes = np.empty((S, M), dtype=float)
    o3_runtimes = np.empty(M, dtype=float)
    counters = np.empty((M, len(COUNTER_NAMES)), dtype=float)
    for m, machine in enumerate(machines):
        result = simulate_analytic(o3_binary, machine)
        o3_runtimes[m] = result.seconds
        counters[m, :] = result.counters.vector()
    for s, setting in enumerate(settings):
        binary = active_compiler.compile(program, setting)
        for m, machine in enumerate(machines):
            runtimes[s, m] = simulate_analytic(binary, machine).seconds
    return runtimes, o3_runtimes, counters, code_features


#: Per-process compiler state for pool workers: the active compiler, its
#: configuration key (flag specs are value-hashable; the space object is
#: a fresh unpickle in every task), and the program it last compiled.
#: Keeping the compiler across tasks lets one worker reuse every
#: (program, setting) binary across the machine chunks it processes;
#: clearing its memo when the program changes bounds worker memory to a
#: single program's binaries.
_WORKER_STATE: dict = {}


def compute_shard_task(
    work: tuple[Program, Sequence[MicroArch], Sequence[FlagSetting], FlagSpace, bool],
) -> ShardArrays:
    """Picklable process-pool entry point for :func:`compute_shard`.

    The caller's compiler cannot cross the process boundary, so each
    worker keeps its own memoised compiler — results are identical to
    serial ones (compilation is deterministic) even for non-default
    compilers.  A sixth ``vectorize`` slot is optional (older callers
    ship five-tuples) and defaults to the kernel path.
    """
    program, machines, settings, space, cache = work[:5]
    vectorize = work[5] if len(work) > 5 else True
    key = (space.specs, cache)
    if _WORKER_STATE.get("key") != key:
        _WORKER_STATE["key"] = key
        _WORKER_STATE["compiler"] = Compiler(space=space, cache=cache)
        _WORKER_STATE["program"] = program.name
    elif _WORKER_STATE.get("program") != program.name:
        _WORKER_STATE["compiler"].clear_cache()
        _WORKER_STATE["program"] = program.name
    return compute_shard(
        program,
        machines,
        settings,
        _WORKER_STATE["compiler"],
        vectorize=vectorize,
    )
