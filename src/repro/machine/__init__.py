"""The microarchitecture design space (paper Table 2 and §7's extension)."""

from repro.machine.cacti import (
    CacheTiming,
    access_time_ns,
    cache_timing,
    dcache_timing,
    icache_timing,
    load_use_latency,
    read_energy_nj,
)
from repro.machine.params import (
    BASE_GRID,
    DESCRIPTOR_NAMES,
    EXTENDED_DESCRIPTOR_NAMES,
    EXTENDED_GRID,
    MicroArch,
    MicroArchSpace,
    descriptor_matrix,
)
from repro.machine.xscale import (
    xscale,
    xscale_small_both_caches,
    xscale_small_icache,
)

__all__ = [
    "BASE_GRID",
    "CacheTiming",
    "DESCRIPTOR_NAMES",
    "EXTENDED_DESCRIPTOR_NAMES",
    "EXTENDED_GRID",
    "MicroArch",
    "MicroArchSpace",
    "access_time_ns",
    "cache_timing",
    "dcache_timing",
    "descriptor_matrix",
    "icache_timing",
    "load_use_latency",
    "read_energy_nj",
    "xscale",
    "xscale_small_both_caches",
    "xscale_small_icache",
]
