"""The microarchitecture design space of the paper's Table 2.

Eight parameters, each a power of two, giving exactly 288,000 base
configurations:

====================  =====================  ==========
parameter             values                 XScale
====================  =====================  ==========
IL1 size              4K … 128K   (6)        32K
IL1 associativity     4 … 64      (5)        32
IL1 block             8 … 64      (4)        32
DL1 size              4K … 128K   (6)        32K
DL1 associativity     4 … 64      (5)        32
DL1 block             8 … 64      (4)        32
BTB entries           128 … 2048  (5)        512
BTB associativity     1 … 8       (4)        1
====================  =====================  ==========

Section 7's extended space adds core frequency (200–600 MHz; XScale 400)
and issue width (1 or 2; XScale 1), multiplying the space by 10.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, replace
from typing import Iterator, Sequence


def _powers(start: int, stop: int) -> tuple[int, ...]:
    values = []
    value = start
    while value <= stop:
        values.append(value)
        value *= 2
    return tuple(values)


#: Table 2 parameter grid (base space).
BASE_GRID: dict[str, tuple[int, ...]] = {
    "il1_size": _powers(4 * 1024, 128 * 1024),
    "il1_assoc": _powers(4, 64),
    "il1_block": _powers(8, 64),
    "dl1_size": _powers(4 * 1024, 128 * 1024),
    "dl1_assoc": _powers(4, 64),
    "dl1_block": _powers(8, 64),
    "btb_entries": _powers(128, 2048),
    "btb_assoc": _powers(1, 8),
}

#: Section 7 extension grid.
EXTENDED_GRID: dict[str, tuple[int, ...]] = {
    "frequency_mhz": (200, 300, 400, 500, 600),
    "issue_width": (1, 2),
}

#: Descriptor ordering follows the paper's Figure 9 x-axis.
DESCRIPTOR_NAMES: tuple[str, ...] = (
    "btb_size",
    "btb_assoc",
    "i_size",
    "i_assoc",
    "i_block",
    "d_size",
    "d_assoc",
    "d_block",
)

EXTENDED_DESCRIPTOR_NAMES: tuple[str, ...] = DESCRIPTOR_NAMES + (
    "frequency",
    "issue_width",
)


@dataclass(frozen=True)
class MicroArch:
    """One microarchitectural configuration (an XScale variant)."""

    il1_size: int
    il1_assoc: int
    il1_block: int
    dl1_size: int
    dl1_assoc: int
    dl1_block: int
    btb_entries: int
    btb_assoc: int
    frequency_mhz: int = 400
    issue_width: int = 1

    def __post_init__(self) -> None:
        for name, grid in BASE_GRID.items():
            if getattr(self, name) not in grid:
                raise ValueError(f"{name}={getattr(self, name)} outside Table 2 grid")
        if self.frequency_mhz not in EXTENDED_GRID["frequency_mhz"]:
            raise ValueError(f"frequency {self.frequency_mhz} MHz not in grid")
        if self.issue_width not in EXTENDED_GRID["issue_width"]:
            raise ValueError(f"issue width {self.issue_width} not in grid")

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.frequency_mhz

    @property
    def il1_sets(self) -> int:
        return max(self.il1_size // (self.il1_assoc * self.il1_block), 1)

    @property
    def dl1_sets(self) -> int:
        return max(self.dl1_size // (self.dl1_assoc * self.dl1_block), 1)

    @property
    def btb_sets(self) -> int:
        return max(self.btb_entries // self.btb_assoc, 1)

    def descriptor(self, extended: bool = False) -> tuple[float, ...]:
        """The paper's microarchitecture feature vector ``d``.

        Values are log2-scaled so that the Euclidean metric of the KNN
        combiner treats each doubling step of Table 2 equally.
        """
        base = (
            math.log2(self.btb_entries),
            math.log2(self.btb_assoc),
            math.log2(self.il1_size),
            math.log2(self.il1_assoc),
            math.log2(self.il1_block),
            math.log2(self.dl1_size),
            math.log2(self.dl1_assoc),
            math.log2(self.dl1_block),
        )
        if not extended:
            return base
        return base + (
            math.log2(self.frequency_mhz / 100.0),
            float(self.issue_width),
        )

    def label(self) -> str:
        """Compact identifier, e.g. ``i32K.32.32_d32K.32.32_b512.1_400x1``."""

        def kb(value: int) -> str:
            return f"{value // 1024}K"

        return (
            f"i{kb(self.il1_size)}.{self.il1_assoc}.{self.il1_block}"
            f"_d{kb(self.dl1_size)}.{self.dl1_assoc}.{self.dl1_block}"
            f"_b{self.btb_entries}.{self.btb_assoc}"
            f"_{self.frequency_mhz}x{self.issue_width}"
        )


class MicroArchSpace:
    """The enumerable design space, base or extended."""

    def __init__(self, extended: bool = False):
        self.extended = extended
        self._grid = dict(BASE_GRID)
        if extended:
            self._grid.update(EXTENDED_GRID)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self._grid)

    @property
    def descriptor_names(self) -> tuple[str, ...]:
        return EXTENDED_DESCRIPTOR_NAMES if self.extended else DESCRIPTOR_NAMES

    def grid(self, name: str) -> tuple[int, ...]:
        return self._grid[name]

    def size(self) -> int:
        """Total number of configurations (288,000 base; 2,880,000 ext.)."""
        total = 1
        for values in self._grid.values():
            total *= len(values)
        return total

    def enumerate(self) -> Iterator[MicroArch]:
        """Yield every configuration (use only for small sub-spaces/tests)."""
        names = list(self._grid)
        for combo in itertools.product(*(self._grid[name] for name in names)):
            yield MicroArch(**dict(zip(names, combo)))

    def sample(self, count: int, seed: int) -> list[MicroArch]:
        """Uniform random sample of distinct configurations (§4.2: 200)."""
        rng = random.Random(seed)
        names = list(self._grid)
        seen: set[MicroArch] = set()
        picks: list[MicroArch] = []
        if count > self.size():
            raise ValueError(f"cannot sample {count} from {self.size()} configs")
        while len(picks) < count:
            machine = MicroArch(
                **{name: rng.choice(self._grid[name]) for name in names}
            )
            if machine not in seen:
                seen.add(machine)
                picks.append(machine)
        return picks

    def neighbours(self, machine: MicroArch) -> Iterator[MicroArch]:
        """Configurations differing in exactly one parameter (for DSE)."""
        for name, values in self._grid.items():
            for value in values:
                if value != getattr(machine, name):
                    yield replace(machine, **{name: value})


def descriptor_matrix(machines: Sequence[MicroArch], extended: bool = False):
    """Descriptor vectors for many machines as a list of tuples."""
    return [machine.descriptor(extended) for machine in machines]
