"""A Cacti-style analytic cache timing/energy model.

The paper used Cacti 4.0 [35] to derive realistic access latencies for each
cache configuration so that "bigger cache" is not a free lunch.  This model
reproduces the behaviour that matters for the design space: access time
grows with capacity (longer word/bit lines), with associativity (wider tag
compare and way mux) and mildly with block size (wider output mux); energy
per access grows similarly.  Coefficients are calibrated so the XScale's
32K/32-way caches land at their documented latencies at 400 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.machine.params import MicroArch

#: Fixed DRAM access time plus per-byte transfer time on the memory bus.
MEMORY_LATENCY_NS = 60.0
MEMORY_NS_PER_BYTE = 1.25


@dataclass(frozen=True)
class CacheTiming:
    """Latency/energy summary of one cache configuration on one clock."""

    access_ns: float
    hit_cycles: int
    miss_penalty_cycles: int
    read_energy_nj: float


def access_time_ns(size_bytes: int, assoc: int, block_bytes: int) -> float:
    """Analytic access time: decode + wordline/bitline + way select."""
    size_term = 0.35 * math.log2(size_bytes / 4096.0) if size_bytes > 4096 else 0.0
    assoc_term = 0.20 * math.log2(assoc) if assoc > 1 else 0.0
    block_term = 0.10 * max(block_bytes / 32.0 - 1.0, 0.0)
    return 0.80 + size_term + assoc_term + block_term


@lru_cache(maxsize=None)
def read_energy_nj(size_bytes: int, assoc: int, block_bytes: int) -> float:
    """Per-read energy: dominated by bitline swing × ways read in parallel."""
    base = 0.05 * (size_bytes / 4096.0) ** 0.5
    way_factor = 0.02 * assoc
    block_factor = 0.01 * (block_bytes / 32.0)
    return base + way_factor + block_factor


@lru_cache(maxsize=None)
def cache_timing(
    size_bytes: int,
    assoc: int,
    block_bytes: int,
    frequency_mhz: int,
) -> CacheTiming:
    """Timing/energy of one configuration, memoised for the whole process.

    The argument tuple ranges over the Table 2 grid × the frequency grid
    (a few thousand combinations at most), so an unbounded cache is
    bounded in practice — and :func:`simulate_analytic` calls this twice
    per simulation, making the lookup a measurable share of the scalar
    hot path.
    """
    cycle_ns = 1000.0 / frequency_mhz
    access = access_time_ns(size_bytes, assoc, block_bytes)
    hit_cycles = max(1, math.ceil(access / cycle_ns))
    miss_ns = MEMORY_LATENCY_NS + MEMORY_NS_PER_BYTE * block_bytes
    miss_penalty = max(1, math.ceil(miss_ns / cycle_ns))
    return CacheTiming(
        access_ns=access,
        hit_cycles=hit_cycles,
        miss_penalty_cycles=miss_penalty,
        read_energy_nj=read_energy_nj(size_bytes, assoc, block_bytes),
    )


@lru_cache(maxsize=4096)
def icache_timing(machine: MicroArch) -> CacheTiming:
    return cache_timing(
        machine.il1_size, machine.il1_assoc, machine.il1_block, machine.frequency_mhz
    )


@lru_cache(maxsize=4096)
def dcache_timing(machine: MicroArch) -> CacheTiming:
    return cache_timing(
        machine.dl1_size, machine.dl1_assoc, machine.dl1_block, machine.frequency_mhz
    )


def load_use_latency(machine: MicroArch) -> int:
    """Cycles between a load's issue and a dependent instruction's issue.

    One address-generation stage plus the data-array access.  The XScale
    reference (32K/32-way at 400 MHz) lands on its documented 3 cycles;
    small fast caches reach 2, large ones at high clocks reach 4-5 — the
    size/latency trade-off the design space is meant to expose.
    """
    return 1 + dcache_timing(machine).hit_cycles
