"""The Intel XScale reference configuration (Table 2's right column)."""

from __future__ import annotations

from repro.machine.params import MicroArch


def xscale(extended: bool = False) -> MicroArch:
    """The baseline processor: 32K/32-way/32B caches, 512×1 BTB, 400 MHz,
    single issue.  ``extended`` has no effect on the values (the XScale *is*
    400 MHz / width 1) and exists for signature symmetry with the space."""
    del extended
    return MicroArch(
        il1_size=32 * 1024,
        il1_assoc=32,
        il1_block=32,
        dl1_size=32 * 1024,
        dl1_assoc=32,
        dl1_block=32,
        btb_entries=512,
        btb_assoc=1,
        frequency_mhz=400,
        issue_width=1,
    )


#: Figure 1's three illustrative microarchitectures.
def xscale_small_icache() -> MicroArch:
    """Microarchitecture B of Figure 1: XScale with a small insn cache."""
    base = xscale()
    return MicroArch(
        il1_size=4 * 1024,
        il1_assoc=base.il1_assoc,
        il1_block=base.il1_block,
        dl1_size=base.dl1_size,
        dl1_assoc=base.dl1_assoc,
        dl1_block=base.dl1_block,
        btb_entries=base.btb_entries,
        btb_assoc=base.btb_assoc,
    )


def xscale_small_both_caches() -> MicroArch:
    """Microarchitecture C of Figure 1: small insn and data caches."""
    small = xscale_small_icache()
    return MicroArch(
        il1_size=small.il1_size,
        il1_assoc=small.il1_assoc,
        il1_block=small.il1_block,
        dl1_size=4 * 1024,
        dl1_assoc=small.dl1_assoc,
        dl1_block=small.dl1_block,
        btb_entries=small.btb_entries,
        btb_assoc=small.btb_assoc,
    )
