"""The chaos harness: real workloads under randomized fault schedules.

Each chaos run drives one *scenario* — a dataset build, a protocol run,
a cluster-worker fleet, or the serving tier's job/registry flow — with a
seed-derived failpoint schedule armed, treating every surfaced fault as
a simulated kill and re-entering the workload until it either finishes
or the round budget runs out.  The schedule is then disarmed, ``fsck
--repair`` scrubs the scenario's stores, one clean resume completes the
workload, and the result's fingerprint is compared byte-for-byte against
a clean baseline computed with no faults armed.  Any divergence fails
the run: crash-anywhere byte-identity is the invariant under test, not a
best effort.

Everything is deterministic in ``(seed, scenario, run index)``: the
schedule, the per-site RNG streams, and the workloads themselves, so a
failing run replays exactly.  The harness also carries two one-shot
drills: a **crash drill** that re-runs a tiny build in a subprocess with
a ``crash`` failpoint armed through the environment (asserting the
``os._exit`` status and that resume heals the store), and a **disabled
overhead** measurement showing the cost of dormant failpoints relative
to one checkpoint write.
"""

from __future__ import annotations

import dataclasses
import os
import random
import shutil
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.core import CRASH_EXIT_STATUS, ENV_FAILPOINTS, FaultInjected, armed, registry
from repro.faults.fsck import fsck_cache

#: Scenario names, in the order ``repro-experiments chaos`` runs them.
SCENARIOS = ("build", "protocol", "cluster", "serve")

#: Fault actions a schedule may draw.  ``crash`` is excluded — it calls
#: ``os._exit`` and is drilled separately in a subprocess.
_ACTIONS = ("error", "enospc", "torn")

#: Rounds of fault-armed re-entry before the harness gives up and moves
#: to repair; generous — each round resumes from checkpoints, so even a
#: schedule that fires every round converges once its budget is spent.
MAX_ROUNDS = 8


@dataclass(frozen=True)
class ChaosRun:
    """One schedule driven over one scenario, and its verdict."""

    scenario: str
    index: int
    schedule: str
    rounds: int  # fault-armed attempts used
    faults: int  # injections actually fired
    repaired: int  # fsck findings repaired before the clean resume
    fingerprint: str
    identical: bool  # fingerprint == the scenario's clean baseline


@dataclass
class ChaosReport:
    """Everything one ``chaos`` invocation learned."""

    seed: int
    baselines: dict[str, str] = field(default_factory=dict)
    runs: list[ChaosRun] = field(default_factory=list)
    crash_drill: dict | None = None
    overhead: dict | None = None
    elapsed: float = 0.0

    @property
    def divergent(self) -> list[ChaosRun]:
        return [run for run in self.runs if not run.identical]

    @property
    def faults_injected(self) -> int:
        return sum(run.faults for run in self.runs)

    @property
    def ok(self) -> bool:
        if self.divergent:
            return False
        if self.crash_drill is not None and not self.crash_drill.get("ok"):
            return False
        if self.overhead is not None and not self.overhead.get("ok"):
            return False
        return True

    def payload(self) -> dict:
        return {
            "seed": self.seed,
            "runs": len(self.runs),
            "faults_injected": self.faults_injected,
            "identical": len(self.runs) - len(self.divergent),
            "divergent": [
                {
                    "scenario": run.scenario,
                    "index": run.index,
                    "schedule": run.schedule,
                    "fingerprint": run.fingerprint,
                }
                for run in self.divergent
            ],
            "baselines": dict(self.baselines),
            "crash_drill": self.crash_drill,
            "overhead": self.overhead,
            "elapsed_seconds": self.elapsed,
            "ok": self.ok,
        }

    def render(self) -> str:
        per_scenario: dict[str, list[ChaosRun]] = {}
        for run in self.runs:
            per_scenario.setdefault(run.scenario, []).append(run)
        lines = [
            f"chaos: {len(self.runs)} fault schedules over "
            f"{len(per_scenario)} scenarios (seed {self.seed}), "
            f"{self.faults_injected} faults injected in {self.elapsed:.1f}s"
        ]
        for name, runs in per_scenario.items():
            identical = sum(1 for run in runs if run.identical)
            faults = sum(run.faults for run in runs)
            lines.append(
                f"  {name}: {identical}/{len(runs)} byte-identical after "
                f"faults + fsck + resume ({faults} injections)"
            )
        for run in self.divergent:
            lines.append(
                f"  DIVERGED {run.scenario}#{run.index} "
                f"[{run.schedule}]: {run.fingerprint} != "
                f"{self.baselines.get(run.scenario)}"
            )
        if self.crash_drill is not None:
            status = "ok" if self.crash_drill.get("ok") else "FAILED"
            lines.append(
                f"  crash drill: exit {self.crash_drill.get('exit_status')}, "
                f"resume {'byte-identical' if self.crash_drill.get('identical') else 'DIVERGED'} "
                f"[{status}]"
            )
        if self.overhead is not None:
            lines.append(
                f"  disabled failpoints: {self.overhead['fire_ns']:.0f} ns/site-check, "
                f"{self.overhead['overhead_fraction']:.5%} of one checkpoint write "
                f"[{'ok' if self.overhead.get('ok') else 'OVER BUDGET'}]"
            )
        lines.append("chaos: PASS" if self.ok else "chaos: FAIL")
        return "\n".join(lines)


# ------------------------------------------------------------------ schedules
def generate_schedule(rng: random.Random, sites: tuple[str, ...]) -> str:
    """One randomized ``site=policy:action`` schedule over the sites."""
    chosen = rng.sample(list(sites), rng.randint(1, min(3, len(sites))))
    parts = []
    for site in chosen:
        policy = rng.choice(
            ("once", f"nth-{rng.randint(1, 4)}", f"prob-{rng.choice((0.2, 0.4))}")
        )
        parts.append(f"{site}={policy}:{rng.choice(_ACTIONS)}")
    return ",".join(parts)


def _chaos_scale():
    from repro.experiments.config import Scale

    return Scale(name="smoke", programs=("crc", "search"), n_machines=4, n_settings=6)


# ------------------------------------------------------------------ scenarios
class _Scenario:
    """One workload the harness can damage and heal.

    ``drive`` runs the workload with faults armed (exceptions are the
    caller's problem — they are simulated kills); ``finish`` completes
    it cleanly and returns the output fingerprint.  Both are resumable
    against the same ``run_dir``, which is the whole point.
    """

    name: str = ""
    sites: tuple[str, ...] = ()

    def drive(self, run_dir: Path) -> None:
        self.finish(run_dir)

    def finish(self, run_dir: Path) -> str:
        raise NotImplementedError


class BuildScenario(_Scenario):
    name = "build"
    sites = ("store.manifest", "store.shard.npz", "store.shard.sidecar")

    def __init__(self):
        from repro.experiments.dataset import grid_for_scale

        self.scale = _chaos_scale()
        self.grid = grid_for_scale(self.scale, chunk_machines=2)

    def _store(self, run_dir: Path):
        from repro.store.store import ExperimentStore

        root = run_dir / f"store-{self.scale.name}-{self.grid.fingerprint()}"
        return ExperimentStore(self.grid, root)

    def finish(self, run_dir: Path) -> str:
        from repro.store.runner import ExperimentRunner

        store = self._store(run_dir)
        ExperimentRunner(store).run()
        return store.fingerprint()


class ProtocolScenario(_Scenario):
    name = "protocol"
    sites = ("fold.manifest", "fold.shard")

    def __init__(self, training):
        from repro.evalrun.variants import protocol_fingerprint, variant_by_key
        from repro.programs.mibench import mibench_program

        self.training = training
        self.variants = [variant_by_key("base")]
        self.fingerprint = protocol_fingerprint(training, self.variants)
        self.programs = [mibench_program(name) for name in training.program_names]

    def _store(self, run_dir: Path):
        from repro.evalrun.foldstore import FoldStore

        root = run_dir / f"protocol-smoke-{self.fingerprint}"
        return FoldStore(
            self.fingerprint,
            self.variants,
            list(self.training.program_names),
            root=root,
        )

    def finish(self, run_dir: Path) -> str:
        from repro.evalrun.pipeline import EvaluationPipeline

        store = self._store(run_dir)
        EvaluationPipeline(self.training, self.programs, store).run()
        return store.fingerprint()


class ClusterScenario(BuildScenario):
    """A fleet of in-process cluster workers draining one store.

    The workers run in threads (they share the process-global failpoint
    registry, so the schedule bites all of them) with a short lease TTL
    so claims orphaned by a simulated kill are reclaimed within the
    round budget rather than waiting out the production TTL.
    """

    name = "cluster"
    sites = (
        "lease.claim",
        "lease.heartbeat",
        "lease.release",
        "store.shard.npz",
        "progress.write",
    )
    WORKERS = 2
    LEASE_TTL = 0.5

    def drive(self, run_dir: Path) -> None:
        from repro.store.runner import ExperimentRunner

        failures: list[BaseException] = []

        def worker() -> None:
            try:
                runner = ExperimentRunner(
                    self._store(run_dir),
                    executor="cluster",
                    lease_ttl=self.LEASE_TTL,
                )
                runner.run()
            except BaseException as error:  # noqa: BLE001 - simulated kill
                failures.append(error)

        threads = [
            threading.Thread(target=worker, name=f"chaos-worker-{index}")
            for index in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        # A worker that merely skipped contended/corrupt-lease units
        # exits "successfully" with work left; surface that as a kill
        # too so the harness re-enters instead of declaring the round
        # done with pending shards.
        if self._store(run_dir).pending_keys():
            raise FaultInjected("<cluster-drain-pending>", "reenter", 0)


class ServeScenario(_Scenario):
    """The serving tier's durable flow: persistent jobs + the registry.

    One persistent :class:`JobManager` runs the protocol as a background
    job (journalling every fold event), then a model is registered and
    promoted.  A fault anywhere — journal append, snapshot, registry
    stage or pointer — kills the round; the next round restarts the
    manager, which recovers the journal and re-enqueues unfinished jobs,
    exactly like a restarted server.
    """

    name = "serve"
    sites = (
        "jobs.meta",
        "jobs.append",
        "jobs.snapshot",
        "registry.model",
        "registry.pointer",
        "registry.arrays",
        "fold.shard",
    )
    JOB_TIMEOUT = 30.0

    def __init__(self, training):
        self.protocol = ProtocolScenario(training)
        self.training = training

    def _run_jobs(self, run_dir: Path) -> None:
        from repro.service.jobs import JobManager

        store = self.protocol._store(run_dir)

        def run_protocol(job) -> dict:
            from repro.evalrun.pipeline import EvaluationPipeline

            pipeline = EvaluationPipeline(
                self.training, self.protocol.programs, self.protocol._store(run_dir)
            )
            stats = pipeline.run(
                on_fold=lambda key, done, total: job.emit(
                    {"event": "fold", "fold": key.stem(), "done": done, "total": total}
                )
            )
            return {"folds_computed": stats.folds_computed}

        manager = JobManager(run_protocol, root=run_dir / "jobs")
        if manager.degraded_reasons:
            raise FaultInjected("<serve-degraded>", "reenter", 0)
        # Recovery re-enqueues unfinished jobs; submit a fresh one only
        # when nothing live remains and folds are still pending (a prior
        # round's job may have journalled a terminal "failed").
        live = [job for job in manager._jobs.values() if not job.done]
        if not live and store.pending_keys():
            live = [manager.submit({"only": "base"})]
        deadline = time.time() + self.JOB_TIMEOUT
        for job in live:
            while not job.done and time.time() < deadline:
                worker = manager._worker
                if worker is None or not worker.is_alive():
                    break  # the drain thread died to a fault: a dead server
                time.sleep(0.01)
        if store.pending_keys():
            raise FaultInjected("<serve-pending-folds>", "reenter", 0)
        manager.compact()

    def _run_registry(self, run_dir: Path) -> str:
        from repro.api.registry import ModelRegistry
        from repro.evalrun.variants import make_predictor

        registry_store = ModelRegistry(run_dir / "registry")
        if not registry_store.versions():
            predictor = make_predictor(self.protocol.variants[0], self.training).fit(
                self.training
            )
            registry_store.register(
                predictor, fingerprint=self.training.fingerprint()
            )
        version = registry_store.versions()[0]
        entry = registry_store.promote(version)
        return entry.digest

    def drive(self, run_dir: Path) -> None:
        self._run_jobs(run_dir)
        self._run_registry(run_dir)

    def finish(self, run_dir: Path) -> str:
        self._run_jobs(run_dir)
        digest = self._run_registry(run_dir)
        return f"{self.protocol._store(run_dir).fingerprint()}+{digest}"


# -------------------------------------------------------------------- harness
def _chaos_once(
    scenario: _Scenario, run_dir: Path, schedule: str, seed: int, index: int
) -> ChaosRun:
    """Damage → repair → resume → verify, for one schedule."""
    reg = registry()
    reg.reset_stats()
    rounds = 0
    with armed(schedule, seed=seed):
        while rounds < MAX_ROUNDS:
            rounds += 1
            try:
                scenario.drive(run_dir)
                break
            except Exception:  # noqa: BLE001 - any surfaced fault is a simulated kill
                continue
        faults = reg.stats()["total_injected"]
    report = fsck_cache(run_dir, repair=True)
    fingerprint = scenario.finish(run_dir)
    return ChaosRun(
        scenario=scenario.name,
        index=index,
        schedule=schedule,
        rounds=rounds,
        faults=faults,
        repaired=sum(1 for finding in report.problems if finding.repaired),
        fingerprint=fingerprint,
        identical=False,  # caller compares against the baseline
    )


def _crash_drill(work: Path, baseline: str, scenario: BuildScenario) -> dict:
    """Kill a real build with ``os._exit`` mid-checkpoint, then heal it.

    The ``crash`` action cannot run in-process (it would take the
    harness down with it), so the build runs in a subprocess with the
    schedule armed through the environment — the same path a crashing
    production worker would take.
    """
    run_dir = work / "crash-drill"
    run_dir.mkdir(parents=True, exist_ok=True)
    script = (
        "from repro.faults.chaos import BuildScenario\n"
        "from pathlib import Path\n"
        f"BuildScenario().finish(Path({str(run_dir)!r}))\n"
    )
    env = dict(os.environ)
    env[ENV_FAILPOINTS] = "store.shard.npz=nth-2:crash"
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (str(Path(__file__).resolve().parents[2]), env.get("PYTHONPATH")) if path
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    report = fsck_cache(run_dir, repair=True)
    fingerprint = scenario.finish(run_dir)
    return {
        "exit_status": proc.returncode,
        "repaired": sum(1 for finding in report.problems if finding.repaired),
        "identical": fingerprint == baseline,
        "ok": proc.returncode == CRASH_EXIT_STATUS and fingerprint == baseline,
    }


def measure_disabled_overhead(iterations: int = 200_000) -> dict:
    """Cost of a dormant failpoint site, relative to one checkpoint write.

    Acceptance is <1 % overhead with failpoints disabled: each durable
    write crosses a handful of ``fire()`` fast paths, so the comparison
    is (fire cost × sites per checkpoint) against the wall time of one
    representative shard-sized atomic write.
    """
    import tempfile

    from repro.faults.core import fire
    from repro.ioutil import atomic_write_bytes

    assert not registry().active, "measure with no schedule armed"
    start = time.perf_counter()
    for _ in range(iterations):
        fire("bench.site")
    fire_seconds = (time.perf_counter() - start) / iterations

    payload = b"x" * 8192  # a small shard's npz is a few KiB
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "bench.bin"
        writes = 50
        start = time.perf_counter()
        for _ in range(writes):
            atomic_write_bytes(target, payload, fsync=True)
        write_seconds = (time.perf_counter() - start) / writes

    sites_per_checkpoint = 4  # npz + sidecar + retry/manifest crossings
    fraction = (fire_seconds * sites_per_checkpoint) / write_seconds
    return {
        "fire_ns": fire_seconds * 1e9,
        "checkpoint_write_ms": write_seconds * 1e3,
        "sites_per_checkpoint": sites_per_checkpoint,
        "overhead_fraction": fraction,
        "budget_fraction": 0.01,
        "ok": fraction < 0.01,
    }


def run_chaos(
    scenarios: tuple[str, ...] | None = None,
    schedules: int = 5,
    seed: int = 0,
    workdir: str | Path | None = None,
    drills: bool = True,
    progress=None,
) -> ChaosReport:
    """Drive ``schedules`` randomized fault schedules over each scenario.

    Each (scenario, index) pair gets its own working directory and its
    own deterministic schedule, so any count — the acceptance bar is
    hundreds — runs embarrassingly independently and any failure replays
    from ``(seed, scenario, index)`` alone.
    """
    import tempfile

    if registry().active:
        raise RuntimeError(
            "chaos harness needs the failpoint registry to itself; disarm first"
        )
    chosen = SCENARIOS if scenarios is None else tuple(scenarios)
    unknown = set(chosen) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown chaos scenarios: {sorted(unknown)}")
    report = ChaosReport(seed=seed)
    started = time.time()
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = cleanup.name
    work = Path(workdir)
    # Faults that kill a job-manager drain thread would otherwise dump
    # a traceback per kill; that is the harness working as intended, so
    # keep the output readable.
    previous_excepthook = threading.excepthook
    threading.excepthook = lambda hook_args: None
    try:
        build = BuildScenario()
        training = None
        if any(name in chosen for name in ("protocol", "serve")) or drills:
            from repro.store.store import ExperimentStore

            # One clean dataset feeds the protocol/serve scenarios.
            training_dir = work / "training"
            store = ExperimentStore(
                build.grid, training_dir / f"store-{build.scale.name}-{build.grid.fingerprint()}"
            )
            from repro.store.runner import ExperimentRunner

            ExperimentRunner(store).run()
            training = store.assemble()
        instances: dict[str, _Scenario] = {}
        for name in chosen:
            if name == "build":
                instances[name] = build
            elif name == "protocol":
                instances[name] = ProtocolScenario(training)
            elif name == "cluster":
                instances[name] = ClusterScenario()
            elif name == "serve":
                instances[name] = ServeScenario(training)
        for name, scenario in instances.items():
            baseline_dir = work / f"{name}-baseline"
            report.baselines[name] = scenario.finish(baseline_dir)
            if progress is not None:
                progress(f"{name}: baseline {report.baselines[name]}")
            for index in range(schedules):
                rng = random.Random(f"{seed}:{name}:{index}")
                schedule = generate_schedule(rng, scenario.sites)
                run_dir = work / f"{name}-{index:04d}"
                run = _chaos_once(scenario, run_dir, schedule, seed + index, index)
                run = dataclasses.replace(
                    run, identical=run.fingerprint == report.baselines[name]
                )
                report.runs.append(run)
                if progress is not None:
                    verdict = "identical" if run.identical else "DIVERGED"
                    progress(
                        f"{name}#{index}: [{schedule}] {run.faults} faults, "
                        f"{run.rounds} rounds, {run.repaired} repaired — {verdict}"
                    )
                # Keep the workspace bounded: a healthy run's stores are
                # byte-identical to the baseline, so only failures are
                # worth keeping for inspection.
                if run.identical:
                    shutil.rmtree(run_dir, ignore_errors=True)
        if drills:
            crash_baseline = report.baselines.get("build")
            if crash_baseline is None:
                crash_baseline = build.finish(work / "build-baseline")
            report.crash_drill = _crash_drill(work, crash_baseline, build)
            if progress is not None:
                progress(f"crash drill: {report.crash_drill}")
            report.overhead = measure_disabled_overhead()
    finally:
        threading.excepthook = previous_excepthook
        report.elapsed = time.time() - started
        if cleanup is not None:
            cleanup.cleanup()
    return report
