"""repro.faults — deterministic fault injection for every durable store.

The reproduction's durability story — byte-identical kill/resume builds,
digest-chained job journals, lease-based reclaim — is only trustworthy
if the atomic-write/verify/replay machinery is exercised under the
failures it claims to survive.  This package makes those failures
injectable, deterministic, and cheap to leave compiled in:

* :mod:`repro.faults.core` — the :class:`FailpointRegistry`: named
  failpoint sites threaded through :mod:`repro.ioutil` (and therefore
  through every durable store), armed with per-site policies (fail-once,
  fail-Nth, probability-p under a seeded RNG, always) and actions
  (``torn`` half-written artifacts, ``enospc`` :class:`OSError`,
  ``error`` a plain :class:`FaultInjected`, ``crash`` via
  ``os._exit``).  Sites cost one module-global check when nothing is
  armed, so production runs pay ~nothing.
* :mod:`repro.faults.fsck` — the scrub/repair pass behind
  ``repro-experiments fsck``: classifies every artifact of every store
  (ok / torn-tail / digest-mismatch / orphaned / stale-lease / corrupt)
  and under ``--repair`` quarantines or truncates the damage so the next
  resume rebuilds exactly the broken units.
* :mod:`repro.faults.chaos` — the chaos harness behind
  ``repro-experiments chaos``: drives real dataset builds, protocol
  runs, cluster drains, and serving sessions under randomized fault
  schedules and asserts the invariants that define correctness (final
  fingerprints byte-identical to a fault-free run, zero re-simulation
  of intact units after repair).

Arm failpoints in-process (:func:`armed` / :meth:`FailpointRegistry.arm`)
or for subprocesses via ``REPRO_FAILPOINTS``, e.g.::

    REPRO_FAILPOINTS="store.shard.npz=once:torn,lease.heartbeat=prob-0.2:enospc"
"""

from repro.faults.core import (
    FailpointRegistry,
    FaultInjected,
    Injection,
    armed,
    fire,
    registry,
)

__all__ = [
    "FailpointRegistry",
    "FaultInjected",
    "Injection",
    "armed",
    "fire",
    "registry",
]
