"""Deterministic, seed-driven failpoint registry.

A *failpoint site* is a named seam in the durable-IO path (for example
``store.shard.npz`` or ``lease.heartbeat``).  Call sites consult
:func:`fire` before performing the guarded operation; when nothing is
armed this is a single module-global boolean check, so leaving the
failpoints compiled in costs effectively nothing.

Arming a site attaches a *policy* (when to fire) and an *action* (what
failure to simulate):

policies
    ``once``      fire on the first hit, then never again
    ``nth-N``     fire on the N-th hit only (1-based)
    ``prob-P``    fire each hit with probability ``P`` under a seeded RNG
    ``always``    fire on every hit

actions
    ``error``     raise :class:`FaultInjected` (a simulated kill; the
                  guarded write never happens)
    ``enospc``    raise ``OSError(errno.ENOSPC)`` — an *OSError*, so
                  bounded-retry wrappers treat it as transient
    ``torn``      the writer persists a truncated artifact before
                  raising :class:`FaultInjected` (a crash that left a
                  half-written file behind)
    ``crash``     terminate the process via ``os._exit(137)`` — only
                  meaningful for subprocess drills

Specs are strings ``"policy:action"`` (e.g. ``"once:torn"``,
``"prob-0.25:enospc"``).  Schedules can be supplied to subprocesses via
the ``REPRO_FAILPOINTS`` environment variable as comma-separated
``site=policy:action`` pairs, with ``REPRO_FAULTS_SEED`` seeding the
probabilistic policies; the schedule is installed at import time so
cluster workers spawned with the variable set inherit it.

:class:`FaultInjected` is deliberately *not* an ``OSError`` subclass:
retry wrappers must absorb simulated ENOSPC (transient tolerance) but
must never absorb a simulated crash.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

ENV_FAILPOINTS = "REPRO_FAILPOINTS"
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"

ACTIONS = ("error", "enospc", "torn", "crash")

#: Fraction of the payload a ``torn`` injection persists before raising.
TORN_KEEP_FRACTION = 0.5

#: Exit status used by the ``crash`` action, matching a SIGKILLed process.
CRASH_EXIT_STATUS = 137


class FaultError(ValueError):
    """A malformed failpoint spec or schedule."""


class FaultInjected(RuntimeError):
    """Raised by an armed failpoint to simulate a crash at that site."""

    def __init__(self, site: str, action: str, hit: int):
        super().__init__(f"fault injected at {site} (action={action}, hit #{hit})")
        self.site = site
        self.action = action
        self.hit = hit


@dataclass(frozen=True)
class Injection:
    """A single decision by an armed failpoint to fire."""

    site: str
    action: str
    hit: int
    keep_fraction: float = TORN_KEEP_FRACTION

    def raise_now(self) -> None:
        """Perform this injection's terminal action.

        ``torn`` injections are cooperative — the writer persists the
        truncated payload itself and then calls this — so from here
        every action ends in an exception or process exit.
        """
        if self.action == "enospc":
            raise OSError(errno.ENOSPC, f"fault injected at {self.site}: no space left on device")
        if self.action == "crash":
            os._exit(CRASH_EXIT_STATUS)
        raise FaultInjected(self.site, self.action, self.hit)


@dataclass
class _Arm:
    """One armed site: a parsed policy plus per-arm firing state."""

    site: str
    policy: str
    action: str
    nth: int = 1
    probability: float = 0.0
    hits: int = 0
    injected: int = 0
    rng: random.Random = field(default_factory=random.Random)

    def decide(self) -> bool:
        self.hits += 1
        if self.policy == "once":
            fire_now = self.injected == 0
        elif self.policy == "nth":
            fire_now = self.hits == self.nth
        elif self.policy == "prob":
            fire_now = self.rng.random() < self.probability
        else:  # always
            fire_now = True
        if fire_now:
            self.injected += 1
        return fire_now


def parse_spec(site: str, spec: str, seed: int = 0) -> _Arm:
    """Parse a ``"policy:action"`` spec string into an :class:`_Arm`."""
    text = spec.strip()
    if ":" not in text:
        raise FaultError(f"failpoint spec {spec!r} for {site!r} must look like 'policy:action'")
    policy_text, action = (part.strip() for part in text.split(":", 1))
    if action not in ACTIONS:
        raise FaultError(f"unknown failpoint action {action!r} (expected one of {', '.join(ACTIONS)})")
    arm = _Arm(site=site, policy=policy_text, action=action)
    if policy_text in ("once", "always"):
        pass
    elif policy_text.startswith("nth-"):
        arm.policy = "nth"
        try:
            arm.nth = int(policy_text[4:])
        except ValueError as error:
            raise FaultError(f"bad nth policy {policy_text!r} for {site!r}") from error
        if arm.nth < 1:
            raise FaultError(f"nth policy for {site!r} must be >= 1, got {arm.nth}")
    elif policy_text.startswith("prob-"):
        arm.policy = "prob"
        try:
            arm.probability = float(policy_text[5:])
        except ValueError as error:
            raise FaultError(f"bad prob policy {policy_text!r} for {site!r}") from error
        if not 0.0 <= arm.probability <= 1.0:
            raise FaultError(f"prob policy for {site!r} must be in [0, 1], got {arm.probability}")
    else:
        raise FaultError(f"unknown failpoint policy {policy_text!r} (expected once, nth-N, prob-P, always)")
    # Each arm draws from its own stream so two prob-armed sites never
    # share a sequence and the schedule stays deterministic per seed.
    arm.rng = random.Random(seed ^ zlib.crc32(site.encode("utf-8")))
    return arm


def parse_schedule(text: str, seed: int = 0) -> dict[str, _Arm]:
    """Parse a comma-separated ``site=policy:action`` schedule string."""
    arms: dict[str, _Arm] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise FaultError(f"failpoint schedule entry {chunk!r} must look like 'site=policy:action'")
        site, spec = (part.strip() for part in chunk.split("=", 1))
        if not site:
            raise FaultError(f"failpoint schedule entry {chunk!r} has an empty site name")
        arms[site] = parse_spec(site, spec, seed=seed)
    return arms


class FailpointRegistry:
    """Named failpoint sites with per-site policies and hit accounting.

    Thread-safe: cluster workers running in threads share the
    process-global registry, and the chaos harness arms/disarms around
    concurrent drains.
    """

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self._arms: dict[str, _Arm] = {}
        self._seed = seed
        self._hits: dict[str, int] = {}
        self._injected: dict[str, int] = {}
        self.active = False

    def arm(self, site: str, spec: str) -> None:
        arm = parse_spec(site, spec, seed=self._seed)
        with self._lock:
            self._arms[site] = arm
            self.active = True

    def arm_schedule(self, schedule: dict[str, str] | str) -> None:
        if isinstance(schedule, str):
            parsed = parse_schedule(schedule, seed=self._seed)
        else:
            parsed = {site: parse_spec(site, spec, seed=self._seed) for site, spec in schedule.items()}
        with self._lock:
            self._arms.update(parsed)
            self.active = bool(self._arms)

    def disarm(self, site: str | None = None) -> None:
        with self._lock:
            if site is None:
                self._arms.clear()
            else:
                self._arms.pop(site, None)
            self.active = bool(self._arms)

    def reseed(self, seed: int) -> None:
        with self._lock:
            self._seed = seed

    def fire(self, site: str) -> Injection | None:
        """Record a hit at ``site``; return an :class:`Injection` if armed to fire."""
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            arm = self._arms.get(site)
            if arm is None or not arm.decide():
                return None
            self._injected[site] = self._injected.get(site, 0) + 1
            return Injection(site=site, action=arm.action, hit=arm.hits)

    def stats(self) -> dict:
        with self._lock:
            return {
                "armed": {site: f"{arm.policy}:{arm.action}" for site, arm in self._arms.items()},
                "hits": dict(self._hits),
                "injected": dict(self._injected),
                "total_injected": sum(self._injected.values()),
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._hits.clear()
            self._injected.clear()


_REGISTRY = FailpointRegistry(seed=int(os.environ.get(ENV_FAULTS_SEED, "0") or "0"))


def registry() -> FailpointRegistry:
    """The process-global failpoint registry."""
    return _REGISTRY


def fire(site: str | None) -> Injection | None:
    """Consult the global registry at ``site``; the disabled fast path.

    ``site=None`` (an unguarded write) and an inactive registry both
    cost a couple of attribute checks — this is the only overhead the
    failpoint machinery adds to production IO.
    """
    if site is None or not _REGISTRY.active:
        return None
    return _REGISTRY.fire(site)


@contextmanager
def armed(schedule: dict[str, str] | str, seed: int | None = None) -> Iterator[FailpointRegistry]:
    """Arm a schedule on the global registry for the duration of a block."""
    if seed is not None:
        _REGISTRY.reseed(seed)
    _REGISTRY.arm_schedule(schedule)
    try:
        yield _REGISTRY
    finally:
        if isinstance(schedule, str):
            sites = [chunk.split("=", 1)[0].strip() for chunk in schedule.split(",") if chunk.strip()]
        else:
            sites = list(schedule)
        for site in sites:
            _REGISTRY.disarm(site)


def _install_from_env() -> None:
    text = os.environ.get(ENV_FAILPOINTS, "")
    if text:
        _REGISTRY.arm_schedule(text)


_install_from_env()
