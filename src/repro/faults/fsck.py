"""``repro-experiments fsck``: scrub every durable store, repair damage.

The stores already *tolerate* damage (unreadable shards read as
pending, torn journal tails replay to the verified prefix), but
tolerance is silent — a store that lost a shard to a torn write simply
recomputes it without anyone learning the disk lied.  The scrub pass
makes damage visible and repair explicit:

* every artifact of every store under the cache root is classified —
  ``ok``, ``torn-tail`` (truncated/zero-byte payloads), ``digest-mismatch``
  (bytes that parse but fail their recorded content digest),
  ``orphaned`` (sidecars without arrays, leftover temp files, pointer
  entries naming missing versions, reclaim tombstones), ``stale-lease``
  (claims whose owner stopped heartbeating), or ``corrupt`` (everything
  else unreadable);
* with ``--repair``, damaged artifacts are *quarantined* — moved into a
  ``quarantine/`` directory inside the store, never deleted — except
  where a cheaper exact repair exists (torn journal tails truncate to
  the verified prefix; orphan temp files, tombstones, and stale leases
  delete; a promotion pointer naming vanished versions rewrites from
  its own history).  After repair the next resume rebuilds exactly the
  damaged units and re-simulates nothing that was intact.

Everything is read-only unless ``repair=True``.
"""

from __future__ import annotations

import json
import re
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

QUARANTINE_DIR = "quarantine"

#: Classification statuses, roughly worst-first.
STATUSES = ("corrupt", "torn-tail", "digest-mismatch", "orphaned", "stale-lease", "ok")

_MODEL_FILE = re.compile(r"^v(\d{4,})\.json$")
_ARRAYS_FILE = re.compile(r"^v(\d{4,})\.arrays\.npz$")
_JOB_DIR = re.compile(r"^job-(\d{4,})$")
_TMP_FILE = re.compile(r"\.tmp$")


@dataclass(frozen=True)
class Finding:
    """One artifact's classification (and what repair did, if asked)."""

    path: str  # relative to the scanned root
    store: str  # which store family the artifact belongs to
    kind: str  # artifact kind: shard, sidecar, fold, model, pointer, ...
    status: str  # one of STATUSES
    detail: str = ""
    repair: str = ""  # planned/applied remedy: quarantine, truncate, delete, rewrite
    repaired: bool = False

    def describe(self) -> str:
        parts = [f"{self.status:<15s} {self.path}"]
        if self.detail:
            parts.append(f"({self.detail})")
        if self.repaired:
            parts.append(f"[repaired: {self.repair}]")
        elif self.repair:
            parts.append(f"[repair: {self.repair}]")
        return " ".join(parts)


@dataclass
class FsckReport:
    """Everything one scrub pass learned (and repaired)."""

    root: str
    repair: bool
    findings: list[Finding] = field(default_factory=list)

    @property
    def problems(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.status != "ok"]

    @property
    def unrepaired(self) -> list[Finding]:
        return [finding for finding in self.problems if not finding.repaired]

    @property
    def clean(self) -> bool:
        return not self.problems

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.status] = tally.get(finding.status, 0) + 1
        return tally

    def payload(self) -> dict:
        return {
            "root": self.root,
            "repair": self.repair,
            "counts": self.counts(),
            "problems": [
                {
                    "path": finding.path,
                    "store": finding.store,
                    "kind": finding.kind,
                    "status": finding.status,
                    "detail": finding.detail,
                    "repair": finding.repair,
                    "repaired": finding.repaired,
                }
                for finding in self.problems
            ],
        }

    def render(self, verbose: bool = False) -> str:
        counts = self.counts()
        summary = ", ".join(
            f"{counts[status]} {status}" for status in STATUSES if counts.get(status)
        )
        lines = [f"fsck {self.root}: {len(self.findings)} artifacts ({summary or 'empty'})"]
        shown = self.findings if verbose else self.problems
        for finding in shown:
            lines.append(f"  {finding.describe()}")
        if self.clean:
            lines.append("  every artifact verified clean")
        elif self.repair and not self.unrepaired:
            lines.append("  all damage repaired — resume rebuilds exactly the quarantined units")
        elif not self.repair:
            lines.append("  rerun with --repair to quarantine the damage")
        return "\n".join(lines)


class _Scrubber:
    """Shared walking/repair machinery for one scrub pass."""

    def __init__(self, root: Path, repair: bool, report: FsckReport):
        self.root = Path(root)
        self.repair = repair
        self.report = report

    def _relative(self, path: Path) -> str:
        try:
            return str(path.relative_to(self.root))
        except ValueError:
            return str(path)

    def note(
        self,
        path: Path,
        store: str,
        kind: str,
        status: str,
        detail: str = "",
        repair: str = "",
        quarantine_root: Path | None = None,
        extra_paths: tuple[Path, ...] = (),
    ) -> None:
        """Record one finding, applying its repair when asked.

        ``extra_paths`` are companion artifacts (a shard's sidecar) that
        share the primary path's fate under quarantine, so a damaged
        unit disappears *atomically enough* for resume to rebuild it.
        """
        repaired = False
        if self.repair and status != "ok" and repair:
            try:
                if repair == "quarantine":
                    root = quarantine_root or self.root
                    for target in (path, *extra_paths):
                        _quarantine(target, root)
                elif repair == "delete":
                    for target in (path, *extra_paths):
                        target.unlink(missing_ok=True)
                repaired = repair in ("quarantine", "delete")
            except OSError:
                repaired = False
        self.report.findings.append(
            Finding(
                path=self._relative(path),
                store=store,
                kind=kind,
                status=status,
                detail=detail,
                repair=repair,
                repaired=repaired,
            )
        )


def _quarantine(path: Path, store_root: Path) -> Path | None:
    """Move one damaged artifact into the store's quarantine directory."""
    if not path.exists():
        return None
    target_dir = store_root / QUARANTINE_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / path.name
    counter = 0
    while target.exists():
        counter += 1
        target = target_dir / f"{path.name}.{counter}"
    path.rename(target)
    return target


def _read_json(path: Path):
    """Parse JSON, or ``None`` when unreadable/unparseable."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


def _is_zero(path: Path) -> bool:
    try:
        return path.stat().st_size == 0
    except OSError:
        return False


# ------------------------------------------------------------ experiment store
def scrub_experiment_store(root: Path, repair: bool, report: FsckReport, ttl: float) -> None:
    from repro.store.store import STORE_FORMAT, _SHARD_ARRAY_NAMES, shard_fingerprint

    scrubber = _Scrubber(root, repair, report)
    store = f"experiment-store {root.name}"
    manifest_path = root / "manifest.json"
    manifest = _read_json(manifest_path)
    grid_fingerprint = None
    if manifest is None:
        status = "torn-tail" if _is_zero(manifest_path) else "corrupt"
        scrubber.note(
            manifest_path, store, "manifest", status,
            detail="unreadable manifest pins no grid; shards below are judged on their own digests",
            repair="quarantine",
        )
    elif manifest.get("format") != STORE_FORMAT:
        scrubber.note(
            manifest_path, store, "manifest", "corrupt",
            detail=f"format {manifest.get('format')!r} != {STORE_FORMAT}",
            repair="quarantine",
        )
    else:
        grid_fingerprint = manifest.get("grid_fingerprint")
        scrubber.note(manifest_path, store, "manifest", "ok")

    shard_dir = root / "shards"
    if shard_dir.is_dir():
        stems: dict[str, dict[str, Path]] = {}
        for path in sorted(shard_dir.iterdir()):
            if _TMP_FILE.search(path.name):
                scrubber.note(
                    path, store, "tmp", "orphaned",
                    detail="temp file from a killed or out-of-space writer",
                    repair="delete",
                )
                continue
            if path.suffix in (".npz", ".json"):
                stems.setdefault(path.stem, {})[path.suffix] = path
        for stem in sorted(stems):
            pair = stems[stem]
            npz_path, sidecar_path = pair.get(".npz"), pair.get(".json")
            if npz_path is None:
                scrubber.note(
                    sidecar_path, store, "sidecar", "orphaned",
                    detail="sidecar without its array file",
                    repair="quarantine",
                )
                continue
            if sidecar_path is None:
                scrubber.note(
                    npz_path, store, "shard", "orphaned",
                    detail="array file without its sidecar",
                    repair="quarantine",
                )
                continue
            sidecar = _read_json(sidecar_path)
            if sidecar is None or not isinstance(sidecar, dict):
                scrubber.note(
                    sidecar_path, store, "sidecar",
                    "torn-tail" if _is_zero(sidecar_path) else "corrupt",
                    detail="unreadable sidecar",
                    repair="quarantine",
                    extra_paths=(npz_path,),
                )
                continue
            if grid_fingerprint is not None and sidecar.get("grid_fingerprint") != grid_fingerprint:
                scrubber.note(
                    npz_path, store, "shard", "orphaned",
                    detail="shard from a different grid",
                    repair="quarantine",
                    extra_paths=(sidecar_path,),
                )
                continue
            if _is_zero(npz_path):
                scrubber.note(
                    npz_path, store, "shard", "torn-tail",
                    detail="zero-byte array file (out-of-space or killed writer)",
                    repair="quarantine",
                    extra_paths=(sidecar_path,),
                )
                continue
            try:
                with np.load(npz_path) as handle:
                    arrays = tuple(handle[name] for name in _SHARD_ARRAY_NAMES)
            except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
                scrubber.note(
                    npz_path, store, "shard", "torn-tail",
                    detail="array file does not load",
                    repair="quarantine",
                    extra_paths=(sidecar_path,),
                )
                continue
            if shard_fingerprint(arrays) != sidecar.get("fingerprint"):
                scrubber.note(
                    npz_path, store, "shard", "digest-mismatch",
                    detail="content digest differs from the sidecar's record",
                    repair="quarantine",
                    extra_paths=(sidecar_path,),
                )
                continue
            scrubber.note(npz_path, store, "shard", "ok")

    cluster_dir = root / "cluster"
    if cluster_dir.is_dir():
        scrub_cluster(cluster_dir, repair, report, ttl, store_root=root, store=store)


# ------------------------------------------------------------------ fold store
def scrub_fold_store(root: Path, repair: bool, report: FsckReport, ttl: float) -> None:
    from repro.evalrun.foldstore import FOLD_FORMAT, FoldRecord, fold_fingerprint

    scrubber = _Scrubber(root, repair, report)
    store = f"fold-store {root.name}"
    manifest_path = root / "manifest.json"
    manifest = _read_json(manifest_path)
    protocol_fingerprint = None
    if manifest is None:
        scrubber.note(
            manifest_path, store, "manifest",
            "torn-tail" if _is_zero(manifest_path) else "corrupt",
            detail="unreadable manifest",
            repair="quarantine",
        )
    elif manifest.get("format") != FOLD_FORMAT:
        scrubber.note(
            manifest_path, store, "manifest", "corrupt",
            detail=f"format {manifest.get('format')!r} != {FOLD_FORMAT}",
            repair="quarantine",
        )
    else:
        protocol_fingerprint = manifest.get("protocol_fingerprint")
        scrubber.note(manifest_path, store, "manifest", "ok")

    fold_dir = root / "folds"
    if fold_dir.is_dir():
        for path in sorted(fold_dir.iterdir()):
            if _TMP_FILE.search(path.name):
                scrubber.note(
                    path, store, "tmp", "orphaned",
                    detail="temp file from a killed or out-of-space writer",
                    repair="delete",
                )
                continue
            if path.suffix != ".json":
                continue
            shard = _read_json(path)
            if shard is None or not isinstance(shard, dict):
                scrubber.note(
                    path, store, "fold",
                    "torn-tail" if _is_zero(path) else "corrupt",
                    detail="unreadable fold shard",
                    repair="quarantine",
                )
                continue
            if (
                protocol_fingerprint is not None
                and shard.get("protocol_fingerprint") != protocol_fingerprint
            ):
                scrubber.note(
                    path, store, "fold", "orphaned",
                    detail="fold from a different protocol",
                    repair="quarantine",
                )
                continue
            try:
                record = FoldRecord.from_payload(shard["record"])
            except (KeyError, TypeError, ValueError, AttributeError):
                scrubber.note(
                    path, store, "fold", "corrupt",
                    detail="fold record does not parse",
                    repair="quarantine",
                )
                continue
            if fold_fingerprint(record) != shard.get("fingerprint"):
                scrubber.note(
                    path, store, "fold", "digest-mismatch",
                    detail="content digest differs from the shard's record",
                    repair="quarantine",
                )
                continue
            scrubber.note(path, store, "fold", "ok")

    cluster_dir = root / "cluster"
    if cluster_dir.is_dir():
        scrub_cluster(cluster_dir, repair, report, ttl, store_root=root, store=store)


# -------------------------------------------------------------------- registry
def scrub_registry(root: Path, repair: bool, report: FsckReport) -> None:
    from repro.api.registry import REGISTRY_FORMAT, _entry_digest

    scrubber = _Scrubber(root, repair, report)
    store = "registry"
    model_dir = root / "models"
    valid_versions: set[int] = set()
    entry_digests: dict[int, str] = {}
    if model_dir.is_dir():
        for path in sorted(model_dir.iterdir()):
            if _TMP_FILE.search(path.name):
                scrubber.note(
                    path, store, "tmp", "orphaned",
                    detail="temp file from a killed writer",
                    repair="delete",
                )
                continue
            match = _MODEL_FILE.match(path.name)
            if match is not None:
                version = int(match.group(1))
                payload = _read_json(path)
                if payload is None or not isinstance(payload, dict):
                    scrubber.note(
                        path, store, "model",
                        "torn-tail" if _is_zero(path) else "corrupt",
                        detail="unreadable model entry",
                        repair="quarantine",
                    )
                    continue
                if payload.get("format") != REGISTRY_FORMAT:
                    scrubber.note(
                        path, store, "model", "corrupt",
                        detail=f"format {payload.get('format')!r} != {REGISTRY_FORMAT}",
                        repair="quarantine",
                    )
                    continue
                try:
                    digest_ok = _entry_digest(payload) == payload.get("digest")
                except (KeyError, TypeError, ValueError):
                    digest_ok = False
                if not digest_ok:
                    scrubber.note(
                        path, store, "model", "digest-mismatch",
                        detail="content digest differs from the entry's record",
                        repair="quarantine",
                    )
                    continue
                valid_versions.add(version)
                entry_digests[version] = payload["digest"]
                scrubber.note(path, store, "model", "ok")
        # Arrays sidecars second, judged against the (now known) entries.
        for path in sorted(model_dir.iterdir()):
            match = _ARRAYS_FILE.match(path.name)
            if match is None:
                continue
            version = int(match.group(1))
            if version not in valid_versions:
                scrubber.note(
                    path, store, "arrays", "orphaned",
                    detail="ranking sidecar without a valid model entry",
                    repair="delete",
                )
                continue
            try:
                with np.load(path) as data:
                    digest = str(data["digest"])
            except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
                scrubber.note(
                    path, store, "arrays", "torn-tail",
                    detail="ranking sidecar does not load (rebuilt on demand)",
                    repair="delete",
                )
                continue
            if digest != entry_digests[version]:
                scrubber.note(
                    path, store, "arrays", "digest-mismatch",
                    detail="ranking sidecar keyed to a different entry digest",
                    repair="delete",
                )
                continue
            scrubber.note(path, store, "arrays", "ok")

    pointer_path = root / "promoted.json"
    if pointer_path.exists():
        pointer = _read_json(pointer_path)
        if pointer is None or not isinstance(pointer, dict):
            scrubber.note(
                pointer_path, store, "pointer",
                "torn-tail" if _is_zero(pointer_path) else "corrupt",
                detail="unreadable promotion pointer (quarantined, promotions reset)",
                repair="quarantine",
            )
        else:
            broken = _broken_channels(pointer, valid_versions)
            if broken:
                repaired = False
                if repair:
                    repaired = _rewrite_pointer(pointer_path, pointer, valid_versions)
                report.findings.append(
                    Finding(
                        path=scrubber._relative(pointer_path),
                        store=store,
                        kind="pointer",
                        status="orphaned",
                        detail=(
                            "channels point at missing or corrupt versions: "
                            + ", ".join(sorted(broken))
                        ),
                        repair="rewrite",
                        repaired=repaired,
                    )
                )
            else:
                scrubber.note(pointer_path, store, "pointer", "ok")


def _pointer_channels(pointer: dict) -> dict[str, dict]:
    channels = {
        name: {
            "current": state.get("current"),
            "history": [int(item) for item in state.get("history", [])],
        }
        for name, state in pointer.get("channels", {}).items()
        if isinstance(state, dict)
    }
    if "default" not in channels and (
        pointer.get("current") is not None or pointer.get("history")
    ):
        channels["default"] = {
            "current": pointer.get("current"),
            "history": [int(item) for item in pointer.get("history", [])],
        }
    return channels


def _broken_channels(pointer: dict, valid_versions: set[int]) -> list[str]:
    broken = []
    for name, state in _pointer_channels(pointer).items():
        current = state.get("current")
        if current is not None and int(current) not in valid_versions:
            broken.append(name)
        elif any(version not in valid_versions for version in state["history"]):
            broken.append(name)
    return broken


def _rewrite_pointer(path: Path, pointer: dict, valid_versions: set[int]) -> bool:
    """Drop vanished versions from the pointer: history backs current up."""
    from repro.api.registry import REGISTRY_FORMAT
    from repro.ioutil import atomic_write_text

    channels: dict[str, dict] = {}
    for name, state in _pointer_channels(pointer).items():
        history = [v for v in state["history"] if v in valid_versions]
        current = state.get("current")
        current = int(current) if current is not None else None
        if current is not None and current not in valid_versions:
            current = history.pop() if history else None
        if current is None and not history:
            continue  # nothing left to promote on this channel
        channels[name] = {"current": current, "history": history}
    default = channels.get("default", {"current": None, "history": []})
    try:
        atomic_write_text(
            path,
            json.dumps(
                {
                    "format": REGISTRY_FORMAT,
                    "current": default["current"],
                    "history": default["history"],
                    "channels": channels,
                }
            ),
            fsync=True,
        )
    except OSError:
        return False
    return True


# ------------------------------------------------------------------------ jobs
def scrub_jobs(root: Path, repair: bool, report: FsckReport) -> None:
    from repro.service.jobs import JobJournal, _chain_digest, _chain_seed

    scrubber = _Scrubber(root, repair, report)
    store = "jobs"
    for path in sorted(root.iterdir()):
        if not path.is_dir() or _JOB_DIR.match(path.name) is None:
            continue
        journal = JobJournal(path)
        meta = journal.load_meta()
        if meta is None or meta.get("id") != path.name:
            repaired = False
            if repair:
                target = _quarantine(path, root)
                repaired = target is not None
            report.findings.append(
                Finding(
                    path=scrubber._relative(path),
                    store=store,
                    kind="job",
                    status="corrupt",
                    detail="unreadable or foreign job metadata",
                    repair="quarantine",
                    repaired=repaired,
                )
            )
            continue
        scrubber.note(path / JobJournal.META_NAME, store, "meta", "ok")
        snapshot_path = path / JobJournal.SNAPSHOT_NAME
        snapshot_chain = None
        if snapshot_path.exists():
            snapshot = journal.load_snapshot(meta["id"])
            if snapshot is None:
                scrubber.note(
                    snapshot_path, store, "snapshot",
                    "torn-tail" if _is_zero(snapshot_path) else "corrupt",
                    detail="snapshot fails its chain verification",
                    repair="quarantine",
                    quarantine_root=root,
                )
            else:
                snapshot_chain = snapshot[1]
                scrubber.note(snapshot_path, store, "snapshot", "ok")
        events_path = path / JobJournal.EVENTS_NAME
        if events_path.exists():
            chain = snapshot_chain if snapshot_chain is not None else _chain_seed(meta["id"])
            verified_bytes = 0
            torn = False
            try:
                raw = events_path.read_bytes()
            except OSError:
                raw = None
            if raw is None:
                scrubber.note(
                    events_path, store, "journal", "corrupt",
                    detail="journal unreadable",
                    repair="quarantine",
                    quarantine_root=root,
                )
            else:
                offset = 0
                for line in raw.splitlines(keepends=True):
                    if not line.endswith(b"\n"):
                        torn = True
                        break
                    try:
                        record = json.loads(line)
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        torn = True
                        break
                    if not isinstance(record, dict) or not isinstance(record.get("event"), dict):
                        torn = True
                        break
                    expected = _chain_digest(chain, record["event"])
                    if record.get("chain") != expected:
                        torn = True
                        break
                    chain = expected
                    offset += len(line)
                verified_bytes = offset
                if torn or verified_bytes < len(raw):
                    repaired = False
                    if repair:
                        try:
                            if verified_bytes == 0:
                                events_path.unlink()
                            else:
                                with open(events_path, "r+b") as handle:
                                    handle.truncate(verified_bytes)
                            repaired = True
                        except OSError:
                            repaired = False
                    report.findings.append(
                        Finding(
                            path=scrubber._relative(events_path),
                            store=store,
                            kind="journal",
                            status="torn-tail",
                            detail=(
                                f"verified prefix {verified_bytes} of {len(raw)} bytes; "
                                "the tail does not replay"
                            ),
                            repair="truncate",
                            repaired=repaired,
                        )
                    )
                else:
                    scrubber.note(events_path, store, "journal", "ok")
        for stray in sorted(path.iterdir()):
            if _TMP_FILE.search(stray.name):
                scrubber.note(
                    stray, store, "tmp", "orphaned",
                    detail="temp file from a killed writer",
                    repair="delete",
                )


# --------------------------------------------------------------------- cluster
def scrub_cluster(
    cluster_root: Path,
    repair: bool,
    report: FsckReport,
    ttl: float,
    store_root: Path,
    store: str,
) -> None:
    from repro.cluster.lease import LeaseTable

    scrubber = _Scrubber(store_root, repair, report)
    lease_root = cluster_root / LeaseTable.LEASE_SUBDIR
    if lease_root.is_dir():
        table_path = lease_root / LeaseTable.META_NAME
        if table_path.exists():
            table = _read_json(table_path)
            if table is None or not isinstance(table, dict):
                scrubber.note(
                    table_path, store, "lease-table",
                    "torn-tail" if _is_zero(table_path) else "corrupt",
                    detail="unreadable lease table (recreated by the next worker)",
                    repair="quarantine",
                )
            else:
                scrubber.note(table_path, store, "lease-table", "ok")
        now = time.time()
        for path in sorted(lease_root.iterdir()):
            if path.name == LeaseTable.META_NAME:
                continue
            if path.name.endswith(".reclaim"):
                scrubber.note(
                    path, store, "lease", "orphaned",
                    detail="reclaim tombstone a steal left behind",
                    repair="delete",
                )
                continue
            if _TMP_FILE.search(path.name):
                scrubber.note(
                    path, store, "tmp", "orphaned",
                    detail="temp file from a killed writer",
                    repair="delete",
                )
                continue
            if not path.name.endswith(LeaseTable.SUFFIX):
                continue
            payload = _read_json(path)
            owner = payload.get("owner") if isinstance(payload, dict) else None
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue  # released between listing and stat
            if not isinstance(owner, str):
                scrubber.note(
                    path, store, "lease", "corrupt",
                    detail="claim file with an unreadable payload",
                    repair="delete",
                )
            elif age > ttl:
                scrubber.note(
                    path, store, "lease", "stale-lease",
                    detail=f"owner {owner} silent for {age:.0f}s (ttl {ttl:.0f}s)",
                    repair="delete",
                )
            else:
                scrubber.note(path, store, "lease", "ok")
    progress_root = cluster_root / "progress"
    if progress_root.is_dir():
        for path in sorted(progress_root.glob("*.json")):
            if _read_json(path) is None:
                scrubber.note(
                    path, store, "progress",
                    "torn-tail" if _is_zero(path) else "corrupt",
                    detail="unreadable worker progress file",
                    repair="delete",
                )
            else:
                scrubber.note(path, store, "progress", "ok")
    artifact = cluster_root / "progress.json"
    if artifact.exists() and _read_json(artifact) is None:
        scrubber.note(
            artifact, store, "progress", "corrupt",
            detail="unreadable progress artifact",
            repair="delete",
        )


# ------------------------------------------------------------------ dispatcher
def fsck_path(
    root: str | Path,
    repair: bool = False,
    ttl: float | None = None,
    report: FsckReport | None = None,
) -> FsckReport:
    """Scrub one store directory, inferring which store family it is."""
    from repro.cluster.lease import DEFAULT_LEASE_TTL

    root = Path(root)
    ttl = DEFAULT_LEASE_TTL if ttl is None else ttl
    if report is None:
        report = FsckReport(root=str(root), repair=repair)
    if not root.is_dir():
        return report
    manifest = _read_json(root / "manifest.json")
    if isinstance(manifest, dict) and "grid_fingerprint" in manifest:
        scrub_experiment_store(root, repair, report, ttl)
    elif isinstance(manifest, dict) and "protocol_fingerprint" in manifest:
        scrub_fold_store(root, repair, report, ttl)
    elif (root / "shards").is_dir():
        scrub_experiment_store(root, repair, report, ttl)
    elif (root / "folds").is_dir():
        scrub_fold_store(root, repair, report, ttl)
    elif (root / "models").is_dir() or (root / "promoted.json").exists():
        scrub_registry(root, repair, report)
    elif any(_JOB_DIR.match(path.name) for path in root.iterdir() if path.is_dir()):
        scrub_jobs(root, repair, report)
    elif (root / "manifest.json").exists():
        # A manifest that parses to neither store family: report it.
        _Scrubber(root, repair, report).note(
            root / "manifest.json", root.name, "manifest", "corrupt",
            detail="manifest belongs to no known store family",
            repair="quarantine",
        )
    return report


def fsck_cache(
    cache_directory: str | Path | None = None,
    repair: bool = False,
    ttl: float | None = None,
) -> FsckReport:
    """Scrub every store under the cache root (the CLI entry point)."""
    from repro.experiments.dataset import cache_dir

    root = cache_dir(cache_directory)
    report = FsckReport(root=str(root), repair=repair)
    if not root.is_dir():
        return report
    for child in sorted(root.iterdir()):
        if not child.is_dir() or child.name == QUARANTINE_DIR:
            continue
        sub = FsckReport(root=str(root), repair=repair)
        if child.name.startswith("store-") or child.name.startswith("protocol-"):
            fsck_path(child, repair=repair, ttl=ttl, report=sub)
        elif child.name == "registry":
            scrub_registry(child, repair, sub)
        elif child.name == "jobs":
            scrub_jobs(child, repair, sub)
        else:
            continue
        # Scrubbers report paths relative to their store root; re-anchor
        # to the cache root so findings name their store unambiguously.
        for finding in sub.findings:
            report.findings.append(
                Finding(
                    path=f"{child.name}/{finding.path}",
                    store=finding.store,
                    kind=finding.kind,
                    status=finding.status,
                    detail=finding.detail,
                    repair=finding.repair,
                    repaired=finding.repaired,
                )
            )
    return report
