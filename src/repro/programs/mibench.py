"""The 35 MiBench stand-in programs (the paper's Figure 4 x-axis).

Each spec encodes the optimisation profile of its real counterpart as
reported in the paper and the MiBench characterisation literature:

* ``rijndael_e``/``rijndael_d`` have extensively hand-unrolled source, so
  their hot bodies are large, further unrolling is futile
  (``max-unrolled-insns`` collapses the factor to 1), and on small
  instruction caches the -O3 defaults (inlining, unswitching, aggressive
  scheduling, alignment) blow the loop out of the cache — the paper's
  best-case 4.8x comes from turning them off;
* ``madplay``, ``lame``, ``say``, ``toast``/``untoast`` and ``gs`` carry
  medium-to-large hot regions that cross the small end of the I-cache
  axis once -O3 has inlined and unswitched them;
* ``search`` (stringsearch) and ``bitcnts`` have tiny predictable counted
  loops: the unrolling family dominates, as the paper's Figure 8 shows;
* ``crc``'s hot loop calls a routine that keeps a pointer in memory; only
  inlining with a larger-than-default size budget turns that traffic into
  register arithmetic (the paper's §5.3 failure analysis);
* ``ispell``, ``pgp``, ``pgp_sa`` and ``say`` are call-bound: the inlining
  parameters are their most important dimensions (Figure 8);
* ``qsort`` and ``basicmath`` are library-bound with serial dependences:
  almost nothing helps, matching their flat Figure 4 boxes;
* the tiff/susan/jpeg image codes stream large buffers through the D-cache
  with moderate code-side headroom; the audio codecs (adpcm, gsm) are
  MAC-heavy with loop-carried filter state.

Dynamic sizes follow §4.1: every program models ≥100M executed
instructions.
"""

from __future__ import annotations

from functools import lru_cache

from repro.compiler.ir import Program
from repro.programs.generator import build_program
from repro.programs.spec import (
    AccessSpec,
    CalleeSpec,
    LoopSpec,
    ProgramSpec,
    RegionSpec,
)

#: Total dynamic instructions modelled per program (paper §4.1: >= 100M).
DYN = 1.0e8

KB = 1024


def _spec(name: str, seed: int, **kwargs) -> ProgramSpec:
    return ProgramSpec(name=name, seed=seed, **kwargs)


def _stream(name: str, size: int) -> RegionSpec:
    return RegionSpec(name, size, "stream")


def _table(name: str, size: int) -> RegionSpec:
    return RegionSpec(name, size, "table")


def _chase(name: str, size: int) -> RegionSpec:
    return RegionSpec(name, size, "chase")


def _build_specs() -> dict[str, ProgramSpec]:
    specs: list[ProgramSpec] = []

    # ----------------------------------------------------------- low headroom
    specs.append(
        _spec(
            "qsort",
            seed=101,
            description="library-bound sort; compare callback dominates",
            regions=(_stream("array", 256 * KB), _table("pivots", 2 * KB)),
            callees=(
                CalleeSpec("cmp", body_insns=18, frame_traffic=2, inline_candidate=False),
            ),
            loops=(
                LoopSpec(
                    "partition",
                    trip_count=48.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=2,
                    block_insns=9,
                    accesses=(AccessSpec("array", loads_per_iter=2, stores_per_iter=1, stride=8),),
                    calls=("cmp",),
                    carried_dep_latency=1,
                    ilp=1.5,
                    predictability=0.82,
                    diamonds=1,
                    diamond_taken=0.45,
                    redundancy_local=0.02,
                    redundancy_global=0.05,
                    range_check_rate=0.03,
                    peephole_rate=0.02,
                ),
            ),
            cold_insns=160,
        )
    )

    specs.append(
        _spec(
            "rawcaudio",
            seed=102,
            description="ADPCM encode: tiny serial kernel, nothing helps",
            regions=(_stream("pcm", 512 * KB), _table("steps", 1 * KB)),
            loops=(
                LoopSpec(
                    "encode",
                    trip_count=8192.0,
                    dyn_insns=0.95 * DYN,
                    body_blocks=1,
                    block_insns=11,
                    accesses=(
                        AccessSpec("pcm", loads_per_iter=1, stride=2),
                        AccessSpec("steps", loads_per_iter=1, stride=0),
                    ),
                    carried_dep_latency=1,
                    ilp=1.2,
                    predictability=0.88,
                    diamonds=1,
                    diamond_taken=0.5,
                    peephole_rate=0.03,
                ),
            ),
            cold_insns=80,
        )
    )

    specs.append(
        _spec(
            "tiff2rgba",
            seed=103,
            description="pixel-format conversion: pure streaming, D-cache bound",
            regions=(_stream("src", 1024 * KB), _stream("dst", 2048 * KB)),
            loops=(
                LoopSpec(
                    "convert",
                    trip_count=4096.0,
                    dyn_insns=0.92 * DYN,
                    body_blocks=2,
                    block_insns=10,
                    accesses=(
                        AccessSpec("src", loads_per_iter=3, stride=3),
                        AccessSpec("dst", stores_per_iter=4, stride=4),
                    ),
                    ilp=3.0,
                    predictability=0.99,
                    redundancy_local=0.05,
                    invariant_load_rate=0.05,
                    invariant_store_rate=0.03,
                    range_check_rate=0.03,
                ),
            ),
            cold_insns=140,
        )
    )

    specs.append(
        _spec(
            "gs",
            seed=104,
            description="ghostscript: big interpreter body, huge cold code",
            regions=(_table("dict", 64 * KB), _stream("page", 512 * KB)),
            callees=(
                CalleeSpec("op_dispatch", body_insns=40, frame_traffic=3, inline_candidate=False),
                CalleeSpec("fill_span", body_insns=30, frame_traffic=2),
            ),
            loops=(
                LoopSpec(
                    "interp",
                    trip_count=96.0,
                    dyn_insns=0.55 * DYN,
                    body_blocks=6,
                    block_insns=40,
                    accesses=(AccessSpec("dict", loads_per_iter=2, stride=0),),
                    calls=("op_dispatch",),
                    ilp=1.8,
                    predictability=0.85,
                    diamonds=2,
                    diamond_taken=0.35,
                    redundancy_global=0.07,
                    partial_redundancy=0.03,
                    peephole_rate=0.03,
                    invariant_branch=True,
                ),
                LoopSpec(
                    "render",
                    trip_count=512.0,
                    dyn_insns=0.35 * DYN,
                    body_blocks=2,
                    block_insns=12,
                    accesses=(AccessSpec("page", stores_per_iter=2, stride=4),),
                    calls=("fill_span",),
                    ilp=2.5,
                    predictability=0.96,
                    invariant_alu_rate=0.06,
                    invariant_store_rate=0.3,
                ),
            ),
            cold_insns=700,
            mergeable_tails=((2, 6), (2, 6)),
            jump_chains=2,
        )
    )

    specs.append(
        _spec(
            "djpeg",
            seed=105,
            description="JPEG decode: IDCT MACs + table lookups + streams",
            regions=(
                _stream("coef", 256 * KB),
                _stream("pixels", 768 * KB),
                _table("quant", 2 * KB),
            ),
            loops=(
                LoopSpec(
                    "mcu",
                    trip_count=1024.0,
                    dyn_insns=0.04 * DYN,
                    body_blocks=2,
                    block_insns=13,
                    mix_mac=0.3,
                    mix_shift=0.15,
                    accesses=(
                        AccessSpec("coef", loads_per_iter=2, stride=8),
                        AccessSpec("quant", loads_per_iter=1, stride=0),
                        AccessSpec("pixels", stores_per_iter=2, stride=8),
                    ),
                    inner=LoopSpec(
                        "idct",
                        trip_count=24.0,
                        dyn_insns=0.88 * DYN,
                        body_blocks=1,
                        block_insns=16,
                        mix_mac=0.4,
                        accesses=(AccessSpec("coef", loads_per_iter=2, stride=4),),
                        ilp=2.2,
                        redundancy_local=0.08,
                        induction_rate=0.05,
                        peephole_rate=0.02,
                    ),
                    ilp=2.4,
                    predictability=0.97,
                    redundancy_global=0.06,
                    invariant_load_rate=0.08,
                ),
            ),
            cold_insns=260,
        )
    )

    specs.append(
        _spec(
            "patricia",
            seed=106,
            description="trie lookup: dependent pointer chases, unpredictable",
            regions=(_chase("trie", 192 * KB), _stream("keys", 64 * KB)),
            loops=(
                LoopSpec(
                    "lookup",
                    trip_count=24.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=1,
                    block_insns=9,
                    accesses=(
                        AccessSpec("trie", loads_per_iter=2, stride=16),
                        AccessSpec("keys", loads_per_iter=1, stride=4),
                    ),
                    carried_dep_latency=3,
                    ilp=1.3,
                    predictability=0.78,
                    diamonds=1,
                    diamond_taken=0.5,
                    redundancy_global=0.06,
                    invariant_load_rate=0.08,
                ),
            ),
            cold_insns=130,
        )
    )

    specs.append(
        _spec(
            "basicmath",
            seed=107,
            description="cubic/rad2deg library math: serial MAC chains",
            regions=(_stream("results", 64 * KB),),
            callees=(
                CalleeSpec("solve", body_insns=34, frame_traffic=2, inline_candidate=False),
            ),
            loops=(
                LoopSpec(
                    "mathloop",
                    trip_count=2048.0,
                    dyn_insns=0.92 * DYN,
                    body_blocks=1,
                    block_insns=12,
                    mix_mac=0.45,
                    accesses=(AccessSpec("results", stores_per_iter=1, stride=8),),
                    calls=("solve",),
                    carried_dep_latency=2,
                    ilp=1.3,
                    predictability=0.98,
                    range_check_rate=0.03,
                    redundancy_global=0.05,
                    induction_rate=0.06,
                ),
            ),
            cold_insns=110,
        )
    )

    specs.append(
        _spec(
            "lout",
            seed=108,
            description="document formatter: branchy, call-bound, big code",
            regions=(_table("symtab", 96 * KB), _stream("text", 256 * KB)),
            callees=(
                CalleeSpec("lookup_sym", body_insns=26, frame_traffic=3),
                CalleeSpec("emit_word", body_insns=30, frame_traffic=3, inline_candidate=False),
            ),
            loops=(
                LoopSpec(
                    "format",
                    trip_count=160.0,
                    dyn_insns=0.85 * DYN,
                    body_blocks=3,
                    block_insns=20,
                    accesses=(
                        AccessSpec("symtab", loads_per_iter=2, stride=0),
                        AccessSpec("text", loads_per_iter=1, stride=2),
                    ),
                    calls=("lookup_sym", "emit_word"),
                    ilp=1.9,
                    predictability=0.87,
                    diamonds=2,
                    diamond_taken=0.4,
                    redundancy_global=0.1,
                    range_check_rate=0.04,
                    partial_redundancy=0.05,
                    invariant_alu_rate=0.08,
                ),
            ),
            cold_insns=520,
            mergeable_tails=((2, 5),),
            jump_chains=1,
        )
    )

    # ------------------------------------------------------- fft / susan band
    for fft_name, fft_seed in (("fft_i", 109), ("fft", 110)):
        specs.append(
            _spec(
                fft_name,
                seed=fft_seed,
                description="radix-2 FFT: MAC-rich nested loops, strided twiddles",
                regions=(
                    _stream("signal", 256 * KB),
                    _table("twiddle", 16 * KB),
                ),
                loops=(
                    LoopSpec(
                        "stages",
                        trip_count=10.0,
                        dyn_insns=0.02 * DYN,
                        body_blocks=1,
                        block_insns=10,
                        mix_mac=0.2,
                        invariant_alu_rate=0.1,
                        inner=LoopSpec(
                            "butterfly",
                            trip_count=512.0,
                            dyn_insns=0.92 * DYN,
                            body_blocks=2,
                            block_insns=12,
                            mix_mac=0.45,
                            accesses=(
                                AccessSpec("signal", loads_per_iter=2, stores_per_iter=2, stride=16),
                                AccessSpec("twiddle", loads_per_iter=1, stride=0),
                            ),
                            ilp=2.0,
                            predictability=0.99,
                            redundancy_local=0.1,
                            invariant_load_rate=0.12,
                            induction_rate=0.08,
                            after_store_rate=0.3,
                        ),
                        ilp=2.5,
                        predictability=0.98,
                    ),
                ),
                cold_insns=150,
            )
        )

    for susan, sseed in (("susan_s", 111), ("susan_c", 112)):
        specs.append(
            _spec(
                susan,
                seed=sseed,
                description="image smoothing/corners: window streams + table",
                regions=(
                    _stream("image", 384 * KB),
                    _stream("out", 384 * KB),
                    _table("lut", 1 * KB),
                ),
                loops=(
                    LoopSpec(
                        "rows",
                        trip_count=240.0,
                        dyn_insns=0.02 * DYN,
                        body_blocks=1,
                        block_insns=8,
                        invariant_alu_rate=0.1,
                        inner=LoopSpec(
                            "cols",
                            trip_count=320.0,
                            dyn_insns=0.92 * DYN,
                            body_blocks=2,
                            block_insns=11,
                            mix_shift=0.2,
                            accesses=(
                                AccessSpec("image", loads_per_iter=3, stride=1),
                                AccessSpec("lut", loads_per_iter=1, stride=0),
                                AccessSpec("out", stores_per_iter=1, stride=1),
                            ),
                            ilp=2.3,
                            predictability=0.97,
                            redundancy_local=0.1,
                            invariant_load_rate=0.1,
                            diamonds=1,
                            diamond_taken=0.25,
                        ),
                        ilp=3.0,
                        predictability=0.99,
                    ),
                ),
                cold_insns=170,
            )
        )

    specs.append(
        _spec(
            "tiffmedian",
            seed=113,
            description="median-cut quantisation: histogram tables + streams",
            regions=(
                _stream("image", 1024 * KB),
                _table("hist", 128 * KB),
            ),
            loops=(
                LoopSpec(
                    "histogram",
                    trip_count=8192.0,
                    dyn_insns=0.55 * DYN,
                    body_blocks=1,
                    block_insns=9,
                    accesses=(
                        AccessSpec("image", loads_per_iter=2, stride=3),
                        AccessSpec("hist", loads_per_iter=1, stores_per_iter=1, stride=0),
                    ),
                    ilp=2.0,
                    predictability=0.98,
                    redundancy_local=0.06,
                    after_store_rate=0.4,
                ),
                LoopSpec(
                    "cut",
                    trip_count=256.0,
                    dyn_insns=0.35 * DYN,
                    body_blocks=2,
                    block_insns=12,
                    accesses=(AccessSpec("hist", loads_per_iter=3, stride=0),),
                    ilp=1.8,
                    predictability=0.9,
                    diamonds=1,
                    diamond_taken=0.45,
                    redundancy_global=0.07,
                ),
            ),
            cold_insns=200,
        )
    )

    # ------------------------------------------------------ call-bound band
    specs.append(
        _spec(
            "ispell",
            seed=114,
            description="spell checker: inlining-dominated dictionary walks",
            regions=(_table("dict", 256 * KB), _stream("words", 64 * KB)),
            callees=(
                CalleeSpec("hash_word", body_insns=48, frame_traffic=6),
                CalleeSpec("strcmp_", body_insns=36, frame_traffic=4),
            ),
            loops=(
                LoopSpec(
                    "check",
                    trip_count=384.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=2,
                    block_insns=16,
                    accesses=(
                        AccessSpec("dict", loads_per_iter=2, stride=0),
                        AccessSpec("words", loads_per_iter=1, stride=4),
                    ),
                    calls=("hash_word", "strcmp_"),
                    ilp=2.0,
                    predictability=0.9,
                    diamonds=1,
                    diamond_taken=0.3,
                    redundancy_global=0.06,
                    peephole_rate=0.03,
                ),
            ),
            cold_insns=300,
        )
    )

    for pgp_name, pgp_seed in (("pgp", 115), ("pgp_sa", 116)):
        specs.append(
            _spec(
                pgp_name,
                seed=pgp_seed,
                description="public-key crypto: bignum helper calls dominate",
                regions=(_stream("bignum", 32 * KB), _table("primes", 8 * KB)),
                callees=(
                    CalleeSpec("mp_mul_step", body_insns=56, frame_traffic=6),
                    CalleeSpec("mp_mod_step", body_insns=62, frame_traffic=6),
                ),
                loops=(
                    LoopSpec(
                        "modexp",
                        trip_count=1024.0,
                        dyn_insns=0.92 * DYN,
                        body_blocks=2,
                        block_insns=12,
                        mix_mac=0.3,
                        accesses=(AccessSpec("bignum", loads_per_iter=2, stores_per_iter=1, stride=4),),
                        calls=("mp_mul_step", "mp_mod_step"),
                        carried_dep_latency=2,
                        ilp=1.7,
                        predictability=0.95,
                        redundancy_global=0.08,
                        after_store_rate=0.3,
                    ),
                ),
                cold_insns=340,
            )
        )

    specs.append(
        _spec(
            "tiffdither",
            seed=117,
            description="error-diffusion dither: serial row stream",
            regions=(_stream("image", 768 * KB), _stream("errbuf", 8 * KB)),
            loops=(
                LoopSpec(
                    "dither",
                    trip_count=4096.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=2,
                    block_insns=10,
                    accesses=(
                        AccessSpec("image", loads_per_iter=1, stores_per_iter=1, stride=1),
                        AccessSpec("errbuf", loads_per_iter=2, stores_per_iter=1, stride=2),
                    ),
                    carried_dep_latency=1,
                    ilp=1.5,
                    predictability=0.93,
                    diamonds=1,
                    diamond_taken=0.5,
                    redundancy_local=0.07,
                    after_store_rate=0.35,
                    invariant_store_rate=0.25,
                ),
            ),
            cold_insns=150,
        )
    )

    for bf_name, bf_seed in (("bf_e", 118), ("bf_d", 119)):
        specs.append(
            _spec(
                bf_name,
                seed=bf_seed,
                description="blowfish: feistel rounds on 4KB S-box tables",
                regions=(
                    _table("sbox", 4 * KB),
                    _stream("data", 512 * KB),
                ),
                loops=(
                    LoopSpec(
                        "feistel",
                        trip_count=512.0,
                        dyn_insns=0.92 * DYN,
                        body_blocks=3,
                        block_insns=24,
                        mix_shift=0.25,
                        accesses=(
                            AccessSpec("sbox", loads_per_iter=4, stride=0),
                            AccessSpec("data", loads_per_iter=1, stores_per_iter=1, stride=8),
                        ),
                        carried_dep_latency=1,
                        ilp=1.8,
                        predictability=0.99,
                        redundancy_local=0.1,
                        redundancy_global=0.08,
                        invariant_load_rate=0.08,
                        after_store_rate=0.25,
                        peephole_rate=0.02,
                    ),
                ),
                cold_insns=220,
            )
        )

    specs.append(
        _spec(
            "rawdaudio",
            seed=120,
            description="ADPCM decode: tiny serial kernel",
            regions=(_stream("adpcm", 256 * KB), _table("steps", 1 * KB)),
            loops=(
                LoopSpec(
                    "decode",
                    trip_count=8192.0,
                    dyn_insns=0.95 * DYN,
                    body_blocks=1,
                    block_insns=10,
                    accesses=(
                        AccessSpec("adpcm", loads_per_iter=1, stride=1),
                        AccessSpec("steps", loads_per_iter=1, stride=0),
                    ),
                    carried_dep_latency=1,
                    ilp=1.2,
                    predictability=0.9,
                    diamonds=1,
                    diamond_taken=0.5,
                    redundancy_local=0.04,
                ),
            ),
            cold_insns=80,
        )
    )

    specs.append(
        _spec(
            "tiff2bw",
            seed=121,
            description="RGB→grey: 3-tap MAC stream",
            regions=(_stream("rgb", 1536 * KB), _stream("grey", 512 * KB)),
            loops=(
                LoopSpec(
                    "grey",
                    trip_count=16384.0,
                    dyn_insns=0.93 * DYN,
                    body_blocks=1,
                    block_insns=9,
                    mix_mac=0.35,
                    accesses=(
                        AccessSpec("rgb", loads_per_iter=3, stride=3),
                        AccessSpec("grey", stores_per_iter=1, stride=1),
                    ),
                    ilp=2.5,
                    predictability=0.995,
                    redundancy_local=0.08,
                    invariant_load_rate=0.06,
                    induction_rate=0.06,
                ),
            ),
            cold_insns=120,
        )
    )

    specs.append(
        _spec(
            "cjpeg",
            seed=122,
            description="JPEG encode: FDCT + quantisation, nested loops",
            regions=(
                _stream("pixels", 768 * KB),
                _stream("coef", 256 * KB),
                _table("quant", 2 * KB),
            ),
            loops=(
                LoopSpec(
                    "mcu",
                    trip_count=1024.0,
                    dyn_insns=0.04 * DYN,
                    body_blocks=2,
                    block_insns=12,
                    mix_mac=0.35,
                    accesses=(
                        AccessSpec("pixels", loads_per_iter=2, stride=8),
                        AccessSpec("quant", loads_per_iter=1, stride=0),
                        AccessSpec("coef", stores_per_iter=2, stride=8),
                    ),
                    inner=LoopSpec(
                        "fdct",
                        trip_count=24.0,
                        dyn_insns=0.86 * DYN,
                        body_blocks=1,
                        block_insns=15,
                        mix_mac=0.4,
                        accesses=(AccessSpec("pixels", loads_per_iter=2, stride=4),),
                        ilp=2.2,
                        redundancy_local=0.1,
                        induction_rate=0.06,
                    ),
                    ilp=2.4,
                    predictability=0.97,
                    redundancy_global=0.05,
                    invariant_load_rate=0.08,
                ),
            ),
            cold_insns=260,
        )
    )

    specs.append(
        _spec(
            "lame",
            seed=123,
            description="MP3 encode: psychoacoustic MAC storm, big hot code",
            regions=(
                _stream("pcm", 1024 * KB),
                _table("window", 16 * KB),
                _stream("mdct", 128 * KB),
            ),
            callees=(CalleeSpec("psy_step", body_insns=60, frame_traffic=4),),
            loops=(
                LoopSpec(
                    "granule",
                    trip_count=256.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=5,
                    block_insns=64,
                    mix_mac=0.4,
                    accesses=(
                        AccessSpec("pcm", loads_per_iter=3, stride=4),
                        AccessSpec("window", loads_per_iter=2, stride=0),
                        AccessSpec("mdct", stores_per_iter=2, stride=8),
                    ),
                    calls=("psy_step",),
                    ilp=2.1,
                    predictability=0.96,
                    redundancy_local=0.08,
                    redundancy_global=0.06,
                    invariant_load_rate=0.08,
                    invariant_store_rate=0.25,
                    after_store_rate=0.3,
                    invariant_branch=True,
                ),
            ),
            cold_insns=420,
        )
    )

    specs.append(
        _spec(
            "dijkstra",
            seed=124,
            description="shortest path: adjacency chases, unpredictable relax",
            regions=(_chase("graph", 256 * KB), _stream("dist", 64 * KB)),
            loops=(
                LoopSpec(
                    "relax",
                    trip_count=100.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=2,
                    block_insns=10,
                    accesses=(
                        AccessSpec("graph", loads_per_iter=2, stride=12),
                        AccessSpec("dist", loads_per_iter=1, stores_per_iter=1, stride=4),
                    ),
                    carried_dep_latency=3,
                    ilp=1.4,
                    predictability=0.8,
                    diamonds=1,
                    diamond_taken=0.4,
                    redundancy_global=0.06,
                    invariant_load_rate=0.08,
                ),
            ),
            cold_insns=140,
        )
    )

    specs.append(
        _spec(
            "susan_e",
            seed=125,
            description="edge detection: window sums, unroll-friendly",
            regions=(
                _stream("image", 384 * KB),
                _stream("edges", 384 * KB),
                _table("lut", 1 * KB),
            ),
            loops=(
                LoopSpec(
                    "window",
                    trip_count=2048.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=1,
                    block_insns=8,
                    mix_shift=0.15,
                    accesses=(
                        AccessSpec("image", loads_per_iter=2, stride=1),
                        AccessSpec("lut", loads_per_iter=1, stride=0),
                        AccessSpec("edges", stores_per_iter=1, stride=1),
                    ),
                    ilp=2.8,
                    predictability=0.99,
                    redundancy_local=0.12,
                    invariant_load_rate=0.1,
                ),
            ),
            cold_insns=160,
        )
    )

    for gsm_name, gsm_seed, extra_block in (("toast", 126, 0), ("untoast", 128, 1)):
        specs.append(
            _spec(
                gsm_name,
                seed=gsm_seed,
                description="GSM codec: LPC filter MACs with carried state",
                regions=(
                    _stream("speech", 512 * KB),
                    _table("lpc", 4 * KB),
                ),
                callees=(CalleeSpec("filter_seg", body_insns=64, frame_traffic=5),),
                loops=(
                    LoopSpec(
                        "frame",
                        trip_count=1024.0,
                        dyn_insns=0.9 * DYN,
                        body_blocks=6 + extra_block,
                        block_insns=56,
                        mix_mac=0.45,
                        accesses=(
                            AccessSpec("speech", loads_per_iter=2, stores_per_iter=1, stride=2),
                            AccessSpec("lpc", loads_per_iter=1, stride=0),
                        ),
                        calls=("filter_seg",),
                        carried_dep_latency=2,
                        ilp=1.8,
                        predictability=0.97,
                        redundancy_local=0.1,
                        redundancy_global=0.07,
                        invariant_load_rate=0.08,
                        after_store_rate=0.3,
                        invariant_store_rate=0.2,
                        invariant_branch=True,
                    ),
                ),
                cold_insns=240,
            )
        )

    specs.append(
        _spec(
            "madplay",
            seed=127,
            description="MPEG audio decode: big subband body, unswitch+inline prone",
            regions=(
                _stream("bitstream", 512 * KB),
                _table("subband", 16 * KB),
                _stream("pcm_out", 512 * KB),
            ),
            callees=(
                CalleeSpec("synth_step", body_insns=88, frame_traffic=4),
                CalleeSpec("dequant", body_insns=40, frame_traffic=3),
            ),
            loops=(
                LoopSpec(
                    "subband",
                    trip_count=512.0,
                    dyn_insns=0.92 * DYN,
                    body_blocks=6,
                    block_insns=64,
                    mix_mac=0.4,
                    mix_shift=0.15,
                    accesses=(
                        AccessSpec("bitstream", loads_per_iter=2, stride=4),
                        AccessSpec("subband", loads_per_iter=2, stride=0),
                        AccessSpec("pcm_out", stores_per_iter=2, stride=4),
                    ),
                    calls=("synth_step", "dequant"),
                    ilp=2.2,
                    predictability=0.97,
                    redundancy_local=0.08,
                    redundancy_global=0.08,
                    invariant_load_rate=0.06,
                    invariant_store_rate=0.25,
                    after_store_rate=0.3,
                    invariant_branch=True,
                ),
            ),
            cold_insns=380,
        )
    )

    specs.append(
        _spec(
            "sha",
            seed=129,
            description="SHA-1: serial hash feedback, medium unrolled rounds",
            regions=(_stream("message", 512 * KB), _table("k", 1 * KB)),
            loops=(
                LoopSpec(
                    "rounds",
                    trip_count=4096.0,
                    dyn_insns=0.93 * DYN,
                    body_blocks=2,
                    block_insns=14,
                    mix_shift=0.3,
                    accesses=(
                        AccessSpec("message", loads_per_iter=1, stride=4),
                        AccessSpec("k", loads_per_iter=1, stride=0),
                    ),
                    carried_dep_latency=1,
                    ilp=1.6,
                    predictability=0.995,
                    redundancy_local=0.12,
                    invariant_load_rate=0.1,
                ),
            ),
            cold_insns=140,
        )
    )

    specs.append(
        _spec(
            "bitcnts",
            seed=130,
            description="bit counting: tiny counted loops, unroll heaven",
            regions=(_table("nibble_lut", 256), _stream("words", 128 * KB)),
            loops=(
                LoopSpec(
                    "count",
                    trip_count=65536.0,
                    dyn_insns=0.95 * DYN,
                    body_blocks=1,
                    block_insns=4,
                    mix_shift=0.35,
                    accesses=(
                        AccessSpec("words", loads_per_iter=1, stride=4),
                        AccessSpec("nibble_lut", loads_per_iter=1, stride=0),
                    ),
                    ilp=2.5,
                    predictability=0.999,
                    redundancy_local=0.1,
                    invariant_load_rate=0.08,
                ),
            ),
            cold_insns=90,
        )
    )

    specs.append(
        _spec(
            "say",
            seed=131,
            description="speech synthesis: phoneme pipeline of helper calls",
            regions=(
                _table("phoneme", 64 * KB),
                _stream("audio", 512 * KB),
            ),
            callees=(
                CalleeSpec("rules_step", body_insns=52, frame_traffic=6),
                CalleeSpec("klatt_step", body_insns=40, frame_traffic=6),
                CalleeSpec("out_sample", body_insns=12, frame_traffic=2, sibling_target="klatt_step"),
            ),
            loops=(
                LoopSpec(
                    "synth",
                    trip_count=768.0,
                    dyn_insns=0.9 * DYN,
                    body_blocks=5,
                    block_insns=60,
                    mix_mac=0.3,
                    accesses=(
                        AccessSpec("phoneme", loads_per_iter=2, stride=0),
                        AccessSpec("audio", stores_per_iter=1, stride=2),
                    ),
                    calls=("rules_step", "out_sample"),
                    ilp=1.9,
                    predictability=0.92,
                    diamonds=1,
                    diamond_taken=0.35,
                    redundancy_global=0.07,
                    invariant_branch=True,
                    peephole_rate=0.03,
                ),
            ),
            cold_insns=320,
        )
    )

    for rijndael, rseed, rblocks in (("rijndael_d", 132, 9), ("rijndael_e", 134, 10)):
        specs.append(
            _spec(
                rijndael,
                seed=rseed,
                description="AES with hand-unrolled rounds: I-cache cliff at -O3",
                regions=(
                    _table("sbox", 10 * KB),
                    _stream("blocks", 512 * KB),
                ),
                callees=(
                    CalleeSpec("mix_columns", body_insns=80, frame_traffic=3),
                    CalleeSpec("key_step", body_insns=72, frame_traffic=3),
                ),
                loops=(
                    LoopSpec(
                        "rounds",
                        trip_count=64.0,
                        dyn_insns=0.93 * DYN,
                        body_blocks=rblocks,
                        block_insns=56,
                        mix_shift=0.25,
                        accesses=(
                            AccessSpec("sbox", loads_per_iter=12, stride=0),
                            AccessSpec("blocks", loads_per_iter=4, stores_per_iter=4, stride=16),
                        ),
                        calls=("mix_columns", "key_step"),
                        ilp=2.6,
                        predictability=0.99,
                        redundancy_local=0.1,
                        redundancy_global=0.1,
                        invariant_load_rate=0.06,
                        after_store_rate=0.25,
                        invariant_branch=True,
                    ),
                ),
                cold_insns=300,
            )
        )

    specs.append(
        _spec(
            "crc",
            seed=133,
            description="CRC32: helper keeps the pointer in memory; only "
            "large-budget inlining turns it into register arithmetic",
            regions=(_table("crctab", 1 * KB), _stream("buffer", 1024 * KB)),
            callees=(CalleeSpec("crc_update", body_insns=96, frame_traffic=16),),
            loops=(
                LoopSpec(
                    "bytes",
                    trip_count=16384.0,
                    dyn_insns=0.94 * DYN,
                    body_blocks=1,
                    block_insns=6,
                    accesses=(
                        AccessSpec("buffer", loads_per_iter=1, stride=1),
                        AccessSpec("crctab", loads_per_iter=1, stride=0),
                    ),
                    calls=("crc_update",),
                    carried_dep_latency=1,
                    ilp=1.5,
                    predictability=0.999,
                    redundancy_local=0.06,
                ),
            ),
            cold_insns=100,
        )
    )

    specs.append(
        _spec(
            "search",
            seed=135,
            description="string search: tiny counted loops; the unrolling "
            "family is everything (paper Fig. 8)",
            regions=(_stream("text", 512 * KB), _table("shift", 1 * KB)),
            loops=(
                LoopSpec(
                    "scan",
                    trip_count=8192.0,
                    dyn_insns=0.94 * DYN,
                    body_blocks=1,
                    block_insns=3,
                    accesses=(
                        AccessSpec("text", loads_per_iter=1, stride=1),
                        AccessSpec("shift", loads_per_iter=1, stride=0),
                    ),
                    ilp=1.6,
                    predictability=0.99,
                    redundancy_local=0.2,
                    invariant_load_rate=0.15,
                ),
            ),
            cold_insns=90,
        )
    )

    by_name = {spec.name: spec for spec in specs}
    assert len(by_name) == len(specs), "duplicate program names"
    return by_name


_SPECS = _build_specs()

#: Figure 4 x-axis order.
MIBENCH_ORDER: tuple[str, ...] = (
    "qsort",
    "rawcaudio",
    "tiff2rgba",
    "gs",
    "djpeg",
    "patricia",
    "basicmath",
    "lout",
    "fft_i",
    "fft",
    "susan_s",
    "susan_c",
    "tiffmedian",
    "ispell",
    "pgp",
    "tiffdither",
    "bf_e",
    "bf_d",
    "rawdaudio",
    "pgp_sa",
    "tiff2bw",
    "cjpeg",
    "lame",
    "dijkstra",
    "susan_e",
    "toast",
    "madplay",
    "untoast",
    "sha",
    "bitcnts",
    "say",
    "rijndael_d",
    "crc",
    "rijndael_e",
    "search",
)


def mibench_names() -> tuple[str, ...]:
    """All 35 program names in the paper's Figure 4 order."""
    return MIBENCH_ORDER


def mibench_spec(name: str) -> ProgramSpec:
    """The spec for one benchmark."""
    return _SPECS[name]


@lru_cache(maxsize=None)
def mibench_program(name: str) -> Program:
    """Build (and cache) the IR for one benchmark."""
    return build_program(_SPECS[name])


def mibench_suite(names: tuple[str, ...] | None = None) -> list[Program]:
    """Build the full suite, or a subset, in Figure 4 order."""
    chosen = names if names is not None else MIBENCH_ORDER
    return [mibench_program(name) for name in chosen]
