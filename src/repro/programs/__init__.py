"""The MiBench stand-in: synthetic embedded benchmarks (paper §4.1)."""

from repro.programs.generator import ProgramBuilder, build_program
from repro.programs.mibench import (
    DYN,
    MIBENCH_ORDER,
    mibench_names,
    mibench_program,
    mibench_spec,
    mibench_suite,
)
from repro.programs.spec import (
    AccessSpec,
    CalleeSpec,
    LoopSpec,
    ProgramSpec,
    RegionSpec,
)

__all__ = [
    "AccessSpec",
    "CalleeSpec",
    "DYN",
    "LoopSpec",
    "MIBENCH_ORDER",
    "ProgramBuilder",
    "ProgramSpec",
    "RegionSpec",
    "build_program",
    "mibench_names",
    "mibench_program",
    "mibench_spec",
    "mibench_suite",
]
