"""Program specifications: the schema the MiBench stand-ins are written in.

A :class:`ProgramSpec` describes a benchmark the way a compiler writer would
characterise it — hot loop structure, instruction mix, redundancy rates,
memory regions and access patterns, call structure, branch behaviour — and
:mod:`repro.programs.generator` expands it deterministically into IR.

The spec fields map one-to-one onto optimisation opportunities, so a spec is
also a statement of *which flags can matter* for the program:

========================  ====================================================
spec knob                 flags it gives traction to
========================  ====================================================
``redundancy_local``      fcse_* (local CSE scope)
``redundancy_global``     fgcse, param_max_gcse_passes, fexpensive_optimizations
``partial_redundancy``    ftree_pre
``range_check_rate``      ftree_vrp
``invariant_alu/load``    loop-invariant motion, frerun_loop_opt, fno_gcse_lm
``invariant_store_rate``  fgcse_sm
``after_store_rate``      fgcse_las
``induction_rate``        fstrength_reduce
``peephole_rate``         fpeephole2
``trip_count``/body size  funroll_loops + params (and hand-unrolled sources
                          defeat it, as in rijndael)
``calls`` + callee sizes  finline_functions + params, foptimize_sibling_calls
``carried_dep_latency``   caps what scheduling/unrolling can win
``ilp``                   dependence spacing: what fschedule_insns can win
``diamonds``/tails/...    freorder_blocks, fcrossjumping, fthread_jumps
``regions``               dcache behaviour: what load/store motion saves
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegionSpec:
    """A data object the program touches."""

    name: str
    size_bytes: int
    kind: str  # stream | table | chase (see ir.DataRegion)


@dataclass(frozen=True)
class AccessSpec:
    """Aggregated memory behaviour of one loop: per-iteration accesses."""

    region: str
    loads_per_iter: int = 0
    stores_per_iter: int = 0
    stride: int = 4  # bytes advanced per iteration (0 = invariant address)


@dataclass(frozen=True)
class CalleeSpec:
    """A small out-of-line function callable from loop bodies."""

    name: str
    body_insns: int
    #: memory ops inside the callee (e.g. crc's pointer update traffic);
    #: these live in the prologue/epilogue region that inlining elides.
    frame_traffic: int = 1
    #: whether the callee ends with a tagged tail call to another callee
    #: (exercises -foptimize-sibling-calls); names the target.
    sibling_target: str | None = None
    inline_candidate: bool = True


@dataclass(frozen=True)
class LoopSpec:
    """One hot loop nest level."""

    name: str
    trip_count: float
    dyn_insns: float  # dynamic instructions this loop level should execute
    body_blocks: int = 2
    block_insns: int = 12
    #: instruction mix weights (alu/mac/shift are per-category weights;
    #: loads/stores come from `accesses`).
    mix_alu: float = 0.6
    mix_mac: float = 0.1
    mix_shift: float = 0.1
    accesses: tuple[AccessSpec, ...] = ()
    calls: tuple[str, ...] = ()  # callee names invoked once per iteration
    inner: "LoopSpec | None" = None
    carried_dep_latency: int = 0
    #: mean distance between dependent instructions as generated (1 = fully
    #: serial chains; 4 = wide, little for the scheduler to do).
    ilp: float = 2.0
    #: probability that the latch branch direction is correctly predictable.
    predictability: float = 0.97
    #: number of if/else diamonds in the body (reorder/branch pressure).
    diamonds: int = 0
    #: probability of the diamond branch being taken under current layout.
    diamond_taken: float = 0.3
    invariant_branch: bool = False  # an unswitchable invariant conditional
    # --- redundancy and pattern rates, as fractions of body instructions ---
    redundancy_local: float = 0.0
    redundancy_global: float = 0.0
    partial_redundancy: float = 0.0
    range_check_rate: float = 0.0
    invariant_alu_rate: float = 0.0
    invariant_load_rate: float = 0.0
    invariant_store_rate: float = 0.0
    after_store_rate: float = 0.0
    induction_rate: float = 0.0
    peephole_rate: float = 0.0


@dataclass(frozen=True)
class ProgramSpec:
    """A whole benchmark."""

    name: str
    seed: int
    loops: tuple[LoopSpec, ...]
    regions: tuple[RegionSpec, ...] = ()
    callees: tuple[CalleeSpec, ...] = ()
    #: static instructions of cold code (startup, error paths) appended to
    #: the binary; inflates footprint without dynamic weight.
    cold_insns: int = 120
    #: duplicated tail groups for -fcrossjumping: (copies, insns per copy).
    mergeable_tails: tuple[tuple[int, int], ...] = ()
    #: number of jump-to-jump trampolines for -fthread-jumps.
    jump_chains: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError(f"{self.name}: a program needs at least one loop")
        region_names = {region.name for region in self.regions}
        callee_names = {callee.name for callee in self.callees}

        def check_loop(loop: LoopSpec) -> None:
            for access in loop.accesses:
                if access.region not in region_names:
                    raise ValueError(
                        f"{self.name}/{loop.name}: unknown region {access.region!r}"
                    )
            for callee in loop.calls:
                if callee not in callee_names:
                    raise ValueError(
                        f"{self.name}/{loop.name}: unknown callee {callee!r}"
                    )
            if loop.inner is not None:
                check_loop(loop.inner)

        for loop in self.loops:
            check_loop(loop)
        for callee in self.callees:
            if callee.sibling_target is not None and (
                callee.sibling_target not in callee_names
            ):
                raise ValueError(
                    f"{self.name}/{callee.name}: unknown sibling target "
                    f"{callee.sibling_target!r}"
                )

    @property
    def total_dyn_insns(self) -> float:
        def loop_dyn(loop: LoopSpec) -> float:
            return loop.dyn_insns + (loop_dyn(loop.inner) if loop.inner else 0.0)

        return sum(loop_dyn(loop) for loop in self.loops)
