"""Deterministic expansion of a :class:`ProgramSpec` into IR.

The builder emits a ``main`` function containing the spec's loop nests plus
one leaf function per callee, wiring in every optimisation opportunity the
spec declares: redundant expressions with real value keys, loop-invariant
operations, induction multiplies, duplicated tails, jump trampolines,
unswitchable guards, call sites, and memory access streams with real
regions and strides.  All randomness comes from the spec's seed, so the
same spec always yields the same program.

Loop shape convention (relied upon by the unroller and the scheduler):

* the loop header is the first body block in layout and the latch the last;
* the latch ends with a backwards conditional branch whose taken target is
  the header (``successors = [exit, header]``);
* straight-line body blocks have no terminators and fall through, giving
  interblock scheduling real merge opportunities;
* every loop has a dedicated preheader block directly before the header.
"""

from __future__ import annotations

import random

from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
    TAG_AFTER_STORE,
    TAG_EPILOGUE,
    TAG_GLOBAL_REDUNDANT,
    TAG_INDUCTION,
    TAG_INVARIANT,
    TAG_INVARIANT_STORE,
    TAG_JUMP_CHAIN,
    TAG_LOCAL_REDUNDANT,
    TAG_MERGEABLE_TAIL,
    TAG_PARTIAL_REDUNDANT,
    TAG_PEEPHOLE,
    TAG_PROLOGUE,
    TAG_RANGE_CHECK,
    TAG_SIBLING,
)
from repro.programs.spec import AccessSpec, CalleeSpec, LoopSpec, ProgramSpec

_ALU_OPS = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MOV)
_SHIFT_OPS = (Opcode.SHL, Opcode.SHR)
_MAC_OPS = (Opcode.MUL, Opcode.MAC)

#: dependence-kind name for each producing opcode category.
_KIND_OF_CATEGORY = {"alu": "alu", "mac": "mac", "shift": "shift", "load": "load"}


class _BlockPlan:
    """A block plus its per-iteration execution weight within its loop."""

    __slots__ = ("block", "weight")

    def __init__(self, block: BasicBlock, weight: float):
        self.block = block
        self.weight = weight


class ProgramBuilder:
    """Expands one spec; use :func:`build_program`."""

    def __init__(self, spec: ProgramSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self._expr_counter = 0
        self._function_pool: list[str] = []
        # Bresenham-style accumulators so memory-pattern rates land
        # deterministically and proportionally (a rate of 0.5 tags every
        # second access), rather than as high-variance per-access rolls.
        self._quota: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------ api
    def build(self) -> Program:
        regions = {
            region.name: DataRegion(region.name, region.size_bytes, region.kind)
            for region in self.spec.regions
        }
        regions.setdefault("stack", DataRegion("stack", 4096, "stack"))

        functions: dict[str, Function] = {}
        for callee_spec in self.spec.callees:
            functions[callee_spec.name] = self._build_callee(callee_spec)

        functions["main"] = self._build_main()
        self._assign_callee_counts(functions)

        program = Program(
            name=self.spec.name,
            functions=functions,
            entry="main",
            regions=regions,
        )
        program.validate()
        return program

    # ------------------------------------------------------------- helpers
    def _fresh_expr(self) -> str:
        self._expr_counter += 1
        return f"x{self._expr_counter}"

    def _pick_alu(self) -> Opcode:
        return self.rng.choice(_ALU_OPS)

    @staticmethod
    def _link(previous: BasicBlock, label: str) -> None:
        """Make the terminator-less ``previous`` fall through to ``label``."""
        if previous.terminator is None:
            previous.successors = [label]

    # -------------------------------------------------------------- callees
    def _build_callee(self, spec: CalleeSpec) -> Function:
        """A leaf function: prologue, straight-line body, epilogue, RET."""
        instructions: list[Instruction] = []
        stores = max((spec.frame_traffic + 1) // 2, 1)
        loads = max(spec.frame_traffic - stores, 0)
        for _ in range(stores):
            instructions.append(
                Instruction(
                    opcode=Opcode.STORE,
                    region="stack",
                    stride=0,
                    tags=frozenset({TAG_PROLOGUE}),
                )
            )
        instructions.extend(
            self._emit_instructions(
                count=spec.body_insns,
                loop=None,
                accesses=[],
                calls=[],
                block_pool=[],
            )
        )
        for _ in range(loads):
            instructions.append(
                Instruction(
                    opcode=Opcode.LOAD,
                    region="stack",
                    stride=0,
                    tags=frozenset({TAG_EPILOGUE}),
                )
            )
        if spec.sibling_target is not None:
            instructions.append(
                Instruction(
                    opcode=Opcode.CALL,
                    callee=spec.sibling_target,
                    tags=frozenset({TAG_SIBLING}),
                )
            )
        instructions.append(Instruction(opcode=Opcode.RET))

        label = f"{spec.name}.body"
        block = BasicBlock(label=label, instructions=instructions, successors=[])
        return Function(
            name=spec.name,
            blocks={label: block},
            layout=[label],
            loops=[],
            inline_candidate=spec.inline_candidate,
            entry_count=0.0,
        )

    # ----------------------------------------------------------------- main
    def _build_main(self) -> Function:
        blocks: dict[str, BasicBlock] = {}
        layout: list[str] = []
        loops: list[Loop] = []

        def add(block: BasicBlock) -> BasicBlock:
            if block.label in blocks:
                raise ValueError(f"duplicate block label {block.label!r}")
            blocks[block.label] = block
            layout.append(block.label)
            return block

        # Entry: startup code touching every region once (the flat accesses).
        entry_insns = self._emit_instructions(
            count=8, loop=None, accesses=[], calls=[], block_pool=[]
        )
        for region_spec in self.spec.regions:
            entry_insns.append(
                Instruction(
                    opcode=Opcode.LOAD,
                    region=region_spec.name,
                    stride=0,
                    expr=self._fresh_expr(),
                )
            )
        previous = add(
            BasicBlock("entry", entry_insns, successors=[], exec_count=1.0)
        )

        tail_groups = list(self.spec.mergeable_tails)
        chains_left = self.spec.jump_chains
        for loop_spec in self.spec.loops:
            exit_label = f"{loop_spec.name}.exit"
            first_label, loop_objects = self._emit_loop(
                loop_spec,
                add,
                blocks,
                exit_label,
                depth=1,
                parent=None,
                tail_groups=tail_groups,
                chains_left=chains_left,
            )
            chains_left = max(chains_left - loop_spec.diamonds, 0)
            self._link(previous, first_label)
            loops.extend(loop_objects)
            previous = add(
                BasicBlock(
                    exit_label,
                    self._emit_instructions(
                        count=4, loop=None, accesses=[], calls=[], block_pool=[]
                    ),
                    successors=[],
                    exec_count=loop_objects[0].entries,
                )
            )

        teardown = add(
            BasicBlock(
                "teardown",
                self._emit_instructions(
                    count=6, loop=None, accesses=[], calls=[], block_pool=[]
                )
                + [Instruction(opcode=Opcode.RET)],
                successors=[],
                exec_count=1.0,
            )
        )
        self._link(previous, teardown.label)

        cold_remaining = self.spec.cold_insns
        cold_index = 0
        while cold_remaining > 0:
            size = min(cold_remaining, 14)
            add(
                BasicBlock(
                    f"cold{cold_index}",
                    self._emit_instructions(
                        count=size, loop=None, accesses=[], calls=[], block_pool=[]
                    )
                    + [Instruction(opcode=Opcode.JMP)],
                    successors=[teardown.label],
                    exec_count=0.0,
                )
            )
            cold_remaining -= size
            cold_index += 1

        return Function(
            name="main",
            blocks=blocks,
            layout=layout,
            loops=loops,
            inline_candidate=False,
            entry_count=1.0,
        )

    # ---------------------------------------------------------------- loops
    def _emit_loop(
        self,
        spec: LoopSpec,
        add,
        blocks: dict[str, BasicBlock],
        exit_label: str,
        depth: int,
        parent: str | None,
        tail_groups: list[tuple[int, int]],
        chains_left: int,
    ) -> tuple[str, list[Loop]]:
        """Emit one loop nest level; returns (preheader label, loop objects)."""
        name = spec.name
        plans: list[_BlockPlan] = []
        member_labels: list[str] = []

        preheader = add(
            BasicBlock(
                f"{name}.pre",
                self._emit_instructions(
                    count=4, loop=None, accesses=[], calls=[], block_pool=[]
                ),
                successors=[f"{name}.hdr"],
            )
        )

        header_insns = self._emit_instructions(
            count=max(3, spec.block_insns // 3),
            loop=spec,
            accesses=[],
            calls=[],
            block_pool=[],
        )
        if spec.carried_dep_latency > 0 and header_insns:
            kind = (
                "load"
                if spec.carried_dep_latency >= 3
                else ("mac" if spec.carried_dep_latency == 2 else "alu")
            )
            first = header_insns[0]
            first.deps = first.deps + ((1, kind),)
        header = add(
            BasicBlock(
                f"{name}.hdr", header_insns, successors=[], is_loop_header=True
            )
        )
        plans.append(_BlockPlan(header, 1.0))
        member_labels.append(header.label)
        previous = header

        # Distribute per-iteration memory accesses and calls over the
        # straight-line body blocks.
        straight_count = max(spec.body_blocks, 1)
        per_block_accesses = self._split_queue(
            self._expand_accesses(spec), straight_count
        )
        per_block_calls = self._split_queue(list(spec.calls), straight_count)

        inner_position = straight_count // 2 if spec.inner is not None else -1
        inner_loops: list[Loop] = []
        inner_iterations_cache = 0.0

        for position in range(straight_count):
            block_pool: list[str] = []
            straight = add(
                BasicBlock(
                    f"{name}.b{position}",
                    self._emit_instructions(
                        count=spec.block_insns,
                        loop=spec,
                        accesses=per_block_accesses[position],
                        calls=per_block_calls[position],
                        block_pool=block_pool,
                    ),
                    successors=[],
                )
            )
            plans.append(_BlockPlan(straight, 1.0))
            member_labels.append(straight.label)
            self._link(previous, straight.label)
            previous = straight

            if position == inner_position and spec.inner is not None:
                inner_first, inner_objects = self._emit_loop(
                    spec.inner,
                    add,
                    blocks,
                    exit_label=f"{name}.b{position}.post",
                    depth=depth + 1,
                    parent=f"{name}.hdr",
                    tail_groups=tail_groups,
                    chains_left=0,
                )
                self._link(previous, inner_first)
                inner_loops.extend(inner_objects)
                inner_iterations_cache = inner_objects[0].iterations
                post = add(
                    BasicBlock(
                        f"{name}.b{position}.post",
                        self._emit_instructions(
                            count=max(spec.block_insns // 2, 3),
                            loop=spec,
                            accesses=[],
                            calls=[],
                            block_pool=[],
                        ),
                        successors=[],
                    )
                )
                plans.append(_BlockPlan(post, 1.0))
                member_labels.append(post.label)
                previous = post

        for diamond in range(spec.diamonds):
            previous = self._emit_diamond(
                spec,
                add,
                previous,
                plans,
                member_labels,
                diamond,
                tail_groups,
                use_chain=chains_left > diamond,
            )

        if spec.invariant_branch:
            previous = self._emit_guard(spec, add, previous, plans, member_labels)

        latch_insns = self._emit_instructions(
            count=3, loop=spec, accesses=[], calls=[], block_pool=[]
        )
        latch_insns.append(Instruction(opcode=Opcode.CMP))
        latch_insns.append(Instruction(opcode=Opcode.BR))
        latch = add(
            BasicBlock(
                f"{name}.latch",
                latch_insns,
                successors=[exit_label, header.label],
                taken_prob=max(0.0, 1.0 - 1.0 / max(spec.trip_count, 1.001)),
                predictability=spec.predictability,
            )
        )
        plans.append(_BlockPlan(latch, 1.0))
        member_labels.append(latch.label)
        self._link(previous, latch.label)

        # --- profile: solve iteration counts from the dynamic budget -------
        insns_per_iter = sum(
            plan.weight * len(plan.block.instructions) for plan in plans
        )
        iterations = max(spec.dyn_insns / max(insns_per_iter, 1.0), 1.0)
        trip = min(spec.trip_count, iterations)
        entries = iterations / trip
        for plan in plans:
            plan.block.exec_count = iterations * plan.weight
        preheader.exec_count = entries

        loop_object = Loop(
            header=header.label,
            blocks=list(member_labels),
            trip_count=trip,
            entries=entries,
            depth=depth,
            parent=parent,
            carried_dep_latency=spec.carried_dep_latency,
        )

        # The direct inner loop is entered once per iteration of this loop:
        # its total iterations stay as budgeted, redistributed over the new
        # entry count.
        if spec.inner is not None and inner_loops:
            inner = inner_loops[0]
            inner.entries = max(iterations, 1.0)
            inner.trip_count = max(inner_iterations_cache / inner.entries, 1.0)
            inner_pre = blocks.get(f"{spec.inner.name}.pre")
            if inner_pre is not None:
                inner_pre.exec_count = inner.entries

        return preheader.label, [loop_object] + inner_loops

    def _emit_diamond(
        self,
        spec: LoopSpec,
        add,
        previous: BasicBlock,
        plans: list[_BlockPlan],
        member_labels: list[str],
        index: int,
        tail_groups: list[tuple[int, int]],
        use_chain: bool,
    ) -> BasicBlock:
        """Emit decision → two arms (→ optional dup tails) → join."""
        name = f"{spec.name}.d{index}"
        taken = spec.diamond_taken
        decision_insns = self._emit_instructions(
            count=max(spec.block_insns // 2, 3),
            loop=spec,
            accesses=[],
            calls=[],
            block_pool=[],
        )
        decision_insns.append(Instruction(opcode=Opcode.CMP))
        decision_insns.append(Instruction(opcode=Opcode.BR))
        decision = add(
            BasicBlock(
                name,
                decision_insns,
                successors=[f"{name}.a", f"{name}.b"],
                taken_prob=taken,
                predictability=spec.predictability,
            )
        )
        plans.append(_BlockPlan(decision, 1.0))
        member_labels.append(decision.label)
        self._link(previous, decision.label)

        join_label = f"{name}.j"
        tail_spec = tail_groups.pop(0) if tail_groups else None

        def make_arm(suffix: str, weight: float) -> BasicBlock:
            arm = add(
                BasicBlock(
                    f"{name}.{suffix}",
                    self._emit_instructions(
                        count=max(spec.block_insns // 2, 3),
                        loop=spec,
                        accesses=[],
                        calls=[],
                        block_pool=[],
                    ),
                    successors=[],
                )
            )
            plans.append(_BlockPlan(arm, weight))
            member_labels.append(arm.label)
            return arm

        arm_a = make_arm("a", 1.0 - taken)
        arm_b = make_arm("b", taken)

        if tail_spec is not None:
            _, tail_insns = tail_spec  # a diamond provides exactly two copies
            group_key = f"tail:{self.spec.name}:{spec.name}:{index}"
            # Layout is [decision, armA, armB, tailA, tailB, join]: armA must
            # jump over armB to its tail; tailA jumps over tailB to the join;
            # armB and tailB fall through.
            arm_a.instructions.append(Instruction(opcode=Opcode.JMP))
            arm_a.taken_prob = 1.0
            arm_b_successor_fixed = False
            tail_a = add(self._tail_block(f"{name}.ta", group_key, tail_insns))
            tail_a.instructions.append(Instruction(opcode=Opcode.JMP))
            tail_a.taken_prob = 1.0
            tail_a.successors = [join_label]
            tail_b = add(self._tail_block(f"{name}.tb", group_key, tail_insns))
            tail_b.successors = [join_label]
            plans.append(_BlockPlan(tail_a, 1.0 - taken))
            plans.append(_BlockPlan(tail_b, taken))
            member_labels.extend([tail_a.label, tail_b.label])
            arm_a.successors = [tail_a.label]
            arm_b.successors = [tail_b.label]
            del arm_b_successor_fixed
            chain_source = tail_b
        else:
            arm_a.instructions.append(Instruction(opcode=Opcode.JMP))
            arm_a.taken_prob = 1.0
            arm_a.successors = [join_label]
            arm_b.successors = [join_label]
            chain_source = arm_b

        if use_chain:
            # Route one fall-through path through a jump trampoline.
            trampoline = add(
                BasicBlock(
                    f"{name}.t",
                    [
                        Instruction(
                            opcode=Opcode.JMP, tags=frozenset({TAG_JUMP_CHAIN})
                        )
                    ],
                    successors=[join_label],
                    taken_prob=1.0,
                )
            )
            plans.append(_BlockPlan(trampoline, taken))
            member_labels.append(trampoline.label)
            chain_source.successors = [trampoline.label]

        join = add(
            BasicBlock(
                join_label,
                self._emit_instructions(
                    count=max(spec.block_insns // 3, 2),
                    loop=spec,
                    accesses=[],
                    calls=[],
                    block_pool=[],
                ),
                successors=[],
            )
        )
        plans.append(_BlockPlan(join, 1.0))
        member_labels.append(join.label)
        return join

    def _tail_block(self, label: str, group_key: str, insns: int) -> BasicBlock:
        instructions = [
            Instruction(
                opcode=self._pick_alu(),
                expr=group_key,
                tags=frozenset({TAG_MERGEABLE_TAIL}),
            )
            for _ in range(insns)
        ]
        return BasicBlock(label, instructions, successors=[])

    def _emit_guard(
        self,
        spec: LoopSpec,
        add,
        previous: BasicBlock,
        plans: list[_BlockPlan],
        member_labels: list[str],
    ) -> BasicBlock:
        """An invariant conditional guarding part of the body (unswitch)."""
        name = f"{spec.name}.g"
        guard_insns = self._emit_instructions(
            count=3, loop=spec, accesses=[], calls=[], block_pool=[]
        )
        guard_insns.append(Instruction(opcode=Opcode.CMP))
        guard_insns.append(Instruction(opcode=Opcode.BR))
        guarded_label = f"{name}.body"
        after_label = f"{name}.after"
        guard = add(
            BasicBlock(
                name,
                guard_insns,
                successors=[guarded_label, after_label],
                taken_prob=0.05,
                predictability=0.99,
                invariant_branch=True,
            )
        )
        plans.append(_BlockPlan(guard, 1.0))
        member_labels.append(guard.label)
        self._link(previous, guard.label)

        guarded = add(
            BasicBlock(
                guarded_label,
                self._emit_instructions(
                    count=spec.block_insns,
                    loop=spec,
                    accesses=[],
                    calls=[],
                    block_pool=[],
                ),
                successors=[after_label],
            )
        )
        plans.append(_BlockPlan(guarded, 0.95))
        member_labels.append(guarded.label)

        after = add(
            BasicBlock(
                after_label,
                self._emit_instructions(
                    count=max(spec.block_insns // 3, 2),
                    loop=spec,
                    accesses=[],
                    calls=[],
                    block_pool=[],
                ),
                successors=[],
            )
        )
        plans.append(_BlockPlan(after, 1.0))
        member_labels.append(after.label)
        return after

    # -------------------------------------------------------- instructions
    @staticmethod
    def _expand_accesses(spec: LoopSpec) -> list[tuple[AccessSpec, bool]]:
        """Flatten access specs into (spec, is_store) emission units.

        Stores are queued before loads so that a load from a just-stored
        region can be recognised as a load-after-store (gcse-las) pattern.
        """
        queue: list[tuple[AccessSpec, bool]] = []
        for access in spec.accesses:
            queue.extend([(access, True)] * access.stores_per_iter)
        for access in spec.accesses:
            queue.extend([(access, False)] * access.loads_per_iter)
        return queue

    @staticmethod
    def _split_queue(queue: list, parts: int) -> list[list]:
        split: list[list] = [[] for _ in range(parts)]
        for index, item in enumerate(queue):
            split[index % parts].append(item)
        return split

    def _emit_instructions(
        self,
        count: int,
        loop: LoopSpec | None,
        accesses: list[tuple[AccessSpec, bool]],
        calls: list[str],
        block_pool: list[str],
    ) -> list[Instruction]:
        """Emit ``count`` generic instructions interleaved with the queued
        memory accesses, followed by the queued calls."""
        instructions: list[Instruction] = []
        pending_store_expr: dict[str, str] = {}
        ilp = loop.ilp if loop is not None else 3.0

        def emit_dep(insn: Instruction) -> Instruction:
            """Attach a dependence on a recent producer, honouring ILP."""
            if not instructions or self.rng.random() > 0.8:
                return insn
            distance = max(1, min(int(self.rng.expovariate(1.0 / ilp)) + 1, 6))
            position = len(instructions) - distance
            while position >= 0:
                producer = instructions[position]
                kind = _KIND_OF_CATEGORY.get(producer.opcode.category)
                if kind is not None:
                    insn.deps = insn.deps + ((len(instructions) - position, kind),)
                    return insn
                position -= 1
            return insn

        pending = list(accesses)
        slot_stride = max(count // (len(pending) + 1), 1) if pending else 0
        for position in range(count):
            if (
                pending
                and slot_stride
                and position % slot_stride == slot_stride - 1
            ):
                queued = pending.pop(0)
                instructions.append(
                    emit_dep(
                        self._memory_instruction(queued, loop, pending_store_expr)
                    )
                )
            instructions.append(emit_dep(self._generic_instruction(loop, block_pool)))

        # Very dense access lists spill past the generic body; emit the rest.
        for queued in pending:
            instructions.append(
                emit_dep(self._memory_instruction(queued, loop, pending_store_expr))
            )
        for callee in calls:
            instructions.append(Instruction(opcode=Opcode.CALL, callee=callee))
        return instructions

    def _take_quota(self, loop: LoopSpec, kind: str, rate: float) -> bool:
        """Deterministic proportional tagging: fires ``rate`` of the time."""
        if rate <= 0.0:
            return False
        key = (loop.name, kind)
        accumulated = self._quota.get(key, 0.0) + rate
        if accumulated >= 1.0:
            self._quota[key] = accumulated - 1.0
            return True
        self._quota[key] = accumulated
        return False

    def _memory_instruction(
        self,
        queued: tuple[AccessSpec, bool],
        loop: LoopSpec | None,
        pending_store_expr: dict[str, str],
    ) -> Instruction:
        access, is_store = queued
        expr = self._fresh_expr()
        if is_store:
            tags = frozenset()
            if loop is not None and self._take_quota(
                loop, "inv_store", loop.invariant_store_rate
            ):
                tags = frozenset({TAG_INVARIANT_STORE})
            pending_store_expr[access.region] = expr
            return Instruction(
                opcode=Opcode.STORE,
                expr=expr,
                region=access.region,
                stride=access.stride,
                tags=tags,
            )
        tags = frozenset()
        stride = access.stride
        if loop is not None:
            if self._take_quota(loop, "inv_load", loop.invariant_load_rate):
                tags = frozenset({TAG_INVARIANT})
                stride = 0
            elif access.region in pending_store_expr and self._take_quota(
                loop, "after_store", loop.after_store_rate
            ):
                # A reload of the location just stored: it hits in the cache
                # (stride 0) and is entirely removable by -fgcse-las.
                tags = frozenset({TAG_AFTER_STORE})
                expr = pending_store_expr[access.region]
                stride = 0
        self._function_pool.append(expr)
        return Instruction(
            opcode=Opcode.LOAD,
            expr=expr,
            region=access.region,
            stride=stride,
            tags=tags,
        )

    def _generic_instruction(
        self, loop: LoopSpec | None, block_pool: list[str]
    ) -> Instruction:
        """One ALU/MAC/shift instruction, with spec-driven special patterns."""
        if loop is None:
            expr = self._fresh_expr()
            block_pool.append(expr)
            return Instruction(opcode=self._pick_alu(), expr=expr)

        roll = self.rng.random()
        threshold = loop.redundancy_local
        if roll < threshold and block_pool:
            return Instruction(
                opcode=self._pick_alu(),
                expr=self.rng.choice(block_pool),
                tags=frozenset({TAG_LOCAL_REDUNDANT}),
            )

        threshold += loop.redundancy_global
        if roll < threshold and self._function_pool:
            chain = 1 if self.rng.random() < 0.55 else 2
            return Instruction(
                opcode=self._pick_alu(),
                expr=self.rng.choice(self._function_pool),
                tags=frozenset({TAG_GLOBAL_REDUNDANT}),
                chain=chain,
            )

        threshold += loop.partial_redundancy
        if roll < threshold:
            return Instruction(
                opcode=self._pick_alu(),
                expr=self._fresh_expr(),
                tags=frozenset({TAG_PARTIAL_REDUNDANT}),
            )

        threshold += loop.range_check_rate
        if roll < threshold:
            return Instruction(
                opcode=Opcode.CMP,
                expr=self._fresh_expr(),
                tags=frozenset({TAG_RANGE_CHECK}),
            )

        threshold += loop.invariant_alu_rate
        if roll < threshold:
            chain = 1 if self.rng.random() < 0.5 else 2
            return Instruction(
                opcode=self._pick_alu(),
                expr=self._fresh_expr(),
                tags=frozenset({TAG_INVARIANT}),
                chain=chain,
            )

        threshold += loop.induction_rate
        if roll < threshold:
            return Instruction(
                opcode=Opcode.MUL,
                expr=self._fresh_expr(),
                tags=frozenset({TAG_INDUCTION}),
            )

        threshold += loop.peephole_rate
        if roll < threshold:
            return Instruction(
                opcode=Opcode.MOV,
                expr=self._fresh_expr(),
                tags=frozenset({TAG_PEEPHOLE}),
            )

        total = loop.mix_alu + loop.mix_mac + loop.mix_shift
        pick = self.rng.random() * max(total, 1e-9)
        if pick < loop.mix_mac:
            opcode = self.rng.choice(_MAC_OPS)
        elif pick < loop.mix_mac + loop.mix_shift:
            opcode = self.rng.choice(_SHIFT_OPS)
        else:
            opcode = self._pick_alu()
        expr = self._fresh_expr()
        block_pool.append(expr)
        if self.rng.random() < 0.15:
            self._function_pool.append(expr)
        return Instruction(opcode=opcode, expr=expr)

    # ------------------------------------------------------------ profiles
    @staticmethod
    def _assign_callee_counts(functions: dict[str, Function]) -> None:
        """Propagate call counts into callee profiles (to a fixpoint, so
        sibling-call chains between callees are covered)."""
        for _ in range(4):
            counts: dict[str, float] = {}
            for function in functions.values():
                for block in function.blocks.values():
                    for insn in block.instructions:
                        if insn.opcode is Opcode.CALL and insn.callee in functions:
                            counts[insn.callee] = (
                                counts.get(insn.callee, 0.0) + block.exec_count
                            )
            changed = False
            for name, function in functions.items():
                if name == "main":
                    continue
                entry = counts.get(name, 0.0)
                if abs(function.entry_count - entry) > 1e-9:
                    changed = True
                function.entry_count = entry
                for block in function.blocks.values():
                    block.exec_count = entry
            if not changed:
                break


def build_program(spec: ProgramSpec) -> Program:
    """Expand ``spec`` into a validated :class:`Program`."""
    return ProgramBuilder(spec).build()
