"""The tournament: every strategy, one grid, one leaderboard.

Runs all registered strategies on a common (program, machine, seed)
matrix and reports the paper's §5.3 economics: how many evaluations —
and, more honestly, how many *fresh simulations* — each strategy needs
to match the best setting any of them found.  The headline claim this
reproduces: model-seeded search matches best-known in a fraction of the
simulations any pure-iterative baseline consumes.

Accounting rules, applied uniformly:

* *best-known* per pair is the best runtime any run of any strategy
  found; a run *matches* when it reaches within ``tolerance`` of it.
* unmatched runs are charged the full budget (evaluations and
  simulations), not dropped — dropping them would reward giving up.
* model-guided strategies are charged ``profile_cost`` extra
  simulations: the one -O3 profiling run their distribution cost
  (the paper's deployment price).
* deterministic strategies run once per pair; their single run stands
  for every seed.

Every run gets a fresh evaluator (no memo leaks between competitors)
over a shared compiler (compilation is not the unit being priced).
The rendered markdown and JSON are bit-deterministic for a fixed grid
and seed list — the regression suite diffs two runs byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.autotune.core import SearchStrategy, run_traced
from repro.autotune.guided import GUIDED_STRATEGIES
from repro.autotune.strategies import BASELINE_STRATEGIES
from repro.compiler.flags import DEFAULT_SPACE, FlagSpace
from repro.compiler.ir import Program
from repro.compiler.pipeline import Compiler
from repro.core.distribution import IIDDistribution
from repro.machine.params import MicroArch
from repro.search.evaluator import Evaluator

#: Default competitor line-up: the four re-homed baselines plus the two
#: model-guided strategies, in leaderboard-stable order.
ALL_STRATEGIES: dict[str, type[SearchStrategy]] = {
    **BASELINE_STRATEGIES,
    **GUIDED_STRATEGIES,
}


@dataclass(frozen=True)
class TournamentRun:
    """One (strategy, program, machine, seed) search run's scoreboard row."""

    strategy: str
    program: str
    machine: str
    seed: int
    best_runtime: float
    best_speedup: float
    evaluations: int
    simulations: int
    matched: bool
    evaluations_to_match: int
    simulations_to_match: int

    def payload(self) -> dict:
        return {
            "strategy": self.strategy,
            "program": self.program,
            "machine": self.machine,
            "seed": self.seed,
            "best_runtime": self.best_runtime,
            "best_speedup": self.best_speedup,
            "evaluations": self.evaluations,
            "simulations": self.simulations,
            "matched": self.matched,
            "evaluations_to_match": self.evaluations_to_match,
            "simulations_to_match": self.simulations_to_match,
        }


@dataclass(frozen=True)
class StrategyStanding:
    """One leaderboard row: a strategy's means over all its runs."""

    strategy: str
    deterministic: bool
    runs: int
    matched: int
    mean_evaluations_to_match: float
    mean_simulations_to_match: float
    mean_best_speedup: float
    simulations_total: int

    def payload(self) -> dict:
        return {
            "strategy": self.strategy,
            "deterministic": self.deterministic,
            "runs": self.runs,
            "matched": self.matched,
            "mean_evaluations_to_match": self.mean_evaluations_to_match,
            "mean_simulations_to_match": self.mean_simulations_to_match,
            "mean_best_speedup": self.mean_best_speedup,
            "simulations_total": self.simulations_total,
        }


@dataclass
class TournamentResult:
    """The full tournament outcome: per-run rows, standings, best-known."""

    budget: int
    tolerance: float
    seeds: tuple[int, ...]
    programs: tuple[str, ...]
    machines: tuple[str, ...]
    best_known: dict[tuple[str, str], float]
    runs: list[TournamentRun]
    standings: list[StrategyStanding]

    def standing(self, strategy: str) -> StrategyStanding:
        for entry in self.standings:
            if entry.strategy == strategy:
                return entry
        raise KeyError(f"no standing for strategy {strategy!r}")

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        """The markdown leaderboard (deterministic for a fixed grid)."""
        lines = [
            "# Search tournament",
            "",
            f"grid: {len(self.programs)} programs x {len(self.machines)} "
            f"machines x {len(self.seeds)} seeds | budget {self.budget} "
            f"evaluations | match tolerance "
            f"{self.tolerance * 100.0:.1f}% of best-known",
            "",
            "| rank | strategy | matched | mean sims-to-match | "
            "mean evals-to-match | mean best speedup | sims consumed |",
            "|-----:|:---------|--------:|-------------------:|"
            "--------------------:|------------------:|--------------:|",
        ]
        for rank, standing in enumerate(self.standings, start=1):
            name = standing.strategy
            if standing.deterministic:
                name += " *"
            lines.append(
                f"| {rank} | {name} | {standing.matched}/{standing.runs} "
                f"| {standing.mean_simulations_to_match:.1f} "
                f"| {standing.mean_evaluations_to_match:.1f} "
                f"| {standing.mean_best_speedup:.3f} "
                f"| {standing.simulations_total} |"
            )
        lines += [
            "",
            "`*` deterministic: one run stands for every seed.  "
            "sims-to-match includes the model-guided strategies' profile "
            "run; unmatched runs are charged the full budget.",
            "",
            "## Best-known runtime per pair",
            "",
            "| program | machine | best-known (s) |",
            "|:--------|:--------|---------------:|",
        ]
        for (program, machine), runtime in sorted(self.best_known.items()):
            lines.append(f"| {program} | {machine} | {runtime:.6f} |")
        return "\n".join(lines) + "\n"

    def payload(self) -> dict:
        return {
            "budget": self.budget,
            "tolerance": self.tolerance,
            "seeds": list(self.seeds),
            "programs": list(self.programs),
            "machines": list(self.machines),
            "best_known": {
                f"{program}/{machine}": runtime
                for (program, machine), runtime in sorted(self.best_known.items())
            },
            "standings": [standing.payload() for standing in self.standings],
            "runs": [run.payload() for run in self.runs],
        }

    def json_text(self) -> str:
        return json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"


def check_model_beats_random(
    result: TournamentResult,
    model: str = "model-genetic",
    baseline: str = "random",
) -> tuple[bool, str]:
    """The smoke gate: model-seeded search must out-economise random.

    Passes iff the model strategy's mean simulations-to-match is
    *strictly* lower than the baseline's and its mean
    evaluations-to-match is no higher.  Returns ``(ok, message)``.
    """
    guided = result.standing(model)
    random_ = result.standing(baseline)
    ok = (
        guided.mean_simulations_to_match < random_.mean_simulations_to_match
        and guided.mean_evaluations_to_match
        <= random_.mean_evaluations_to_match
    )
    message = (
        f"{model}: {guided.mean_simulations_to_match:.1f} sims-to-match / "
        f"{guided.mean_evaluations_to_match:.1f} evals-to-match vs "
        f"{baseline}: {random_.mean_simulations_to_match:.1f} / "
        f"{random_.mean_evaluations_to_match:.1f} "
        f"-> {'PASS' if ok else 'FAIL'}"
    )
    return ok, message


def run_tournament(
    programs: Sequence[Program],
    machines: Sequence[MicroArch],
    *,
    budget: int,
    seeds: Sequence[int] = (0,),
    strategies: Sequence[str] | None = None,
    make_evaluator: Callable[[Program, MicroArch], Evaluator] | None = None,
    distribution_for: (
        Callable[[Program, MicroArch], IIDDistribution] | None
    ) = None,
    space: FlagSpace = DEFAULT_SPACE,
    tolerance: float = 0.01,
    profile_cost: int = 1,
    progress: Callable[[str], None] | None = None,
) -> TournamentResult:
    """Run the strategy matrix and assemble the leaderboard.

    Args:
        programs/machines/seeds/budget: the common grid every strategy
            competes on.
        strategies: competitor names (default: every registered
            strategy, minus the model-guided ones when no
            ``distribution_for`` is supplied).
        make_evaluator: evaluator factory, one fresh evaluator per run
            (default: analytic-tier evaluators over one shared compiler).
        distribution_for: the pair's predictive distribution — what the
            model-guided strategies search with.  Required if any
            model-guided strategy competes.
        tolerance: relative slack on best-known that still counts as a
            match (default 1%).
        profile_cost: simulations charged to model-guided strategies for
            the profiling run behind their distribution.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1: {budget}")
    if not programs or not machines or not seeds:
        raise ValueError("tournament needs >= 1 program, machine, and seed")
    if strategies is None:
        strategies = [
            name
            for name in ALL_STRATEGIES
            if distribution_for is not None or name not in GUIDED_STRATEGIES
        ]
    unknown = [name for name in strategies if name not in ALL_STRATEGIES]
    if unknown:
        raise ValueError(
            f"unknown strategies: {unknown}; "
            f"choose from {sorted(ALL_STRATEGIES)}"
        )
    guided_requested = [n for n in strategies if n in GUIDED_STRATEGIES]
    if guided_requested and distribution_for is None:
        raise ValueError(
            f"strategies {guided_requested} are model-guided and need a "
            "distribution_for callable"
        )
    if make_evaluator is None:
        shared_compiler = Compiler()

        def make_evaluator(program: Program, machine: MicroArch) -> Evaluator:
            return Evaluator(
                program=program, machine=machine, compiler=shared_compiler
            )

    machine_labels = [f"m{index}" for index in range(len(machines))]
    seeds = tuple(seeds)

    # ---- run the matrix, keeping raw traces until best-known is known
    raw: list[tuple[str, str, str, int, bool, object]] = []
    for program in programs:
        for machine, label in zip(machines, machine_labels):
            o3_runtime = make_evaluator(program, machine).o3_runtime()
            distribution = None
            if guided_requested:
                distribution = distribution_for(program, machine)
            for name in strategies:
                factory = ALL_STRATEGIES[name]
                guided = name in GUIDED_STRATEGIES
                run_seeds = seeds[:1] if factory.deterministic else seeds
                for seed in run_seeds:
                    if progress is not None:
                        progress(
                            f"{name} on {program.name}/{label} seed {seed}"
                        )
                    trace = run_traced(
                        factory(),
                        make_evaluator(program, machine),
                        budget,
                        seed=seed,
                        space=space,
                        distribution=distribution if guided else None,
                        o3_runtime=o3_runtime,
                    )
                    raw.append(
                        (name, program.name, label, seed, guided, trace)
                    )

    # ---- best-known per pair: the floor over every competitor's runs
    best_known: dict[tuple[str, str], float] = {}
    for _, program_name, label, _, _, trace in raw:
        key = (program_name, label)
        best = trace.best_runtime
        if key not in best_known or best < best_known[key]:
            best_known[key] = best

    # ---- fold traces into scoreboard rows
    runs: list[TournamentRun] = []
    for name, program_name, label, seed, guided, trace in raw:
        target = best_known[(program_name, label)] * (1.0 + tolerance)
        profile = profile_cost if guided else 0
        evaluations_to_match = trace.evaluations_to_reach(target)
        matched = evaluations_to_match is not None
        simulations_to_match = (
            trace.simulations_to_reach(target) if matched else None
        )
        runs.append(
            TournamentRun(
                strategy=name,
                program=program_name,
                machine=label,
                seed=seed,
                best_runtime=trace.best_runtime,
                best_speedup=(
                    trace.o3_runtime / trace.best_runtime
                    if trace.o3_runtime
                    else 1.0
                ),
                evaluations=trace.evaluations,
                simulations=trace.simulations + profile,
                matched=matched,
                evaluations_to_match=(
                    evaluations_to_match if matched else budget
                ),
                simulations_to_match=(
                    simulations_to_match + profile if matched else budget
                ),
            )
        )

    # ---- standings: per-strategy means, ranked by simulation economy
    standings: list[StrategyStanding] = []
    for name in strategies:
        mine = [run for run in runs if run.strategy == name]
        count = len(mine)
        standings.append(
            StrategyStanding(
                strategy=name,
                deterministic=ALL_STRATEGIES[name].deterministic,
                runs=count,
                matched=sum(run.matched for run in mine),
                mean_evaluations_to_match=(
                    sum(run.evaluations_to_match for run in mine) / count
                ),
                mean_simulations_to_match=(
                    sum(run.simulations_to_match for run in mine) / count
                ),
                mean_best_speedup=(
                    sum(run.best_speedup for run in mine) / count
                ),
                simulations_total=sum(run.simulations for run in mine),
            )
        )
    standings.sort(
        key=lambda standing: (
            standing.mean_simulations_to_match,
            standing.mean_evaluations_to_match,
            standing.strategy,
        )
    )

    return TournamentResult(
        budget=budget,
        tolerance=tolerance,
        seeds=seeds,
        programs=tuple(program.name for program in programs),
        machines=tuple(machine_labels),
        best_known=best_known,
        runs=runs,
        standings=standings,
    )
