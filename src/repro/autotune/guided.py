"""Model-guided search: the learned distribution steers the simulator.

The paper's claim (§5.3) is that one profile run plus the fitted model
focuses iterative search so sharply that matching the best-known setting
takes a fraction of the evaluations any pure-iterative baseline needs.
These strategies operationalise that claim two ways:

* :class:`ModelSeededGenetic` — the GA unchanged, except its initial
  population is the model's most probable settings
  (:meth:`IIDDistribution.top_settings`) instead of uniform noise; the
  GRACE pattern of seeding evolution from globally learned knowledge.
* :class:`BeamSearch` — the model's probability is a *surrogate score*:
  each round expands the beam's Hamming-1 neighbourhood, ranks the
  expansion by model log-probability alone, and lets the simulator
  price only the top-``width`` survivors.  Entirely deterministic.

Both consume the pair's predictive distribution from
``SearchContext.distribution``; the tournament charges them the one
profile run that distribution cost (the paper's deployment price).
"""

from __future__ import annotations

from repro.autotune.core import SearchContext, SearchStrategy
from repro.autotune.scorer import BatchScorer
from repro.autotune.strategies import Genetic
from repro.compiler.flags import FlagSetting


class ModelSeededGenetic(Genetic):
    """The GA with the model wired into both its random draws, GRACE-style.

    Two deviations from the plain :class:`Genetic`, both substituting
    the learned distribution for uniform noise (the paper's §5.3 recipe
    of focusing an existing search with the model):

    * the seed generation blends the model's ranking with its spread —
      the first quarter is the head of
      :meth:`IIDDistribution.top_settings` (the model's best guesses,
      which cluster tightly around the mode), the rest are draws from
      the distribution itself, whose per-dimension entropy supplies the
      diversity a GA needs to recombine;
    * mutation resamples each mutated dimension from the model's
      *marginal* for that dimension instead of uniformly, so drift stays
      inside the region the model believes in.

    Selection, crossover, elitism, and budget accounting are inherited
    verbatim, and the default population is smaller than the baseline
    GA's — a focused population needs fewer members per generation, and
    the freed budget buys more generations of refinement.
    """

    name = "model-genetic"
    deterministic = False

    def __init__(
        self,
        population_size: int = 12,
        mutation_rate: float = 0.05,
        tournament: int = 3,
    ):
        super().__init__(
            population_size=population_size,
            mutation_rate=mutation_rate,
            tournament=tournament,
        )

    def _initial_population(
        self, scorer: BatchScorer, context: SearchContext
    ) -> list[FlagSetting]:
        distribution = context.require_distribution(self.name)
        count = min(self.population_size, int(min(scorer.remaining, 2**31)))
        head = max(1, count // 4)
        population = [
            setting for setting, _ in distribution.top_settings(head)
        ]
        while len(population) < count:
            population.append(distribution.sample(context.rng))
        return population

    def _mutate_setting(
        self, rng, setting: FlagSetting, context: SearchContext
    ) -> FlagSetting:
        distribution = context.require_distribution(self.name)
        indices = list(setting.as_indices())
        for dim, probs in enumerate(distribution.theta):
            if rng.random() < self.mutation_rate:
                roll = rng.random()
                cumulative = 0.0
                picked = len(probs) - 1
                for index, probability in enumerate(probs):
                    cumulative += float(probability)
                    if roll < cumulative:
                        picked = index
                        break
                indices[dim] = picked
        return FlagSetting.from_indices(indices)


class BeamSearch:
    """Model-surrogate beam search over the flag space.

    Seeds the beam with the model's most probable (canonicalised,
    deduplicated) settings, then repeats: expand every beam member's
    Hamming-1 neighbourhood, rank the unseen expansion by model
    log-probability (the surrogate — no simulator involved), and price
    only the top-``width`` survivors.  The beam is the best ``width``
    *priced* settings by runtime, so the simulator corrects the
    surrogate each round.  Stops after ``patience`` rounds without
    improvement.  No RNG: ties break on the canonical index encoding,
    making the strategy fully deterministic.
    """

    name = "beam"
    deterministic = True

    def __init__(self, width: int = 4, pool: int = 32, patience: int = 2):
        if width < 1:
            raise ValueError(f"width must be >= 1: {width}")
        self.width = width
        self.pool = pool
        self.patience = patience

    def run(self, scorer: BatchScorer, context: SearchContext) -> None:
        distribution = context.require_distribution(self.name)
        space = context.space

        priced: dict[FlagSetting, float] = {}

        def price(candidates: list[FlagSetting], source: str) -> bool:
            """Score a batch; returns False when the budget cut it short."""
            runtimes = scorer.score(candidates, source)
            for setting, runtime in zip(candidates, runtimes):
                priced[setting] = runtime
            return len(runtimes) == len(candidates)

        # Seed: the model's ranking, collapsed to canonical settings (the
        # ranking can alias across gated dimensions) and deduplicated in
        # rank order.
        seeds: list[FlagSetting] = []
        seen: set[FlagSetting] = set()
        for setting, _ in distribution.top_settings(self.pool):
            canonical = setting.canonical()
            if canonical not in seen:
                seen.add(canonical)
                seeds.append(canonical)
        if not price(seeds[: self.width], "beam-seed"):
            return
        best = min(priced.values(), default=float("inf"))

        stale = 0
        while not scorer.exhausted and stale < self.patience:
            beam = [
                setting
                for setting, _ in sorted(
                    priced.items(),
                    key=lambda item: (item[1], item[0].as_indices()),
                )[: self.width]
            ]
            frontier: list[FlagSetting] = []
            for member in beam:
                for neighbour in space.neighbours(member):
                    canonical = neighbour.canonical()
                    if canonical not in seen:
                        seen.add(canonical)
                        frontier.append(canonical)
            if not frontier:
                return
            # The surrogate: model probability alone ranks the frontier;
            # only the survivors cost simulations.
            frontier.sort(
                key=lambda setting: (
                    -distribution.log_prob(setting),
                    setting.as_indices(),
                )
            )
            survivors = frontier[: self.width]
            if not price(survivors, "beam"):
                return
            round_best = min(priced[setting] for setting in survivors)
            if round_best < best:
                best = round_best
                stale = 0
            else:
                stale += 1


#: Model-guided strategy registry: leaderboard name -> zero-config factory.
GUIDED_STRATEGIES: dict[str, type[SearchStrategy]] = {
    ModelSeededGenetic.name: ModelSeededGenetic,
    BeamSearch.name: BeamSearch,
}
