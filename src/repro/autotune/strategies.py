"""The four iterative-compilation baselines, re-homed as strategies.

Each class reproduces its legacy ``repro.search`` driver *bit for bit*
(pinned by ``tests/golden/search_golden.json``): identical RNG draw
sequences, identical evaluation order, identical tie-breaks.  What
changed is the plumbing — candidates flow through the
:class:`~repro.autotune.scorer.BatchScorer`, so independent batches
(a random sample, a GA generation, a CE probing round) are priced in
one vector-kernel pass, and the budget is enforced centrally.  The one
observable divergence is deliberate: the legacy genetic and combined
elimination drivers could overshoot their budget by one evaluation at
boundary budgets; the scorer clamps both exactly at it.
"""

from __future__ import annotations

import random

from repro.autotune.core import SearchContext, SearchStrategy
from repro.autotune.scorer import BatchScorer
from repro.compiler.flags import FlagSetting, FlagSpace


def _crossover(
    rng: random.Random, left: FlagSetting, right: FlagSetting
) -> FlagSetting:
    left_indices = left.as_indices()
    right_indices = right.as_indices()
    child = [
        left_indices[dim] if rng.random() < 0.5 else right_indices[dim]
        for dim in range(len(left_indices))
    ]
    return FlagSetting.from_indices(child)


def _mutate(
    rng: random.Random,
    setting: FlagSetting,
    space: FlagSpace,
    rate: float,
) -> FlagSetting:
    indices = list(setting.as_indices())
    for dim, spec in enumerate(space.specs):
        if rng.random() < rate:
            indices[dim] = rng.randrange(spec.cardinality)
    return FlagSetting.from_indices(indices)


def _all_on(space: FlagSpace) -> FlagSetting:
    values = {}
    for spec in space.specs:
        values[spec.name] = True if spec.is_boolean else spec.o3
    return FlagSetting(values)


class RandomSearch:
    """Uniform-random sampling (§4.3) — the whole budget in one batch."""

    name = "random"
    deterministic = False

    def run(self, scorer: BatchScorer, context: SearchContext) -> None:
        budget = scorer.remaining
        if budget == float("inf"):
            raise ValueError("random search needs a finite budget")
        settings = context.space.sample_distinct(int(budget), context.rng)
        scorer.score(settings, "sample")


class HillClimb:
    """First-improvement hill climbing with random restarts (Almagor
    et al. [2]).  Inherently sequential — each step depends on the last
    runtime — so candidates go through :meth:`BatchScorer.score_one`."""

    name = "hillclimb"
    deterministic = False

    def run(self, scorer: BatchScorer, context: SearchContext) -> None:
        space, rng = context.space, context.rng
        while not scorer.exhausted:
            current = space.sample(rng)
            current_runtime = scorer.score_one(current, "restart")
            if current_runtime is None:
                return
            improved = True
            while improved and not scorer.exhausted:
                improved = False
                for neighbour in space.neighbours(current):
                    runtime = scorer.score_one(neighbour, "neighbour")
                    if runtime is None:
                        return
                    if runtime < current_runtime:
                        current, current_runtime = neighbour, runtime
                        improved = True
                        break  # first-improvement step, then re-scan


class Genetic:
    """Generational GA (Cooper et al. [7], Kulkarni [24]): tournament
    selection, uniform crossover, per-dimension mutation, elitism of
    one.  Each generation is bred in full, then priced as one batch —
    the elite's re-score is a memo hit, costing an evaluation but no
    simulation, exactly as the legacy driver counted it."""

    name = "genetic"
    deterministic = False

    def __init__(
        self,
        population_size: int = 20,
        mutation_rate: float = 0.05,
        tournament: int = 3,
    ):
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.tournament = tournament

    def _initial_population(
        self, scorer: BatchScorer, context: SearchContext
    ) -> list[FlagSetting]:
        count = min(self.population_size, int(min(scorer.remaining, 2**31)))
        return [context.space.sample(context.rng) for _ in range(count)]

    def _mutate_setting(
        self, rng: random.Random, setting: FlagSetting, context: SearchContext
    ) -> FlagSetting:
        """Mutation hook: uniform resampling here; model-guided subclasses
        redirect mutated dimensions toward the learned distribution."""
        return _mutate(rng, setting, context.space, self.mutation_rate)

    def _pick(
        self,
        rng: random.Random,
        population: list[FlagSetting],
        fitness: list[float],
    ) -> FlagSetting:
        contenders = rng.sample(
            range(len(population)), min(self.tournament, len(population))
        )
        winner = min(contenders, key=lambda index: fitness[index])
        return population[winner]

    def run(self, scorer: BatchScorer, context: SearchContext) -> None:
        rng = context.rng
        population = self._initial_population(scorer, context)
        fitness = scorer.score(population, "population")
        while not scorer.exhausted:
            scored = sorted(zip(fitness, range(len(population))))
            elite = population[scored[0][1]]
            next_population = [elite]
            # The legacy breeding condition, `spent + len(next) <= budget`,
            # rewritten in scorer terms; the scorer's truncation clamps
            # the one-past-budget brood the legacy driver allowed.
            while (
                len(next_population) < self.population_size
                and len(next_population) <= scorer.remaining
            ):
                child = _crossover(
                    rng,
                    self._pick(rng, population, fitness),
                    self._pick(rng, population, fitness),
                )
                child = self._mutate_setting(rng, child, context)
                next_population.append(child)
            population = next_population
            fitness = scorer.score(population, "offspring")
            if len(population) < 2:
                break


class CombinedElimination:
    """Combined elimination (Pan & Eigenmann [30]).

    Starts from everything-on; each *probing round* measures the
    relative improvement of disabling each still-enabled boolean flag
    alone — all independent against the fixed baseline, so the whole
    round prices as one batch — then greedily eliminates harmful flags
    (most harmful first), re-measuring interactions after each
    elimination.  Deterministic: no RNG is consulted.

    The converged point is the answer even when a rejected probe
    undercut it, so the trace's final setting is pinned explicitly.
    """

    name = "combined-elimination"
    deterministic = True

    def run(self, scorer: BatchScorer, context: SearchContext) -> None:
        space = context.space
        current = _all_on(space)
        current_runtime = scorer.score_one(current, "baseline")
        if current_runtime is None:
            return
        enabled = [spec.name for spec in space.specs if spec.is_boolean]

        improved = True
        while improved and not scorer.exhausted:
            improved = False
            names = list(enabled)
            candidates = [
                current.with_values(**{name: False}) for name in names
            ]
            runtimes = scorer.score(candidates, "probe")
            effects: list[tuple[float, str, FlagSetting, float]] = []
            for name, candidate, runtime in zip(names, candidates, runtimes):
                # Relative improvement of disabling `name` (negative =
                # harmful flag worth eliminating).
                effects.append(
                    (
                        (runtime - current_runtime) / current_runtime,
                        name,
                        candidate,
                        runtime,
                    )
                )
            effects.sort()
            for effect, name, candidate, runtime in effects:
                if effect >= 0.0:
                    break
                # Re-measure against the *current* baseline: interactions
                # may have changed since the probing round.
                if candidate != current.with_values(**{name: False}):
                    candidate = current.with_values(**{name: False})
                    if scorer.exhausted:
                        break
                    runtime = scorer.score_one(candidate, "re-measure")
                    if runtime is None:
                        break
                recheck = scorer.score_one(
                    current.with_values(**{name: False}), "recheck"
                )
                if recheck is None:
                    break
                if recheck < current_runtime:
                    current = current.with_values(**{name: False})
                    current_runtime = recheck
                    enabled.remove(name)
                    improved = True
        scorer.trace.set_final(current, current_runtime)


#: Baseline strategy registry: leaderboard name -> zero-config factory.
BASELINE_STRATEGIES: dict[str, type[SearchStrategy]] = {
    RandomSearch.name: RandomSearch,
    HillClimb.name: HillClimb,
    Genetic.name: Genetic,
    CombinedElimination.name: CombinedElimination,
}
